//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships minimal, dependency-free implementations of the external
//! crates it uses (see `vendor/README.md`). This crate covers the
//! subset of the `rand` 0.10 API that dnnspmv calls: [`SeedableRng`],
//! [`rngs::StdRng`], and the [`RngExt`] helpers `random` /
//! `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic across platforms, which is all
//! the synthetic dataset generator and network initialisers need. It
//! is **not** the same stream as upstream `StdRng` (ChaCha12), so
//! seeds produce different (but equally reproducible) data.

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random(rng: &mut impl RngCore) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random(rng: &mut impl RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a caller-supplied range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (`hi` inclusive iff `inclusive`).
    fn sample_range(rng: &mut impl RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is < 2^-64 * span: irrelevant here.
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let f = <$t as Random>::random(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range-shaped arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// `(low, high, inclusive)` bounds of the range.
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (lo, hi) = self.into_inner();
        (lo, hi, true)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniform draw over `T`'s natural range.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform draw from the given range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_range(self, lo, hi, inclusive)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..=11);
            assert!((3..=11).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = r.random_range(0.35f64..1.0);
            assert!((0.35..1.0).contains(&f));
        }
    }

    #[test]
    fn full_range_hits_every_value_eventually() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(2);
        let _ = r.random_range(5usize..5);
    }
}
