//! Vendored stand-in for the `proptest` crate (see
//! `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `pat in strategy` bindings and a
//! `proptest_config` attribute, range / tuple / `collection::vec`
//! strategies, `prop_map` / `prop_flat_map` combinators, and the
//! `prop_assert!` family. Unlike upstream there is **no shrinking**
//! and no persisted failure file: cases are generated from a seed
//! derived deterministically from the test name and case index, so a
//! failure reproduces on every run and reports its case number.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SampleUniform, SeedableRng};

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Generators of random values, composable with `prop_map` /
/// `prop_flat_map`.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

pub mod collection {
    //! Collection strategies.

    use super::{SizeBounds, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeBounds,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeBounds {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeBounds {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeBounds {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeBounds {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeBounds {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds { lo: n, hi: n }
    }
}

/// Drives one property test: `cases` deterministic cases seeded from
/// the test name. Panics (failing the test) on the first `Err`, with
/// enough context to reproduce.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the name keeps seeds stable across runs/platforms.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x1000_0000_01b3);
    }
    for case_idx in 0..config.cases {
        let seed = name_hash ^ (u64::from(case_idx) << 32);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property test `{test_name}` failed at case {case_idx}/{}: {e}",
                config.cases
            );
        }
    }
}

/// Hands the per-case RNG to strategies (macro plumbing).
pub fn generate_value<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

/// Splits an independent generator off the case RNG, so each `pat in
/// strategy` binding consumes its own stream regardless of how many
/// draws earlier bindings made.
pub fn split_rng(rng: &mut StdRng) -> StdRng {
    StdRng::seed_from_u64(rng.next_u64())
}

pub mod prelude {
    //! Everything the tests import.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(
                    let $pat = {
                        let mut __strat_rng = $crate::split_rng(__rng);
                        $crate::generate_value(&($strat), &mut __strat_rng)
                    };
                )+
                let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __run()
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Skips the rest of the case when `cond` is false. Upstream rejects
/// the case and resamples; this stand-in counts it as passing, which
/// keeps the deterministic case count but weakens coverage — keep
/// assumptions rare.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert_eq!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let cfg = ProptestConfig::with_cases(50);
        crate::run_cases(&cfg, "bounds", |rng| {
            let (a, b) = crate::generate_value(&(1usize..5, -2.0f64..2.0), rng);
            prop_assert!((1..5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            Ok(())
        });
    }

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let cfg = ProptestConfig::with_cases(50);
        crate::run_cases(&cfg, "sizes", |rng| {
            let v = crate::generate_value(&crate::collection::vec(0u64..10, 2..6), rng);
            prop_assert!((2..=5).contains(&v.len()), "len {}", v.len());
            let w = crate::generate_value(&crate::collection::vec(0u64..10, 3..=3), rng);
            prop_assert_eq!(w.len(), 3);
            Ok(())
        });
    }

    #[test]
    fn map_and_flat_map_compose() {
        let cfg = ProptestConfig::with_cases(20);
        crate::run_cases(&cfg, "compose", |rng| {
            let s = (2usize..6).prop_flat_map(|n| {
                crate::collection::vec(0usize..100, n..=n).prop_map(move |v| (n, v))
            });
            let (n, v) = crate::generate_value(&s, rng);
            prop_assert_eq!(v.len(), n);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn macro_defines_runnable_tests() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn sum_commutes(a in 0i64..100, b in 0i64..100) {
                prop_assert_eq!(a + b, b + a);
            }
            fn tuple_pattern((x, y) in (0usize..4, 0usize..4)) {
                prop_assert!(x < 4 && y < 4);
            }
        }
        sum_commutes();
        tuple_pattern();
    }
}
