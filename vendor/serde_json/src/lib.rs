//! Vendored stand-in for the `serde_json` crate (see
//! `vendor/README.md`).
//!
//! Prints and parses the vendored `serde` [`Value`] tree as JSON.
//! Numbers round-trip exactly: Rust's float `Display` is
//! shortest-round-trip, and integers stay integers. Non-finite floats
//! serialise as `null`, matching upstream serde_json.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;
use std::io::{Read, Write};

/// Serialisation / deserialisation failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialises `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write: {e}")))
}

/// Deserialises a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialises a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("read: {e}")))?;
    from_str(&buf)
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` is shortest-round-trip; force a fractional or
                // exponent part so the token stays a float on re-read
                // by strict readers.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.eat_keyword("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the whole run of plain characters up to the
                    // next quote or escape and validate it as UTF-8 once.
                    // (`"` and `\` are ASCII, so they never appear inside
                    // a multi-byte sequence — the run can't split a char.)
                    // Per-character re-validation of the remaining input
                    // would be quadratic in the string length, which
                    // matters for multi-megabyte envelope payloads.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&c) = self.bytes.get(end) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
        for &x in &[0.1f64, std::f64::consts::PI, 1e-300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}é𝄞".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let from_escapes: String = from_str(r#""éA𝄞""#).unwrap();
        assert_eq!(from_escapes, "éA𝄞");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("k"), vec![1.25f64, -2.0])];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let back: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(back, [1, 2, 3]);
    }

    #[test]
    fn garbage_errors() {
        assert!(from_str::<u64>("not json at all").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }

    #[test]
    fn writer_and_reader_round_trip() {
        let v = vec![1u64, 2, 3];
        let mut buf = Vec::new();
        to_writer(&mut buf, &v).unwrap();
        let back: Vec<u64> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, v);
    }
}
