//! Vendored stand-in for the `criterion` crate (see
//! `vendor/README.md`).
//!
//! Keeps the harness API (`criterion_group!` / `criterion_main!`,
//! groups, `bench_function`, `bench_with_input`, `Bencher::iter`) but
//! replaces the statistics engine with a plain monotonic-clock timer.
//! Three modes, picked at startup:
//!
//! - **test** (`--test` on the command line, as `cargo test` passes to
//!   `harness = false` bench targets): run every benchmark body once,
//!   no timing — benches become smoke tests.
//! - **quick** (default for `cargo bench`): a short calibrated run per
//!   benchmark, printing median ns/iter.
//! - **full** (`CRITERION_FULL=1`): honours `sample_size` /
//!   `measurement_time` / `warm_up_time` and prints min/median/max —
//!   use this when citing numbers.
//!
//! A positional command-line argument filters benchmark ids by
//! substring, like upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Test,
    Quick,
    Full,
}

fn detect_mode_and_filter() -> (Mode, Option<String>) {
    let mut mode = if std::env::var_os("CRITERION_FULL").is_some() {
        Mode::Full
    } else {
        Mode::Quick
    };
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--bench" => {}
            s if s.starts_with("--") => {}
            s => filter = Some(s.to_owned()),
        }
    }
    (mode, filter)
}

/// Benchmark-run configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let (mode, filter) = detect_mode_and_filter();
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            mode,
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (full mode).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark (full mode).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark (full mode).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, f);
        self
    }
}

/// A named set of benchmarks sharing the group's id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(self.criterion, &full_id, |b| f(b));
        self
    }

    /// Runs `group/id` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(self.criterion, &full_id, |b| f(b, input));
        self
    }

    /// Ends the group (bookkeeping no-op here).
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times the benchmark body handed to it by `iter`.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Median/min/max ns per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `f` according to the active mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                black_box(f());
            }
            Mode::Quick => {
                let iters = calibrate(&mut f, Duration::from_millis(20));
                let mut samples: Vec<f64> = (0..3).map(|_| time_batch(&mut f, iters)).collect();
                self.result = Some(summarise(&mut samples));
            }
            Mode::Full => {
                // Warm up for the configured budget.
                let warm_until = Instant::now() + self.warm_up_time;
                while Instant::now() < warm_until {
                    black_box(f());
                }
                let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                let iters = calibrate(&mut f, Duration::from_secs_f64(per_sample.min(0.05))).max(1);
                let mut samples: Vec<f64> = (0..self.sample_size)
                    .map(|_| time_batch(&mut f, iters))
                    .collect();
                self.result = Some(summarise(&mut samples));
            }
        }
    }
}

/// Picks an iteration count so one sample takes roughly `target`.
fn calibrate<O, F: FnMut() -> O>(f: &mut F, target: Duration) -> u64 {
    let start = Instant::now();
    black_box(f());
    let one = start.elapsed().max(Duration::from_nanos(20));
    (target.as_secs_f64() / one.as_secs_f64()).clamp(1.0, 1e7) as u64
}

/// Mean ns/iter over one batch of `iters` calls.
fn time_batch<O, F: FnMut() -> O>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn summarise(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.total_cmp(b));
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
    )
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &mut Criterion, id: &str, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        mode: c.mode,
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
        result: None,
    };
    f(&mut b);
    match (c.mode, b.result) {
        (Mode::Test, _) => println!("test {id} ... ok"),
        (_, Some((median, min, max))) => {
            println!(
                "{id:<50} time: [{} {} {}]",
                format_ns(min),
                format_ns(median),
                format_ns(max)
            );
        }
        (_, None) => println!("{id:<50} (no measurement: iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
            mode: Mode::Quick,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| std::hint::black_box(3u64.pow(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
            mode: Mode::Quick,
            filter: Some("match_me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |_b| ran = true);
        assert!(!ran);
        c.bench_function("does_match_me_yes", |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_body_once_without_timing() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::from_millis(1),
            mode: Mode::Test,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter("csr").0, "csr");
        assert_eq!(BenchmarkId::new("spmv", 1024).0, "spmv/1024");
    }
}
