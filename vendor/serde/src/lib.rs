//! Vendored stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde abstracts over streaming (de)serialisers; this workspace
//! only ever round-trips through JSON, so the model here is simpler:
//! every [`Serialize`] type renders itself into a [`Value`] tree and
//! every [`Deserialize`] type rebuilds itself from one. `serde_json`
//! then just prints and parses `Value`s. Derive macros
//! (`#[derive(Serialize, Deserialize)]`) are provided by the
//! companion `serde_derive` crate and emit the same externally-tagged
//! enum layout as upstream serde, so the JSON on disk stays
//! interchangeable with real-serde readers.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed/printable JSON-shaped value tree.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map): field
/// order in serialised output matches declaration order, like serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Error produced while rebuilding a value tree into a typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        Error::custom(format!("expected {wanted}, found {}", self.type_name()))
    }

    /// Looks up a required object field (derive-codegen helper).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(other.unexpected("object")),
        }
    }

    /// The elements of an array.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(other.unexpected("array")),
        }
    }

    /// The pairs of an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(pairs) => Ok(pairs),
            other => Err(other.unexpected("object")),
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(n) => Ok(n),
            Value::I64(n) if n >= 0 => Ok(n as u64),
            ref other => Err(other.unexpected("unsigned integer")),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(n) => Ok(n),
            Value::U64(n) => {
                i64::try_from(n).map_err(|_| Error::custom(format!("integer {n} overflows i64")))
            }
            ref other => Err(other.unexpected("integer")),
        }
    }

    fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            // serde_json writes non-finite floats as `null`.
            Value::Null => Ok(f64::NAN),
            ref other => Err(other.unexpected("number")),
        }
    }
}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating shape and ranges.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(other.unexpected("bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Exact: every f32 is representable as f64, and shortest-f64
        // printing round-trips it back bit-for-bit through `as f32`.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(other.unexpected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(Deserialize::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq()?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items
            .iter()
            .map(Deserialize::from_value)
            .collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| Error::custom("array length changed during conversion"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq()?;
                if items.len() != $n {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, found {}", $n, items.len())));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn integer_coercion_checks_sign_and_range() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
        assert_eq!(usize::from_value(&Value::I64(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::U64(5)).unwrap(), 5.0);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(String::from("a"), vec![1.5f64, 2.5])];
        let back: Vec<(String, Vec<f64>)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let arr = [3usize, 1, 4];
        let back: [usize; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        assert!(<[usize; 2]>::from_value(&arr.to_value()).is_err());

        let boxed = Box::new(9i64);
        let back: Box<i64> = Deserialize::from_value(&boxed.to_value()).unwrap();
        assert_eq!(back, boxed);

        let opt: Option<u32> = None;
        assert_eq!(<Option<u32>>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("a").unwrap(), &Value::U64(1));
        let err = obj.field("b").unwrap_err().to_string();
        assert!(err.contains("missing field `b`"), "{err}");
    }
}
