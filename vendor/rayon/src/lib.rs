//! Vendored stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Exposes the parallel-iterator API surface dnnspmv uses —
//! `par_iter`, `into_par_iter`, `par_chunks_mut`, and the adapter /
//! terminal methods chained on them — but executes **sequentially**.
//! The build container is single-core (`available_parallelism() == 1`),
//! so a thread pool would only add overhead; on bigger machines the
//! real rayon can be swapped back in without touching call sites
//! because every method keeps rayon's exact signature (including the
//! `|| identity` closures of `fold`/`reduce`).
//!
//! Sequential execution is also *deterministic*, which the training
//! loop's loss-reproducibility tests appreciate.

use std::iter::{Enumerate, Zip};

/// Number of worker threads "in the pool".
///
/// Mirrors `rayon::current_num_threads`; used by the sparse kernels to
/// size row chunks.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures "in parallel" (sequentially here) and returns
/// both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// that provides rayon's method set.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<F, U>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.map(f))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Keeps items satisfying the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Rayon-style fold: builds per-split accumulators (a single one
    /// here) to be combined by [`Folded::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Folded<T>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Folded(self.0.fold(identity(), fold_op))
    }

    /// Reduces all items starting from an identity value.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Applies `f` to every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collects into a container (order-preserving, like rayon's
    /// indexed collect).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }
}

/// Result of [`ParIter::fold`]: the per-split accumulators.
pub struct Folded<T>(T);

impl<T> Folded<T> {
    /// Combines the accumulators (a no-op for the single sequential
    /// split, but `identity`/`op` keep rayon's signature).
    pub fn reduce<ID, F>(self, _identity: ID, _op: F) -> T
    where
        ID: Fn() -> T,
        F: FnMut(T, T) -> T,
    {
        self.0
    }
}

/// `par_iter` on slices (and anything derefing to them).
pub trait ParSliceExt<T> {
    /// Parallel shared iterator.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParSliceMutExt<T> {
    /// Parallel exclusive iterator.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

pub mod prelude {
    //! Rayon's prelude: the traits that add `par_*` methods.
    pub use crate::{IntoParallelIterator, ParSliceExt, ParSliceMutExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let par: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(par, 9900);
    }

    #[test]
    fn fold_reduce_accumulates() {
        let idx = [0usize, 1, 2, 3];
        let (sum, count) = idx
            .par_iter()
            .fold(|| (0usize, 0usize), |(s, c), &i| (s + i, c + 1))
            .reduce(|| (0, 0), |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2));
        assert_eq!((sum, count), (6, 4));
    }

    #[test]
    fn chunks_mut_covers_all_elements() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for x in chunk {
                *x = ci;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_filter_count() {
        let a = [1, 2, 3, 4];
        let b = [1, 0, 3, 0];
        let hits = a
            .par_iter()
            .zip(b.par_iter())
            .filter(|(x, y)| x == y)
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, [0, 1, 4, 9, 16]);
    }
}
