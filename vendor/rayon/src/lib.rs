//! Vendored stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Two halves with different execution models:
//!
//! * **Fork-join** — [`scope`] / [`Scope::spawn`] / [`join`] run on a
//!   real persistent worker pool (`RAYON_NUM_THREADS` or
//!   `available_parallelism` threads, spawned on first use). The
//!   caller always participates: unstarted spawns are stolen back and
//!   run inline at scope exit, so a scope makes progress — and
//!   terminates — even with zero free workers (no deadlock by
//!   construction). Panics inside spawned closures are captured and
//!   re-thrown from `scope`'s caller, like upstream.
//! * **Parallel iterators** — `par_iter`, `into_par_iter`,
//!   `par_chunks_mut` and their adapter chains keep rayon's exact
//!   signatures (including the `|| identity` closures of
//!   `fold`/`reduce`) but execute **sequentially**. The workspace's
//!   compute hot path (the GEMM core) partitions work explicitly over
//!   [`scope`], and the remaining iterator call sites are either cold
//!   or already wrapped by their own worker threads. Swapping the real
//!   rayon back in upgrades them without touching call sites.
//!
//! Sequential iterators are also *deterministic*; the GEMM scope path
//! keeps determinism separately, by making every partition's
//! reduction order independent of where it runs.

use std::collections::VecDeque;
use std::iter::{Enumerate, Zip};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of worker threads in the global pool.
///
/// Mirrors `rayon::current_num_threads`; used by the sparse kernels to
/// size row chunks and by the GEMM core as the `Auto` thread budget.
pub fn current_num_threads() -> usize {
    Pool::global().workers
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A unit of queued work: the closure lives behind a `Mutex<Option>`
/// so exactly one party — a pool worker or the owning scope's
/// steal-back drain — takes and runs it.
struct SpawnedJob {
    body: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl SpawnedJob {
    /// Runs the closure if nobody has claimed it yet.
    fn run_if_unclaimed(&self) {
        let body = self.body.lock().expect("job slot lock").take();
        if let Some(b) = body {
            b();
        }
    }
}

/// Global FIFO of spawned jobs plus the detached workers draining it.
struct Pool {
    queue: Mutex<VecDeque<Arc<SpawnedJob>>>,
    cv: Condvar,
    workers: usize,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            let pool = Pool {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                workers,
            };
            for i in 0..workers {
                // Detached: workers park on the condvar when idle and
                // die with the process. Job bodies contain their own
                // catch_unwind, so a worker never unwinds.
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{i}"))
                    .spawn(worker_loop)
                    .expect("spawn pool worker");
            }
            pool
        })
    }

    fn push(&self, job: Arc<SpawnedJob>) {
        self.queue.lock().expect("pool queue lock").push_back(job);
        self.cv.notify_one();
    }
}

fn worker_loop() {
    let pool = Pool::global();
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.cv.wait(q).expect("pool queue lock");
            }
        };
        job.run_if_unclaimed();
    }
}

// ---------------------------------------------------------------------------
// Scoped fork-join
// ---------------------------------------------------------------------------

/// Shared bookkeeping for one [`scope`] call: outstanding spawn count,
/// the scope's own view of still-unclaimed jobs (for steal-back), and
/// the first captured panic payload.
struct ScopeState {
    pending: Mutex<usize>,
    cv: Condvar,
    /// Jobs spawned into this scope that may still be unclaimed. The
    /// scope-exit drain pops these and runs whatever the workers have
    /// not taken yet, which is what makes `scope` deadlock-free even
    /// when every worker is busy (including nested scopes spawned from
    /// inside pool jobs — their spawns land here too).
    own_jobs: Mutex<Vec<Arc<SpawnedJob>>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            cv: Condvar::new(),
            own_jobs: Mutex::new(Vec::new()),
            panic: Mutex::new(None),
        }
    }

    fn finish_one(&self) {
        let mut p = self.pending.lock().expect("scope pending lock");
        *p -= 1;
        if *p == 0 {
            self.cv.notify_all();
        }
    }
}

/// A fork-join scope: closures spawned on it may borrow anything that
/// outlives `'scope`; [`scope`] does not return until every spawn has
/// completed.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` on the pool. It runs on a worker thread, or
    /// inline on the scope's owner during the scope-exit drain —
    /// whichever gets to it first.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        *state.pending.lock().expect("scope pending lock") += 1;
        let job_state = Arc::clone(&self.state);
        let closure: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let inner = Scope {
                state: Arc::clone(&job_state),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&inner)));
            if let Err(payload) = result {
                job_state
                    .panic
                    .lock()
                    .expect("scope panic lock")
                    .get_or_insert(payload);
            }
            job_state.finish_one();
        });
        // SAFETY: the closure borrows only data outliving 'scope, and
        // `scope()` blocks until `pending` drops to zero — i.e. until
        // this closure has run to completion — before returning. The
        // borrows therefore never outlive their referents; the
        // lifetime is erased only so the job can sit in the 'static
        // global queue. (The same argument upstream rayon makes.)
        let closure: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute(closure) };
        let job = Arc::new(SpawnedJob {
            body: Mutex::new(Some(closure)),
        });
        state
            .own_jobs
            .lock()
            .expect("scope jobs lock")
            .push(Arc::clone(&job));
        Pool::global().push(job);
        // Wake a scope owner that is already waiting in the exit
        // drain: a running job may spawn more work it must pick up.
        state.cv.notify_all();
    }
}

/// Creates a fork-join scope, runs `op` in it on the calling thread,
/// then runs or waits for every spawn before returning `op`'s result.
/// A panic from `op` or any spawned closure resurfaces here.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        state: Arc::new(ScopeState::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Drain: steal back and run unclaimed spawns inline, then wait for
    // the ones already running on workers. Spawns made by running jobs
    // re-enter `own_jobs` and are picked up on the next pass.
    loop {
        let job = scope.state.own_jobs.lock().expect("scope jobs lock").pop();
        if let Some(j) = job {
            j.run_if_unclaimed();
            continue;
        }
        let pending = scope.state.pending.lock().expect("scope pending lock");
        if *pending == 0 {
            break;
        }
        let _unused = scope
            .state
            .cv
            .wait(pending)
            .expect("scope pending lock");
    }
    if let Some(payload) = scope.state.panic.lock().expect("scope panic lock").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Runs two closures in parallel (the second on the pool when a worker
/// is free, inline otherwise) and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(oper_b()));
        oper_a()
    });
    (ra, rb.expect("join's second closure completed"))
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator
/// that provides rayon's method set.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<F, U>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.map(f))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Keeps items satisfying the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Rayon-style fold: builds per-split accumulators (a single one
    /// here) to be combined by [`Folded::reduce`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Folded<T>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Folded(self.0.fold(identity(), fold_op))
    }

    /// Reduces all items starting from an identity value.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Applies `f` to every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collects into a container (order-preserving, like rayon's
    /// indexed collect).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }
}

/// Result of [`ParIter::fold`]: the per-split accumulators.
pub struct Folded<T>(T);

impl<T> Folded<T> {
    /// Combines the accumulators (a no-op for the single sequential
    /// split, but `identity`/`op` keep rayon's signature).
    pub fn reduce<ID, F>(self, _identity: ID, _op: F) -> T
    where
        ID: Fn() -> T,
        F: FnMut(T, T) -> T,
    {
        self.0
    }
}

/// `par_iter` on slices (and anything derefing to them).
pub trait ParSliceExt<T> {
    /// Parallel shared iterator.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParSliceMutExt<T> {
    /// Parallel exclusive iterator.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

pub mod prelude {
    //! Rayon's prelude: the traits that add `par_*` methods.
    pub use crate::{IntoParallelIterator, ParSliceExt, ParSliceMutExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let par: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(par, 9900);
    }

    #[test]
    fn fold_reduce_accumulates() {
        let idx = [0usize, 1, 2, 3];
        let (sum, count) = idx
            .par_iter()
            .fold(|| (0usize, 0usize), |(s, c), &i| (s + i, c + 1))
            .reduce(|| (0, 0), |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2));
        assert_eq!((sum, count), (6, 4));
    }

    #[test]
    fn chunks_mut_covers_all_elements() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for x in chunk {
                *x = ci;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_filter_count() {
        let a = [1, 2, 3, 4];
        let b = [1, 0, 3, 0];
        let hits = a
            .par_iter()
            .zip(b.par_iter())
            .filter(|(x, y)| x == y)
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, [0, 1, 4, 9, 16]);
    }

    #[test]
    fn scope_runs_every_spawn_exactly_once() {
        let mut hits = vec![0u32; 64];
        crate::scope(|s| {
            for (i, h) in hits.iter_mut().enumerate() {
                s.spawn(move |_| *h += i as u32 + 1);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(*h, i as u32 + 1, "spawn {i} ran a wrong number of times");
        }
    }

    #[test]
    fn scope_owner_participates_and_borrows_locals() {
        let mut a = 0u64;
        let mut b = 0u64;
        crate::scope(|s| {
            s.spawn(|_| b = 7);
            a = 3;
        });
        assert_eq!((a, b), (3, 7));
    }

    #[test]
    fn nested_scopes_and_nested_spawns_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::Relaxed);
                    // Spawn more work from inside a running job: the
                    // scope's exit drain must pick these up too.
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                    crate::scope(|inner| {
                        inner.spawn(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn scope_propagates_spawned_panics_to_the_caller() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("boom in spawn"));
            });
        });
        let payload = caught.expect_err("panic must cross the scope");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "boom in spawn");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok".to_string());
        assert_eq!((a, b.as_str()), (4, "ok"));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(crate::current_num_threads() >= 1);
    }
}
