//! Vendored stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Upstream serde_derive builds on `syn`/`quote`; neither is available
//! offline, so this crate parses the item declaration directly from
//! the [`proc_macro::TokenStream`] and emits the trait impls as
//! generated source text. Only the shapes this workspace derives are
//! supported: structs with named fields, and enums with unit, newtype
//! / tuple, and struct variants, with at most simple `<T: Bound>`
//! generics (no lifetimes or `where` clauses). The generated code
//! targets the vendored value-tree `serde` and keeps upstream's
//! externally-tagged JSON enum layout.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, true)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(&item, false)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    /// Raw generic parameter declarations, e.g. `["S : Scalar"]`.
    params: Vec<String>,
    /// Bare parameter names, e.g. `["S"]`.
    param_names: Vec<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attributes (doc comments arrive in this form).
    fn skip_attributes(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Skips `pub` / `pub(...)`.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("serde derive: expected `{ch}`, found {other:?}"),
        }
    }
}

fn is_punct(t: &TokenTree, ch: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ch)
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");

    let mut params = Vec::new();
    let mut param_names = Vec::new();
    if matches!(c.peek(), Some(t) if is_punct(t, '<')) {
        c.pos += 1;
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        loop {
            let t = c.next().expect("serde derive: unterminated generics");
            if is_punct(&t, '<') {
                depth += 1;
            } else if is_punct(&t, '>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if depth == 1 && is_punct(&t, ',') {
                push_param(&mut params, &mut param_names, &current);
                current.clear();
            } else {
                current.push(t);
            }
        }
        push_param(&mut params, &mut param_names, &current);
    }

    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: expected a braced body, found {other:?}"),
    };

    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };

    Item {
        name,
        params,
        param_names,
        kind,
    }
}

fn push_param(params: &mut Vec<String>, names: &mut Vec<String>, tokens: &[TokenTree]) {
    if tokens.is_empty() {
        return;
    }
    params.push(join(tokens));
    // First ident is the parameter name (lifetimes and `const` params
    // are unsupported, matching the workspace's usage).
    match &tokens[0] {
        TokenTree::Ident(i) if i.to_string() != "const" => names.push(i.to_string()),
        other => panic!("serde derive: unsupported generic parameter starting at {other:?}"),
    }
}

fn join(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses `name: Type, ...` bodies, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        fields.push(c.expect_ident("field name"));
        c.expect_punct(':');
        // Skip the type: everything up to the next comma outside
        // `<...>` (commas inside parens/brackets live in sub-groups
        // and are invisible at this level).
        let mut angle_depth = 0usize;
        while let Some(t) = c.peek() {
            if is_punct(t, '<') {
                angle_depth += 1;
            } else if is_punct(t, '>') {
                angle_depth = angle_depth.saturating_sub(1);
            } else if is_punct(t, ',') && angle_depth == 0 {
                c.pos += 1;
                break;
            }
            c.pos += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let data = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                c.pos += 1;
                VariantData::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantData::Struct(fields)
            }
            _ => VariantData::Unit,
        };
        variants.push(Variant { name, data });
        if matches!(c.peek(), Some(t) if is_punct(t, ',')) {
            c.pos += 1;
        }
    }
    variants
}

/// Number of elements in a tuple-variant payload.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if is_punct(t, '<') {
            angle_depth += 1;
            trailing_comma = false;
        } else if is_punct(t, '>') {
            angle_depth = angle_depth.saturating_sub(1);
            trailing_comma = false;
        } else if is_punct(t, ',') && angle_depth == 0 {
            arity += 1;
            trailing_comma = true;
        } else {
            trailing_comma = false;
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// `impl<...> Trait for Name<...>` generics, with the serde bound
/// appended to every type parameter.
fn generics(item: &Item, trait_path: &str) -> (String, String) {
    if item.params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = item
        .params
        .iter()
        .map(|p| {
            if p.contains(':') {
                format!("{p} + {trait_path}")
            } else {
                format!("{p}: {trait_path}")
            }
        })
        .collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", item.param_names.join(", ")),
    )
}

fn render(item: &Item, serialize: bool) -> String {
    if serialize {
        render_serialize(item)
    } else {
        render_deserialize(item)
    }
}

fn render_serialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = generics(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.data {
        VariantData::Unit => format!(
            "Self::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantData::Tuple(1) => format!(
            "Self::{vname}(f0) => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantData::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect();
            format!(
                "Self::{vname}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binders.join(", "),
                elems.join(", ")
            )
        }
        VariantData::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "Self::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                pairs.join(", ")
            )
        }
    }
}

fn render_deserialize(item: &Item) -> String {
    let (impl_generics, ty_generics) = generics(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(" "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.data, VariantData::Unit))
                .map(deserialize_data_arm)
                .collect();
            let unknown = format!(
                "other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),"
            );
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit} {unknown} }},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = &inner;\n\
                 match tag.as_str() {{ {data} {unknown} }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected an externally tagged {name} value\")),\n\
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn deserialize_data_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.data {
        VariantData::Unit => unreachable!("unit variants handled in the string arm"),
        VariantData::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok(\
             Self::{vname}(::serde::Deserialize::from_value(inner)?)),"
        ),
        VariantData::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                 let items = inner.as_seq()?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple variant arity\"));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self::{vname}({}))\n\
                 }},",
                elems.join(", ")
            )
        }
        VariantData::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "\"{vname}\" => ::std::result::Result::Ok(Self::{vname} {{ {} }}),",
                inits.join(" ")
            )
        }
    }
}
