//! Vendored stand-in for the `rand_distr` crate (see `vendor/README.md`).
//!
//! Only what dnnspmv uses: the [`Distribution`] trait and the
//! [`Normal`] distribution, sampled with Box–Muller (the sine half of
//! each pair is discarded to keep the sampler stateless — throughput
//! is irrelevant at our call rates).

use rand::{Random, RngCore};

/// Types that generate values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Floating-point types [`Normal`] can produce (`f32`, `f64`).
pub trait Float: Copy + sealed::Sealed {
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn into_f64(self) -> f64;
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }

    fn into_f64(self) -> f64 {
        self
    }
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn into_f64(self) -> f64 {
        f64::from(self)
    }
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    /// Rejects non-finite parameters and negative deviations.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        let (m, s) = (mean.into_f64(), std_dev.into_f64());
        if !m.is_finite() || !s.is_finite() || s < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> F {
        // Box–Muller: u ∈ (0, 1], v ∈ [0, 1).
        let u: f64 = 1.0 - f64::random(rng);
        let v: f64 = f64::random(rng);
        let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
        F::from_f64(self.mean.into_f64() + self.std_dev.into_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0f64, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f64, 1.0).is_ok());
        assert!(Normal::new(0.0f32, 0.5).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let d = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
