//! # dnnspmv — CNN-based sparse matrix format selection for SpMV
//!
//! A from-scratch Rust reproduction of *"Bridging the Gap between Deep
//! Learning and Sparse Matrix Format Selection"* (Zhao, Li, Liao, Shen —
//! PPoPP 2018). This facade crate re-exports the workspace's public
//! API; see the individual crates for details:
//!
//! * [`sparse`] — storage formats (COO/CSR/DIA/ELL/HYB/BSR/CSR5-style)
//!   and sequential + parallel SpMV kernels.
//! * [`gen`] — synthetic matrix families, augmentation, datasets.
//! * [`repr`] — fixed-size CNN input representations (binary, density,
//!   distance histogram).
//! * [`nn`] — the hand-rolled CNN framework with early/late-merging
//!   structures and transfer learning.
//! * [`tree`] — the SMAT-style decision-tree baseline.
//! * [`platform`] — analytic platform cost models and measured
//!   labelling.
//! * [`core`] — the end-to-end [`core::FormatSelector`] pipeline.
//! * [`feedback`] — the closed loop: serve sampling into a crash-safe
//!   journal, drift detection, and guarded model promotion.
//! * [`obs`] — the zero-dependency metrics registry, latency
//!   histograms, and span tracing the other layers record into.
//!
//! # Quickstart
//!
//! ```no_run
//! use dnnspmv::core::{FormatSelector, SelectorConfig};
//! use dnnspmv::gen::{Dataset, DatasetSpec};
//! use dnnspmv::platform::PlatformModel;
//!
//! let dataset = Dataset::generate(&DatasetSpec::default());
//! let platform = PlatformModel::intel_cpu();
//! let (selector, _report) =
//!     FormatSelector::train_on_platform(&dataset.matrices, &platform, &SelectorConfig::default());
//! let best = selector.predict(&dataset.matrices[0]);
//! println!("use {best}");
//! ```

pub use dnnspmv_core as core;
pub use dnnspmv_feedback as feedback;
pub use dnnspmv_gen as gen;
pub use dnnspmv_nn as nn;
pub use dnnspmv_obs as obs;
pub use dnnspmv_platform as platform;
pub use dnnspmv_repr as repr;
pub use dnnspmv_sparse as sparse;
pub use dnnspmv_tree as tree;
