//! `dnnspmv` — the standalone selector tool, mirroring the interface of
//! the paper's artifact (`spmv_model.py train | test | predict <mtx>`).
//!
//! ```text
//! dnnspmv train   [--model FILE] [--matrices N] [--epochs N]
//!                 [--platform intel|amd|gpu|manycore]
//!                 [--checkpoint-dir DIR] [--resume FILE]
//!                 [--gemm-threads auto|serial|N]
//! dnnspmv test    [--model FILE] [--matrices N] [--platform intel|amd|gpu|manycore]
//! dnnspmv predict <matrix.mtx> [--model FILE]
//! dnnspmv stats   <matrix.mtx>
//! dnnspmv serve-bench [--json FILE] [--matrices N] [--epochs N] [--quick]
//!                     [--min-batched-ratio X]
//! dnnspmv evolve  --journal DIR [--model FILE] [--out FILE] [--promote]
//!                 [--epochs N] [--strategy scratch|continuous|top]
//!                 [--margin X] [--holdout X] [--min-records N]
//!                 [--checkpoint-dir DIR] [--resume FILE]
//! dnnspmv chaos-soak [--quick] [--episodes N] [--seed S] [--max-rules K]
//!                    [--json FILE] [--replay SEED "SCHEDULE"]
//! dnnspmv metrics [--json] [--matrices N]
//! ```
//!
//! `train` fits a CNN selector on a synthetic dataset labelled by the
//! chosen platform model and saves it (default
//! `dnnspmv_model.json`). `test` evaluates a saved model on a fresh
//! held-out dataset. `predict` reads a MatrixMarket file and prints the
//! chosen format (the artifact's example prints `CSR`). `stats` dumps a
//! matrix's structural statistics and per-format cost estimates.
//! `evolve` closes the online-learning loop offline: it replays the
//! crash-safe feedback journal a serving process wrote, fine-tunes the
//! saved model on the measured labels via the transfer machinery, and
//! shadow-scores the candidate against the incumbent on the most recent
//! held-out records. The candidate is written to `--out` only when it
//! beats the incumbent by `--margin`; a rejected candidate exits with
//! status 3 (distinct from usage errors) so automation can tell "gate
//! held" from "invocation broken". `--promote` additionally overwrites
//! `--model` in place on a passed gate.
//! `serve-bench` soaks the admission-controlled [`SelectorServer`]
//! (burst shedding, breaker trip/recovery, hot reload under load) and
//! writes latency/shed/breaker numbers plus the batched-vs-unbatched
//! hot-path comparison to `BENCH_serve.json`; `--min-batched-ratio X`
//! exits nonzero unless the cache+micro-batch hot path beats the plain
//! server's overload throughput by `X`×, and with `--quick` it instead
//! runs the instrumentation-overhead smoke and exits nonzero if the
//! instrumented serve p50 regresses more than the gate allows.
//! `chaos-soak` (requires `--features chaos`) runs seeded failpoint
//! episodes over the whole closed loop and exits nonzero if any
//! standing invariant breaks or site coverage falls short; failing
//! episodes print a `(seed, schedule)` pair that `--replay` reruns
//! bit-identically. `metrics` runs a short instrumented workload (repr
//! extraction, per-format SpMV, selector ladder decisions) and dumps
//! the process-wide observability registry as Prometheus text (or
//! `--json`); build with `--features kernel-timers` to include the
//! per-kernel timers in the dump.
//!
//! [`SelectorServer`]: dnnspmv::core::SelectorServer

use dnnspmv::core::{make_samples, FormatSelector, SelectorConfig};
use dnnspmv::gen::{Dataset, DatasetSpec};
use dnnspmv::nn::{GemmThreading, TrainConfig};
use dnnspmv::platform::{label_dataset_noisy, PlatformModel, WorkloadProfile};
use dnnspmv::repr::ReprConfig;
use dnnspmv::sparse::io::read_matrix_market_path;
use dnnspmv::sparse::{CooMatrix, MatrixStats};

const DEFAULT_MODEL: &str = "dnnspmv_model.json";

struct Options {
    model: String,
    matrices: usize,
    epochs: usize,
    platform: PlatformModel,
    file: Option<String>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    gemm_threads: GemmThreading,
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        model: DEFAULT_MODEL.into(),
        matrices: 800,
        epochs: 14,
        platform: PlatformModel::intel_cpu(),
        file: None,
        checkpoint_dir: None,
        resume: None,
        gemm_threads: GemmThreading::Auto,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                o.model = need(args, i, "--model");
            }
            "--matrices" => {
                i += 1;
                o.matrices = need(args, i, "--matrices")
                    .parse()
                    .unwrap_or_else(|_| die("--matrices needs a number"));
            }
            "--epochs" => {
                i += 1;
                o.epochs = need(args, i, "--epochs")
                    .parse()
                    .unwrap_or_else(|_| die("--epochs needs a number"));
            }
            "--checkpoint-dir" => {
                i += 1;
                o.checkpoint_dir = Some(need(args, i, "--checkpoint-dir"));
            }
            "--resume" => {
                i += 1;
                o.resume = Some(need(args, i, "--resume"));
            }
            "--gemm-threads" => {
                i += 1;
                o.gemm_threads = match need(args, i, "--gemm-threads").as_str() {
                    "auto" => GemmThreading::Auto,
                    "serial" | "1" => GemmThreading::Serial,
                    t => GemmThreading::Fixed(t.parse().unwrap_or_else(|_| {
                        die("--gemm-threads needs 'auto', 'serial' or a thread count")
                    })),
                };
            }
            "--platform" => {
                i += 1;
                o.platform = match need(args, i, "--platform").as_str() {
                    "intel" => PlatformModel::intel_cpu(),
                    "amd" => PlatformModel::amd_cpu(),
                    "gpu" => PlatformModel::nvidia_gpu(),
                    "manycore" => PlatformModel::manycore_cpu(),
                    other => die(&format!(
                        "unknown platform '{other}' (intel|amd|gpu|manycore)"
                    )),
                };
            }
            path if !path.starts_with('-') && o.file.is_none() => {
                o.file = Some(path.to_string());
            }
            other => die(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    o
}

fn need(args: &[String], i: usize, flag: &str) -> String {
    args.get(i)
        .unwrap_or_else(|| die(&format!("{flag} needs an argument")))
        .clone()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn selector_config(o: &Options) -> SelectorConfig {
    SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 32,
        },
        train: TrainConfig {
            epochs: o.epochs,
            checkpoint_dir: o.checkpoint_dir.clone(),
            resume_from: o.resume.clone(),
            gemm_threading: o.gemm_threads,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    }
}

fn dataset(n: usize, seed: u64) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_base: (n * 7) / 10,
        n_augmented: n - (n * 7) / 10,
        dim_min: 48,
        dim_max: 256,
        seed,
        ..DatasetSpec::default()
    })
}

fn cmd_train(o: &Options) {
    println!(
        "training on {} synthetic matrices labelled for '{}'...",
        o.matrices, o.platform.name
    );
    let data = dataset(o.matrices, 1);
    let t0 = std::time::Instant::now();
    let labels = label_dataset_noisy(&data.matrices, &o.platform, 0.05, 1);
    let cfg = selector_config(o);
    let (sel, report) = FormatSelector::try_train_with_labels(
        &data.matrices,
        &labels,
        o.platform.formats().to_vec(),
        &cfg,
    )
    .unwrap_or_else(|e| die(&format!("training: {e}")));
    if let Some(epoch) = report.recovery.resumed_at_epoch {
        println!("resumed from checkpoint at epoch {epoch}");
    }
    let samples = make_samples(&data.matrices, &labels, cfg.repr, &cfg.repr_config);
    println!(
        "training accuracy: {:.3} ({} steps, {:.1}s)",
        sel.accuracy(&samples),
        report.loss_history.len(),
        t0.elapsed().as_secs_f64()
    );
    sel.save(&o.model)
        .unwrap_or_else(|e| die(&format!("saving {}: {e}", o.model)));
    println!("model saved to {}", o.model);
}

fn cmd_test(o: &Options) {
    let sel = FormatSelector::load(&o.model)
        .unwrap_or_else(|e| die(&format!("{} ({e}); run 'dnnspmv train' first", o.model)));
    // A fresh dataset (different seed from training) = held-out test.
    let data = dataset(o.matrices, 0xE57);
    let labels = label_dataset_noisy(&data.matrices, &o.platform, 0.05, 0xE57);
    if sel.formats != o.platform.formats() {
        die("model's format set does not match the chosen platform");
    }
    let samples = make_samples(
        &data.matrices,
        &labels,
        sel.config.repr,
        &sel.config.repr_config,
    );
    let acc = sel.accuracy(&samples);
    println!(
        "held-out accuracy on {} fresh matrices: {acc:.3}",
        data.len()
    );
    if acc > 0.9 {
        println!("(the artifact's check: accuracy should be larger than 90%)");
    }
}

fn cmd_predict(o: &Options) {
    let path = o
        .file
        .as_deref()
        .unwrap_or_else(|| die("predict needs a .mtx path"));
    let matrix: CooMatrix<f32> =
        read_matrix_market_path(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let sel = FormatSelector::load(&o.model)
        .unwrap_or_else(|e| die(&format!("{} ({e}); run 'dnnspmv train' first", o.model)));
    let probs = sel.predict_proba(&matrix);
    for (f, p) in sel.formats.iter().zip(&probs) {
        eprintln!("  P({f:>5}) = {p:.3}");
    }
    // The artifact prints just the chosen format name on stdout.
    println!("{}", sel.predict(&matrix));
}

fn cmd_stats(o: &Options) {
    let path = o
        .file
        .as_deref()
        .unwrap_or_else(|| die("stats needs a .mtx path"));
    let matrix: CooMatrix<f32> =
        read_matrix_market_path(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let s = MatrixStats::compute(&matrix);
    println!("{s:#?}");
    let profile = WorkloadProfile::compute(&matrix);
    for platform in [
        PlatformModel::intel_cpu(),
        PlatformModel::amd_cpu(),
        PlatformModel::nvidia_gpu(),
        PlatformModel::manycore_cpu(),
    ] {
        println!("\ncost-model ranking on {}:", platform.name);
        for (f, e) in platform.ranking(&profile) {
            println!("  {f:>5}: {e:.1}");
        }
    }
}

fn cmd_serve_bench(args: &[String]) {
    use dnnspmv_bench::serve::{run_overhead_smoke, run_serve_bench, ServeBenchConfig};
    let mut cfg = ServeBenchConfig::default();
    let mut json_path = String::from("BENCH_serve.json");
    let mut quick = false;
    let mut max_ratio = 1.10;
    let mut min_batched_ratio: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--max-ratio" => {
                i += 1;
                max_ratio = need(args, i, "--max-ratio")
                    .parse()
                    .unwrap_or_else(|_| die("--max-ratio needs a number"));
            }
            "--min-batched-ratio" => {
                i += 1;
                min_batched_ratio = Some(
                    need(args, i, "--min-batched-ratio")
                        .parse()
                        .unwrap_or_else(|_| die("--min-batched-ratio needs a number")),
                );
            }
            "--json" => {
                i += 1;
                json_path = need(args, i, "--json");
            }
            "--matrices" => {
                i += 1;
                cfg.matrices = need(args, i, "--matrices")
                    .parse()
                    .unwrap_or_else(|_| die("--matrices needs a number"));
            }
            "--epochs" => {
                i += 1;
                cfg.epochs = need(args, i, "--epochs")
                    .parse()
                    .unwrap_or_else(|_| die("--epochs needs a number"));
            }
            "--clients" => {
                i += 1;
                cfg.clients = need(args, i, "--clients")
                    .parse()
                    .unwrap_or_else(|_| die("--clients needs a number"));
            }
            "--requests" => {
                i += 1;
                cfg.requests_per_client = need(args, i, "--requests")
                    .parse()
                    .unwrap_or_else(|_| die("--requests needs a number"));
            }
            other => die(&format!("unknown serve-bench flag '{other}'")),
        }
        i += 1;
    }
    if quick {
        // CI overhead gate: a small fast fixture is enough — the gate
        // compares two servers in the same process, so absolute speed
        // cancels out.
        cfg.matrices = cfg.matrices.min(40);
        cfg.epochs = cfg.epochs.min(1);
        let report = run_overhead_smoke(&cfg, max_ratio);
        eprint!("{}", report.render());
        println!("{}", report.to_json());
        if !report.within_budget() {
            std::process::exit(1);
        }
        return;
    }
    let report = run_serve_bench(&cfg);
    eprint!("{}", report.render());
    println!("{}", report.to_json());
    report
        .write_json(&json_path)
        .unwrap_or_else(|e| die(&format!("writing {json_path}: {e}")));
    eprintln!("wrote {json_path}");
    // Throughput gate: the hot path (decision cache + micro-batching)
    // must beat the plain per-request server by the given factor.
    if let Some(min) = min_batched_ratio {
        if report.hot_path.throughput_ratio < min {
            eprintln!(
                "throughput gate FAILED: batched/unbatched ratio {:.2} < {min:.2}",
                report.hot_path.throughput_ratio
            );
            std::process::exit(1);
        }
        eprintln!(
            "throughput gate passed: ratio {:.2} >= {min:.2}",
            report.hot_path.throughput_ratio
        );
    }
}

fn cmd_chaos_soak(args: &[String]) {
    use dnnspmv_bench::chaos_soak::{replay_episode, run_chaos_soak, ChaosSoakConfig};
    if !dnnspmv_chaos::ENABLED {
        die("chaos-soak needs the failpoint registry; rebuild with --features chaos");
    }
    let mut cfg = ChaosSoakConfig::default();
    let mut json_path: Option<String> = None;
    let mut replay_args: Option<(u64, String)> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                let (base_seed, max_rules) = (cfg.base_seed, cfg.max_rules);
                cfg = ChaosSoakConfig {
                    base_seed,
                    max_rules,
                    ..ChaosSoakConfig::quick()
                };
            }
            "--episodes" => {
                i += 1;
                cfg.episodes = need(args, i, "--episodes")
                    .parse()
                    .unwrap_or_else(|_| die("--episodes needs a number"));
            }
            "--seed" => {
                i += 1;
                cfg.base_seed = need(args, i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs a number"));
            }
            "--max-rules" => {
                i += 1;
                cfg.max_rules = need(args, i, "--max-rules")
                    .parse()
                    .unwrap_or_else(|_| die("--max-rules needs a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(need(args, i, "--json"));
            }
            "--replay" => {
                i += 1;
                let seed = need(args, i, "--replay")
                    .parse()
                    .unwrap_or_else(|_| die("--replay needs a seed then a schedule"));
                i += 1;
                replay_args = Some((seed, need(args, i, "--replay")));
            }
            other => die(&format!("unknown chaos-soak flag '{other}'")),
        }
        i += 1;
    }
    if let Some((seed, schedule)) = replay_args {
        let schedule = schedule
            .parse()
            .unwrap_or_else(|e| die(&format!("bad schedule: {e}")));
        let (violations, trace) = replay_episode(seed, &schedule, &cfg);
        eprintln!("replay seed={seed} schedule=\"{schedule}\"");
        for t in &trace {
            eprintln!("  fire: {t}");
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("  violation: {v}");
            }
            std::process::exit(1);
        }
        eprintln!("replay clean: every invariant held");
        return;
    }
    let report = run_chaos_soak(&cfg);
    eprint!("{}", report.render());
    println!("{}", report.to_json());
    if let Some(path) = json_path {
        report
            .write_json(&path)
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if !report.gates_passed() {
        std::process::exit(1);
    }
}

fn cmd_evolve(args: &[String]) {
    use dnnspmv::feedback::{evolve, replay, EvolveConfig, FeedbackError};
    use dnnspmv::nn::Migration;

    let mut journal: Option<String> = None;
    let mut model = String::from(DEFAULT_MODEL);
    let mut out: Option<String> = None;
    let mut promote = false;
    let mut cfg = EvolveConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                i += 1;
                journal = Some(need(args, i, "--journal"));
            }
            "--model" => {
                i += 1;
                model = need(args, i, "--model");
            }
            "--out" => {
                i += 1;
                out = Some(need(args, i, "--out"));
            }
            "--promote" => promote = true,
            "--epochs" => {
                i += 1;
                cfg.train.epochs = need(args, i, "--epochs")
                    .parse()
                    .unwrap_or_else(|_| die("--epochs needs a number"));
            }
            "--strategy" => {
                i += 1;
                cfg.strategy = need(args, i, "--strategy")
                    .parse::<Migration>()
                    .unwrap_or_else(|e| die(&e));
            }
            "--margin" => {
                i += 1;
                cfg.margin = need(args, i, "--margin")
                    .parse()
                    .unwrap_or_else(|_| die("--margin needs a number"));
            }
            "--holdout" => {
                i += 1;
                cfg.holdout_frac = need(args, i, "--holdout")
                    .parse()
                    .unwrap_or_else(|_| die("--holdout needs a fraction"));
            }
            "--min-records" => {
                i += 1;
                cfg.min_records = need(args, i, "--min-records")
                    .parse()
                    .unwrap_or_else(|_| die("--min-records needs a number"));
            }
            "--checkpoint-dir" => {
                i += 1;
                cfg.train.checkpoint_dir = Some(need(args, i, "--checkpoint-dir"));
            }
            "--resume" => {
                i += 1;
                cfg.train.resume_from = Some(need(args, i, "--resume"));
            }
            other => die(&format!("unknown evolve flag '{other}'")),
        }
        i += 1;
    }
    let journal = journal.unwrap_or_else(|| die("evolve needs --journal DIR"));
    let out = out.unwrap_or_else(|| format!("{model}.candidate"));

    let incumbent = FormatSelector::load(&model)
        .unwrap_or_else(|e| die(&format!("{model} ({e}); train or serve a model first")));
    let (records, report) = replay(std::path::Path::new(&journal))
        .unwrap_or_else(|e| die(&format!("replaying {journal}: {e}")));
    eprintln!(
        "journal: {} records from {} segments ({} corrupt, {} torn-tail bytes, {} torn segments)",
        report.records,
        report.segments,
        report.corrupt_records,
        report.torn_tail_bytes,
        report.torn_segments
    );

    match evolve(&incumbent, &records, &cfg) {
        Ok((candidate, shadow, train_report)) => {
            eprintln!(
                "fine-tuned on {} records, {} epochs; shadow holdout {}: \
                 incumbent {:.3} vs candidate {:.3} (margin {:.3})",
                shadow.train_records,
                train_report.loss_history.len(),
                shadow.holdout_records,
                shadow.incumbent_accuracy,
                shadow.candidate_accuracy,
                shadow.margin
            );
            // The shadow report goes to stdout as JSON so automation can
            // archive the gate decision alongside the model files.
            println!(
                "{}",
                serde_json::to_string(&shadow).unwrap_or_else(|e| die(&format!("report: {e}")))
            );
            if !shadow.promote {
                eprintln!("shadow gate REJECTED the candidate; nothing written");
                std::process::exit(3);
            }
            candidate
                .save(&out)
                .unwrap_or_else(|e| die(&format!("saving {out}: {e}")));
            eprintln!("candidate saved to {out}");
            if promote {
                candidate
                    .save(&model)
                    .unwrap_or_else(|e| die(&format!("promoting over {model}: {e}")));
                eprintln!("promoted: {model} now holds the candidate");
            }
        }
        Err(FeedbackError::InsufficientRecords { have, need }) => {
            eprintln!("not enough usable records to evolve: {have} of {need} required");
            std::process::exit(3);
        }
        Err(e) => die(&format!("evolve: {e}")),
    }
}

fn cmd_metrics(args: &[String]) {
    use dnnspmv::core::{DtSelector, SelectorService};
    use dnnspmv::platform::label_dataset;
    use dnnspmv::repr::{MatrixRepr, ReprKind};
    use dnnspmv::sparse::{AnyMatrix, SparseFormat, Spmv};

    let mut json = false;
    let mut n = 24usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--matrices" => {
                i += 1;
                n = need(args, i, "--matrices")
                    .parse()
                    .unwrap_or_else(|_| die("--matrices needs a number"));
            }
            other => die(&format!("unknown metrics flag '{other}'")),
        }
        i += 1;
    }

    // The registry only holds what has been recorded, so drive a short
    // workload through every instrumented layer first: representation
    // extraction (repr_extract_ns), each format's serial and parallel
    // SpMV kernel (spmv_ns — present when built with
    // `--features kernel-timers`), and selector ladder decisions
    // (selector_rung_total, via a tree-only service bound to the
    // process-wide registry).
    let data = dataset(n, 9);
    let repr_cfg = ReprConfig {
        image_size: 32,
        hist_rows: 32,
        hist_bins: 32,
    };
    for m in &data.matrices {
        for kind in ReprKind::ALL {
            let _ = MatrixRepr::extract(m, kind, &repr_cfg);
        }
        let x = vec![1.0f32; m.ncols()];
        let mut y = vec![0.0f32; m.nrows()];
        for f in SparseFormat::ALL {
            // DIA/ELL conversion legitimately fails on matrices past
            // their padding limits; skip those formats for this matrix.
            if let Ok(any) = AnyMatrix::convert(m, f) {
                any.spmv(&x, &mut y);
                any.spmv_par(&x, &mut y);
            }
        }
    }
    let platform = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &platform);
    let dt = DtSelector::train(&data.matrices, &labels, platform.formats().to_vec());
    let service = SelectorService::new(None, Some(dt))
        .unwrap_or_else(|e| die(&format!("building service: {e}")))
        .with_registry(dnnspmv::obs::global().clone());
    for m in &data.matrices {
        let _ = service.select(m);
    }

    let snap = dnnspmv::obs::global().snapshot();
    if json {
        println!("{}", snap.to_json());
    } else {
        print!("{}", snap.to_prometheus());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: dnnspmv <train|test|predict|stats|serve-bench|evolve|chaos-soak|metrics> \
             [options]"
        );
        std::process::exit(2);
    };
    if cmd == "serve-bench" {
        cmd_serve_bench(&args[1..]);
        return;
    }
    if cmd == "evolve" {
        cmd_evolve(&args[1..]);
        return;
    }
    if cmd == "chaos-soak" {
        cmd_chaos_soak(&args[1..]);
        return;
    }
    if cmd == "metrics" {
        cmd_metrics(&args[1..]);
        return;
    }
    let o = parse_options(&args[1..]);
    match cmd.as_str() {
        "train" => cmd_train(&o),
        "test" => cmd_test(&o),
        "predict" => cmd_predict(&o),
        "stats" => cmd_stats(&o),
        other => die(&format!("unknown command '{other}'")),
    }
}
