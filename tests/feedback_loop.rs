//! End-to-end closed loop: drift trips on a simulated environment
//! change, an evolve pass fine-tunes a candidate from the journal, the
//! shadow gate promotes it (and rejects a poisoned one), accuracy
//! recovers, and a forced bad promotion rolls back.
//!
//! The environment change is the sampler's deterministic `ModelTimer`
//! rotating its cost vector — no wall-clock timing anywhere, so the
//! functional gates are stable in debug builds. The wall-clock tap
//! overhead gate runs in the release-mode CI soak (`bench_loop`), not
//! here.

use dnnspmv_bench::closed_loop::{run_closed_loop, ClosedLoopConfig};
use dnnspmv_feedback::DriftConfig;

#[test]
fn closed_loop_drifts_evolves_promotes_and_rolls_back() {
    let report = run_closed_loop(&ClosedLoopConfig {
        matrices: 60,
        train_epochs: 3,
        evolve_epochs: 14,
        rounds_per_phase: 2,
        drift: DriftConfig {
            window: 64,
            min_samples: 16,
            threshold: 0.7,
        },
        skip_overhead: true,
        ..ClosedLoopConfig::default()
    });

    // Steady phase: the selector agrees with the (unrotated) measured
    // labels and the detector stays quiet.
    assert!(
        report.steady_accuracy >= report.drift_threshold,
        "steady accuracy {:.3} below threshold",
        report.steady_accuracy
    );
    // The environment change must trip the detector...
    assert!(report.drift_tripped, "drift never tripped");
    assert!(
        report.drifted_accuracy < report.drift_threshold,
        "drifted accuracy {:.3} did not collapse",
        report.drifted_accuracy
    );
    // ...the journal must replay cleanly...
    assert_eq!(report.journal_corrupt, 0);
    assert!(report.journal_records > 0);
    assert_eq!(report.shed_total, 0, "this load must not shed samples");
    // ...the shadow gate must promote the honest candidate and hold
    // against the poisoned one...
    assert!(
        report.promoted,
        "shadow gate rejected the honest candidate: incumbent {:.3} vs candidate {:.3}",
        report.shadow.incumbent_accuracy, report.shadow.candidate_accuracy
    );
    assert!(
        report.poisoned_rejected,
        "shadow gate promoted a poisoned candidate at {:.3}",
        report.poisoned_accuracy
    );
    // ...promotion must recover accuracy on fresh evidence...
    assert!(
        report.recovered,
        "post-promotion accuracy {:.3} below threshold {:.3}",
        report.recovered_accuracy, report.drift_threshold
    );
    // ...and the forced bad promotion must roll back, after which the
    // good generation serves again.
    assert!(report.rollback, "bad promotion was not rolled back");
    assert_eq!(report.rollback_total, 1);
    assert!(
        report.post_rollback_accuracy >= report.drift_threshold,
        "post-rollback accuracy {:.3} did not recover",
        report.post_rollback_accuracy
    );
    assert!(report.gates_passed(), "aggregate gate disagrees with parts");
}
