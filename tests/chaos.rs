//! End-to-end chaos regression: replays a captured `(seed, schedule)`
//! pair through the full closed loop. The schedule fires an injected
//! panic inside representation extraction on the micro-batch path —
//! before this PR, that panic unwound through the batch loop and
//! killed the worker thread (every in-flight reply channel dropped,
//! `WorkerLost` surfaced to clients). The episode must now replay
//! clean: the panic is absorbed per-member at the extraction boundary
//! and every standing invariant holds.
//!
//! Compiled only with the `chaos` feature; without it the failpoint
//! registry is a no-op and there is nothing to replay.
#![cfg(feature = "chaos")]

use dnnspmv_bench::chaos_soak::{replay_episode, ChaosSoakConfig};

#[test]
fn captured_batch_extraction_panic_episode_replays_clean() {
    let cfg = ChaosSoakConfig {
        episodes: 1,
        clients: 2,
        requests_per_client: 12,
        matrices: 24,
        train_epochs: 1,
        evolve_epochs: 1,
        min_distinct_sites: 1,
        ..ChaosSoakConfig::default()
    };
    let schedule = "serve.repr.extract=panic@p(0.5);feedback.journal.append=err@every(2)"
        .parse()
        .expect("captured schedule parses");
    let (violations, trace) = replay_episode(3_299_003_395, &schedule, &cfg);
    assert!(
        trace.iter().any(|t| t.contains("serve.repr.extract")),
        "the captured seed must fire the extraction panic site, trace: {trace:#?}"
    );
    assert!(
        violations.is_empty(),
        "the captured episode must replay clean, violations: {violations:#?}"
    );
}
