//! Cross-crate integration tests: the full Figure 3 pipeline from
//! matrix generation through labelling, normalisation, training,
//! prediction, and format application.

use dnnspmv::core::{
    make_samples, DtSelector, FormatSelector, SelectionSource, SelectorConfig, SelectorError,
    SelectorService,
};
use dnnspmv::gen::{kfold, Dataset, DatasetSpec};
use dnnspmv::nn::transfer::Migration;
use dnnspmv::nn::{checkpoint_path, train_with_hooks, NnError, TrainConfig, TrainHooks};
use dnnspmv::platform::{label_dataset, label_dataset_noisy, PlatformModel};
use dnnspmv::repr::{ReprConfig, ReprKind};
use dnnspmv::sparse::{AnyMatrix, Scalar, SparseFormat, Spmv};

fn small_config() -> SelectorConfig {
    SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        cnn: dnnspmv::nn::CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 5,
        },
        train: TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 2e-3,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    }
}

fn small_dataset(seed: u64) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_base: 140,
        n_augmented: 40,
        dim_min: 48,
        dim_max: 160,
        seed,
        ..DatasetSpec::default()
    })
}

#[test]
fn end_to_end_cpu_pipeline_beats_chance_out_of_sample() {
    let data = small_dataset(1);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let folds = kfold(data.matrices.len(), 4, 2);
    let (train_idx, test_idx) = &folds[0];
    let cfg = small_config();
    let samples = make_samples(&data.matrices, &labels, cfg.repr, &cfg.repr_config);
    let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
    let test: Vec<_> = test_idx.iter().map(|&i| samples[i].clone()).collect();
    let (sel, report) = FormatSelector::train_on_samples(&train, intel.formats().to_vec(), &cfg);
    assert!(!report.loss_history.is_empty());
    let acc = sel.accuracy(&test);
    // Majority class (CSR) is ~70%; the trained model must at least be
    // far above uniform chance on held-out data.
    assert!(acc > 0.6, "held-out accuracy {acc}");
}

#[test]
fn predictions_always_yield_runnable_spmv() {
    let data = small_dataset(3);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    for m in data.matrices.iter().take(20) {
        let stored = sel.prepare(m);
        let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 5) as f32 - 2.0).collect();
        let got = stored.spmv_alloc(&x);
        let want = m.spmv_alloc(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                a.approx_eq(*b, 1e-3),
                "format {} disagrees with COO: {a} vs {b}",
                stored.format()
            );
        }
    }
}

#[test]
fn gpu_pipeline_covers_six_formats() {
    let data = small_dataset(5);
    let gpu = PlatformModel::nvidia_gpu();
    let labels = label_dataset_noisy(&data.matrices, &gpu, 0.06, 9);
    // The six-class problem trains and predicts within the GPU set.
    let (sel, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        gpu.formats().to_vec(),
        &small_config(),
    );
    assert_eq!(sel.formats.len(), 6);
    for m in data.matrices.iter().take(10) {
        assert!(gpu.formats().contains(&sel.predict(m)));
    }
}

#[test]
fn dt_and_cnn_solve_the_same_task() {
    let data = small_dataset(7);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
    let (cnn, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &small_config(),
    );
    // Both in-sample accuracies should be well above the majority rate
    // on labels they trained on.
    let dt_acc = dt.accuracy(&data.matrices, &labels);
    assert!(dt_acc > 0.8, "DT in-sample {dt_acc}");
    let samples = make_samples(
        &data.matrices,
        &labels,
        cnn.config.repr,
        &cnn.config.repr_config,
    );
    let cnn_acc = cnn.accuracy(&samples);
    assert!(cnn_acc > 0.6, "CNN in-sample {cnn_acc}");
}

#[test]
fn migration_improves_over_unmigrated_source() {
    let data = small_dataset(11);
    let intel = PlatformModel::intel_cpu();
    let amd = PlatformModel::amd_cpu();
    let cfg = small_config();
    let intel_labels = label_dataset(&data.matrices, &intel);
    let amd_labels = label_dataset(&data.matrices, &amd);
    let samples_src = make_samples(&data.matrices, &intel_labels, cfg.repr, &cfg.repr_config);
    let samples_tgt = make_samples(&data.matrices, &amd_labels, cfg.repr, &cfg.repr_config);
    // Interleaved split: the dataset is ordered base-then-augmented, so
    // a prefix/suffix split would hold out *all* augmented matrices and
    // measure base->augmented distribution shift instead of migration.
    let held_out = |i: &usize| i.is_multiple_of(3);
    let train_src: Vec<_> = (0..samples_src.len())
        .filter(|i| !held_out(i))
        .map(|i| samples_src[i].clone())
        .collect();
    let train_tgt: Vec<_> = (0..samples_tgt.len())
        .filter(|i| !held_out(i))
        .map(|i| samples_tgt[i].clone())
        .collect();
    let test: Vec<_> = (0..samples_tgt.len())
        .filter(held_out)
        .map(|i| samples_tgt[i].clone())
        .collect();
    let (source, _) = FormatSelector::train_on_samples(&train_src, intel.formats().to_vec(), &cfg);
    let before = source.accuracy(&test);
    let mut migrate_cfg = cfg.train.clone();
    migrate_cfg.epochs = 16;
    let (migrated, _) = source.migrate(Migration::ContinuousEvolvement, &train_tgt, &migrate_cfg);
    let after = migrated.accuracy(&test);
    // Small sample sizes make this noisy; migration must not fall off a
    // cliff relative to the unmigrated source, and usually improves.
    assert!(
        after >= before - 0.08,
        "migration regressed: {before} -> {after}"
    );
}

#[test]
fn every_selected_format_is_convertible_or_has_fallback() {
    // Even adversarial matrices (massive anti-diagonal) must flow
    // through prepare() without panicking.
    let n = 9000;
    let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
    let awkward = dnnspmv::sparse::CooMatrix::from_triplets(n, n, &t).unwrap();
    let data = small_dataset(13);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    let stored = sel.prepare(&awkward);
    // DIA is infeasible here; whatever was chosen must reproduce COO.
    assert_ne!(stored.format(), SparseFormat::Dia);
    let x = vec![1.0f32; n];
    let y = stored.spmv_alloc(&x);
    assert_eq!(y.iter().filter(|&&v| v != 0.0).count(), n);
}

#[test]
fn representations_flow_into_training_for_all_kinds() {
    let data = small_dataset(17);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    for kind in ReprKind::ALL {
        let mut cfg = small_config();
        cfg.repr = kind;
        cfg.train.epochs = 2;
        let (sel, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            intel.formats().to_vec(),
            &cfg,
        );
        // Prediction runs and produces a valid class.
        let p = sel.predict_proba(&data.matrices[0]);
        assert_eq!(p.len(), 4, "{kind:?}");
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn saved_selector_round_trips_and_corruption_is_a_typed_error() {
    let data = small_dataset(23);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    let path = std::env::temp_dir().join(format!("pipeline_sel_{}.json", std::process::id()));
    let path_s = path.to_string_lossy().into_owned();
    sel.save(&path_s).unwrap();

    // A clean reload predicts identically.
    let loaded = FormatSelector::load(&path_s).unwrap();
    for m in data.matrices.iter().take(6) {
        assert_eq!(loaded.predict(m), sel.predict(m));
    }

    // Truncation surfaces as a deserialisation error, not a panic.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    match FormatSelector::load(&path_s) {
        Err(SelectorError::Nn(NnError::Serde(_))) => {}
        other => panic!("truncated file: expected Serde error, got {other:?}"),
    }

    // A single flipped byte in the payload trips the checksum.
    std::fs::write(&path, text.replacen("formats", "f0rmats", 1)).unwrap();
    match FormatSelector::load(&path_s) {
        Err(SelectorError::Nn(NnError::ChecksumMismatch { .. })) => {}
        other => panic!("bit flip: expected ChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn manycore_pipeline_selects_the_new_kernels_end_to_end() {
    // The widened universe flows through every stage: the manycore
    // model labels with SELL-C-σ and merge-path CSR, the CNN trains a
    // 6-class head on those labels, and predictions stay inside the
    // manycore candidate set and convert to runnable kernels.
    let data = small_dataset(29);
    let manycore = PlatformModel::manycore_cpu();
    let labels = label_dataset(&data.matrices, &manycore);
    let label_formats: Vec<SparseFormat> = labels.iter().map(|&i| manycore.formats()[i]).collect();
    for f in [SparseFormat::Sell, SparseFormat::MergeCsr] {
        assert!(
            label_formats.contains(&f),
            "manycore labelling never chose {f} on a mixed dataset"
        );
    }
    let (sel, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        manycore.formats().to_vec(),
        &small_config(),
    );
    assert_eq!(sel.formats.len(), SparseFormat::MANYCORE_SET.len());
    for m in data.matrices.iter().take(12) {
        let f = sel.predict(m);
        assert!(SparseFormat::MANYCORE_SET.contains(&f));
        let any = AnyMatrix::convert(m, f).expect("manycore formats always convert");
        let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 5) as f32 - 2.0).collect();
        let got = any.spmv_alloc(&x);
        let want = m.spmv_alloc(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-3), "format {f}: {a} vs {b}");
        }
    }
}

#[test]
fn pre_widening_artefacts_are_rejected_with_a_typed_version_error() {
    // A selector saved before the format universe widened to 9 classes
    // has a 7-way head whose class indices would silently mislabel
    // under the new enum. The envelope's format_version must reject it
    // *as a version error* — not a checksum failure (the checksum only
    // covers the payload, which is untouched here) and not a panic.
    let data = small_dataset(31);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    let path = std::env::temp_dir().join(format!("pipeline_sel_v1_{}.json", std::process::id()));
    let path_s = path.to_string_lossy().into_owned();
    sel.save(&path_s).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"format_version\":2"),
        "current envelopes are v2"
    );
    std::fs::write(
        &path,
        text.replacen("\"format_version\":2", "\"format_version\":1", 1),
    )
    .unwrap();
    match FormatSelector::load(&path_s) {
        Err(SelectorError::Nn(NnError::FormatVersion { found, supported })) => {
            assert_eq!(found, 1);
            assert_eq!(supported, 2);
        }
        other => panic!("v1 artefact: expected FormatVersion error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn training_resumes_after_a_simulated_crash() {
    let data = small_dataset(29);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let cfg = small_config();
    let samples = make_samples(&data.matrices, &labels, cfg.repr, &cfg.repr_config);
    let shape = samples[0].channels[0].shape();
    let build = || {
        dnnspmv::nn::build_cnn(
            cfg.merging,
            samples[0].channels.len(),
            (shape[0], shape[1]),
            intel.formats().len(),
            &cfg.cnn,
        )
    };
    let dir = std::env::temp_dir().join(format!("pipeline_ckpt_{}", std::process::id()));
    let train_cfg = TrainConfig {
        epochs: 4,
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..cfg.train.clone()
    };

    // The uninterrupted run is the ground truth.
    let mut full_net = build();
    let full =
        train_with_hooks(&mut full_net, &samples, &train_cfg, TrainHooks::default()).unwrap();

    // "Crash" after epoch 2, then resume from the checkpoint on disk.
    let mut killed = build();
    train_with_hooks(
        &mut killed,
        &samples,
        &train_cfg,
        TrainHooks {
            abort_after_epoch: Some(2),
            ..TrainHooks::default()
        },
    )
    .unwrap();
    let mut resumed_net = build();
    let resumed = train_with_hooks(
        &mut resumed_net,
        &samples,
        &TrainConfig {
            resume_from: Some(checkpoint_path(&dir).to_string_lossy().into_owned()),
            ..train_cfg.clone()
        },
        TrainHooks::default(),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(resumed.recovery.resumed_at_epoch, Some(2));
    assert_eq!(full.loss_history.len(), resumed.loss_history.len());
    for (a, b) in full.loss_history.iter().zip(&resumed.loss_history) {
        assert!(
            (a - b).abs() <= 1e-4,
            "loss diverged after resume: {a} vs {b}"
        );
    }
    assert_eq!(full_net, resumed_net, "resumed weights differ");
}

#[test]
fn selector_service_degrades_cnn_to_tree_to_default() {
    let data = small_dataset(31);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let (cnn, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &small_config(),
    );
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());

    // Rung 1: a healthy CNN answers.
    let svc = SelectorService::new(Some(cnn.clone()), Some(dt.clone())).unwrap();
    assert_eq!(svc.select(&data.matrices[0]).source, SelectionSource::Cnn);
    assert_eq!(svc.report().cnn_ok, 1);

    // Rung 2: a CNN with finite but absurd weights passes load-time
    // validation, overflows at inference, and degrades to the tree.
    let mut bad = cnn;
    for layer in &mut bad.net.head.layers {
        if let dnnspmv::nn::Layer::Dense(d) = layer {
            for v in d.weight.data_mut() {
                *v = 1e30;
            }
        }
    }
    let svc = SelectorService::new(Some(bad), Some(dt)).unwrap();
    let sel = svc.select(&data.matrices[0]);
    assert_eq!(sel.source, SelectionSource::Tree);
    assert!(intel.formats().contains(&sel.format));
    let r = svc.report();
    assert_eq!(r.cnn_nonfinite, 1);
    assert_eq!(r.tree_ok, 1);

    // Rung 3: with no predictors at all, the static default holds.
    let svc = SelectorService::new(None, None).unwrap();
    let sel = svc.select(&data.matrices[0]);
    assert_eq!(sel.source, SelectionSource::Default);
    assert_eq!(sel.format, SparseFormat::Csr);
    assert_eq!(svc.report().default_used, 1);
}

#[test]
fn selector_server_serves_the_ladder_with_exact_accounting() {
    use dnnspmv::core::{SelectorServer, ServeError, ServerConfig};
    let data = small_dataset(37);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
    let svc = SelectorService::new(None, Some(dt)).unwrap();
    let server: SelectorServer<f32> = SelectorServer::new(svc, ServerConfig::default());
    for m in data.matrices.iter().take(8) {
        let sel = server.select(m).unwrap();
        assert_eq!(sel.source, SelectionSource::Tree);
        assert!(intel.formats().contains(&sel.format));
    }
    server.shutdown();
    assert!(matches!(
        server.select(&data.matrices[0]),
        Err(ServeError::ShuttingDown)
    ));
    let r = server.report();
    assert_eq!(r.submitted, 9);
    assert_eq!(r.served_tree, 8);
    assert_eq!(r.rejected_shutdown, 1);
    assert_eq!(r.accounted(), r.submitted);
}

#[test]
fn any_matrix_conversion_round_trips_on_generated_data() {
    let data = small_dataset(19);
    for m in data.matrices.iter().take(12) {
        for f in SparseFormat::ALL {
            match AnyMatrix::convert(m, f) {
                Ok(stored) => assert_eq!(stored.to_coo().unwrap(), *m, "format {f}"),
                Err(_) => {
                    // Only the padded formats may refuse.
                    assert!(matches!(
                        f,
                        SparseFormat::Dia | SparseFormat::Ell | SparseFormat::Bsr
                    ));
                }
            }
        }
    }
}
