//! Cross-crate integration tests: the full Figure 3 pipeline from
//! matrix generation through labelling, normalisation, training,
//! prediction, and format application.

use dnnspmv::core::{make_samples, DtSelector, FormatSelector, SelectorConfig};
use dnnspmv::gen::{kfold, Dataset, DatasetSpec};
use dnnspmv::nn::transfer::Migration;
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::{label_dataset, label_dataset_noisy, PlatformModel};
use dnnspmv::repr::{ReprConfig, ReprKind};
use dnnspmv::sparse::{AnyMatrix, Scalar, SparseFormat, Spmv};

fn small_config() -> SelectorConfig {
    SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        cnn: dnnspmv::nn::CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 5,
        },
        train: TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 2e-3,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    }
}

fn small_dataset(seed: u64) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_base: 140,
        n_augmented: 40,
        dim_min: 48,
        dim_max: 160,
        seed,
        ..DatasetSpec::default()
    })
}

#[test]
fn end_to_end_cpu_pipeline_beats_chance_out_of_sample() {
    let data = small_dataset(1);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let folds = kfold(data.matrices.len(), 4, 2);
    let (train_idx, test_idx) = &folds[0];
    let cfg = small_config();
    let samples = make_samples(&data.matrices, &labels, cfg.repr, &cfg.repr_config);
    let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
    let test: Vec<_> = test_idx.iter().map(|&i| samples[i].clone()).collect();
    let (sel, report) = FormatSelector::train_on_samples(&train, intel.formats().to_vec(), &cfg);
    assert!(!report.loss_history.is_empty());
    let acc = sel.accuracy(&test);
    // Majority class (CSR) is ~70%; the trained model must at least be
    // far above uniform chance on held-out data.
    assert!(acc > 0.6, "held-out accuracy {acc}");
}

#[test]
fn predictions_always_yield_runnable_spmv() {
    let data = small_dataset(3);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    for m in data.matrices.iter().take(20) {
        let stored = sel.prepare(m);
        let x: Vec<f32> = (0..m.ncols()).map(|i| (i % 5) as f32 - 2.0).collect();
        let got = stored.spmv_alloc(&x);
        let want = m.spmv_alloc(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                a.approx_eq(*b, 1e-3),
                "format {} disagrees with COO: {a} vs {b}",
                stored.format()
            );
        }
    }
}

#[test]
fn gpu_pipeline_covers_six_formats() {
    let data = small_dataset(5);
    let gpu = PlatformModel::nvidia_gpu();
    let labels = label_dataset_noisy(&data.matrices, &gpu, 0.06, 9);
    // The six-class problem trains and predicts within the GPU set.
    let (sel, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        gpu.formats().to_vec(),
        &small_config(),
    );
    assert_eq!(sel.formats.len(), 6);
    for m in data.matrices.iter().take(10) {
        assert!(gpu.formats().contains(&sel.predict(m)));
    }
}

#[test]
fn dt_and_cnn_solve_the_same_task() {
    let data = small_dataset(7);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
    let (cnn, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &small_config(),
    );
    // Both in-sample accuracies should be well above the majority rate
    // on labels they trained on.
    let dt_acc = dt.accuracy(&data.matrices, &labels);
    assert!(dt_acc > 0.8, "DT in-sample {dt_acc}");
    let samples = make_samples(
        &data.matrices,
        &labels,
        cnn.config.repr,
        &cnn.config.repr_config,
    );
    let cnn_acc = cnn.accuracy(&samples);
    assert!(cnn_acc > 0.6, "CNN in-sample {cnn_acc}");
}

#[test]
fn migration_improves_over_unmigrated_source() {
    let data = small_dataset(11);
    let intel = PlatformModel::intel_cpu();
    let amd = PlatformModel::amd_cpu();
    let cfg = small_config();
    let intel_labels = label_dataset(&data.matrices, &intel);
    let amd_labels = label_dataset(&data.matrices, &amd);
    let samples_src = make_samples(&data.matrices, &intel_labels, cfg.repr, &cfg.repr_config);
    let samples_tgt = make_samples(&data.matrices, &amd_labels, cfg.repr, &cfg.repr_config);
    // Interleaved split: the dataset is ordered base-then-augmented, so
    // a prefix/suffix split would hold out *all* augmented matrices and
    // measure base->augmented distribution shift instead of migration.
    let held_out = |i: &usize| i.is_multiple_of(3);
    let train_src: Vec<_> = (0..samples_src.len())
        .filter(|i| !held_out(i))
        .map(|i| samples_src[i].clone())
        .collect();
    let train_tgt: Vec<_> = (0..samples_tgt.len())
        .filter(|i| !held_out(i))
        .map(|i| samples_tgt[i].clone())
        .collect();
    let test: Vec<_> = (0..samples_tgt.len())
        .filter(held_out)
        .map(|i| samples_tgt[i].clone())
        .collect();
    let (source, _) = FormatSelector::train_on_samples(&train_src, intel.formats().to_vec(), &cfg);
    let before = source.accuracy(&test);
    let mut migrate_cfg = cfg.train.clone();
    migrate_cfg.epochs = 16;
    let (migrated, _) = source.migrate(Migration::ContinuousEvolvement, &train_tgt, &migrate_cfg);
    let after = migrated.accuracy(&test);
    // Small sample sizes make this noisy; migration must not fall off a
    // cliff relative to the unmigrated source, and usually improves.
    assert!(
        after >= before - 0.08,
        "migration regressed: {before} -> {after}"
    );
}

#[test]
fn every_selected_format_is_convertible_or_has_fallback() {
    // Even adversarial matrices (massive anti-diagonal) must flow
    // through prepare() without panicking.
    let n = 9000;
    let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
    let awkward = dnnspmv::sparse::CooMatrix::from_triplets(n, n, &t).unwrap();
    let data = small_dataset(13);
    let intel = PlatformModel::intel_cpu();
    let (sel, _) = FormatSelector::train_on_platform(&data.matrices, &intel, &small_config());
    let stored = sel.prepare(&awkward);
    // DIA is infeasible here; whatever was chosen must reproduce COO.
    assert_ne!(stored.format(), SparseFormat::Dia);
    let x = vec![1.0f32; n];
    let y = stored.spmv_alloc(&x);
    assert_eq!(y.iter().filter(|&&v| v != 0.0).count(), n);
}

#[test]
fn representations_flow_into_training_for_all_kinds() {
    let data = small_dataset(17);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    for kind in ReprKind::ALL {
        let mut cfg = small_config();
        cfg.repr = kind;
        cfg.train.epochs = 2;
        let (sel, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            intel.formats().to_vec(),
            &cfg,
        );
        // Prediction runs and produces a valid class.
        let p = sel.predict_proba(&data.matrices[0]);
        assert_eq!(p.len(), 4, "{kind:?}");
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}

#[test]
fn any_matrix_conversion_round_trips_on_generated_data() {
    let data = small_dataset(19);
    for m in data.matrices.iter().take(12) {
        for f in SparseFormat::ALL {
            match AnyMatrix::convert(m, f) {
                Ok(stored) => assert_eq!(stored.to_coo(), *m, "format {f}"),
                Err(_) => {
                    // Only the padded formats may refuse.
                    assert!(matches!(f, SparseFormat::Dia | SparseFormat::Ell));
                }
            }
        }
    }
}
