//! Deterministic fault-injection tests for the admission-controlled
//! selector server: burst load, deadlines, circuit breaker, hot
//! reload, and exact counter accounting under parallel hammering.
//!
//! All timing-sensitive behaviour runs against an injected fake clock
//! (an `AtomicU64` of nanoseconds advanced explicitly by the test or by
//! fault hooks), so nothing here depends on scheduler luck.

use dnnspmv::core::{
    BreakerConfig, BreakerState, CacheConfig, CnnFault, DtSelector, FormatSelector,
    SelectionSource, SelectorConfig, SelectorServer, SelectorService, ServeError, ServeHooks,
    ServerConfig,
};
use dnnspmv::gen::{Dataset, DatasetSpec};
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::{label_dataset, PlatformModel};
use dnnspmv::repr::ReprConfig;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Duration;

/// Trained fixture, built once per test binary: a small CNN selector,
/// the matching decision tree, and the dataset they were trained on.
fn fixture() -> &'static (FormatSelector, DtSelector, Dataset) {
    static FIXTURE: OnceLock<(FormatSelector, DtSelector, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = Dataset::generate(&DatasetSpec {
            n_base: 80,
            n_augmented: 20,
            dim_min: 48,
            dim_max: 112,
            seed: 41,
            ..DatasetSpec::default()
        });
        let intel = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &intel);
        let cfg = SelectorConfig {
            repr_config: ReprConfig {
                image_size: 32,
                hist_rows: 32,
                hist_bins: 16,
            },
            cnn: dnnspmv::nn::CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 5,
            },
            train: TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 2e-3,
                ..TrainConfig::default()
            },
            ..SelectorConfig::default()
        };
        let (cnn, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            intel.formats().to_vec(),
            &cfg,
        );
        let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
        (cnn, dt, data)
    })
}

/// A full CNN+tree ladder with the confidence gate disabled, so every
/// healthy CNN answer counts as a CNN answer.
fn full_service() -> SelectorService {
    let (cnn, dt, _) = fixture();
    SelectorService::new(Some(cnn.clone()), Some(dt.clone()))
        .unwrap()
        .with_confidence_threshold(0.0)
}

fn fake_clock() -> (Arc<AtomicU64>, dnnspmv::core::ClockFn) {
    let t = Arc::new(AtomicU64::new(0));
    let tc = Arc::clone(&t);
    (t, Arc::new(move || tc.load(Ordering::SeqCst)))
}

fn tight_breaker() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 3,
        open_backoff: Duration::from_nanos(1_000),
        max_backoff: Duration::from_nanos(8_000),
    }
}

/// Acceptance (a): a burst beyond queue capacity is shed with a typed
/// `Overloaded` error while every admitted request still completes, and
/// the terminal counters account for every single submission.
#[test]
fn burst_load_sheds_overloaded_and_admitted_requests_complete() {
    let (_, _, data) = fixture();
    let (_, clock) = fake_clock();
    // One worker, parked inside the CNN-fault hook until released, so
    // the queue depth is fully under test control. The hook signals
    // `entered` so the test knows when the worker has dequeued a job.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            entered_tx.send(()).ok();
            gate_rx.lock().unwrap().recv().ok();
            CnnFault::None
        })),
    };
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, hooks, clock);
    let m = Arc::new(data.matrices[0].clone());

    // First request occupies the worker (it blocks in the hook); once
    // `entered` fires the queue is empty and the worker is busy, so
    // the next four fill the queue exactly.
    let mut pending = Vec::new();
    pending.push(server.submit(Arc::clone(&m), None).unwrap());
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker never dequeued the first job");
    for _ in 0..4 {
        pending.push(server.submit(Arc::clone(&m), None).unwrap());
    }
    // The burst: every further submission must shed, immediately.
    let mut shed = 0u64;
    for _ in 0..7 {
        match server.submit(Arc::clone(&m), None) {
            Ok(_) => panic!("full queue must shed"),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 4);
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(shed, 7);

    // Release the worker: every admitted request completes.
    for _ in 0..pending.len() {
        gate_tx.send(()).ok();
    }
    let admitted = pending.len() as u64;
    for p in pending {
        let sel = p.wait().expect("admitted requests must be answered");
        assert_eq!(sel.source, SelectionSource::Cnn);
    }
    let r = server.report();
    assert_eq!(r.submitted, 12);
    assert_eq!(r.shed, shed);
    assert_eq!(r.served, admitted);
    assert_eq!(r.accounted(), r.submitted, "no request lost: {r:?}");
}

/// Deadlines expire in two distinct places, and both are observable:
/// while queued (checked at dequeue) and mid-flight (the cooperative
/// cancellation checkpoint inside representation extraction fires).
#[test]
fn deadlines_expire_in_queue_and_in_flight() {
    let (_, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let advance = Arc::clone(&clock_raw);
    let hang = Arc::new(AtomicBool::new(false));
    let hang_h = Arc::clone(&hang);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if hang_h.load(Ordering::SeqCst) {
                // A CNN latency spike: time jumps past any deadline
                // before the forward pass starts.
                advance.fetch_add(1_000_000, Ordering::SeqCst);
            }
            CnnFault::None
        })),
    };
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, hooks, clock);
    let m = Arc::new(data.matrices[1].clone());

    // In-flight expiry: the hook simulates the hang.
    hang.store(true, Ordering::SeqCst);
    let err = server
        .submit(Arc::clone(&m), Some(Duration::from_nanos(1_000)))
        .unwrap()
        .wait()
        .expect_err("deadline must fire mid-flight");
    assert_eq!(err, ServeError::DeadlineExceeded);
    hang.store(false, Ordering::SeqCst);

    // In-queue expiry: the deadline is already in the past relative to
    // the (frozen) fake clock by the time the worker dequeues it.
    clock_raw.fetch_add(10_000_000, Ordering::SeqCst);
    let pend = server.submit(Arc::clone(&m), Some(Duration::ZERO)).unwrap();
    assert_eq!(pend.wait(), Err(ServeError::DeadlineExceeded));

    // A request with a generous deadline still completes.
    let sel = server
        .submit(Arc::clone(&m), Some(Duration::from_secs(3600)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(sel.source, SelectionSource::Cnn);

    let r = server.report();
    assert_eq!(r.deadline_in_flight, 1);
    assert_eq!(r.deadline_in_queue, 1);
    assert_eq!(r.served_cnn, 1);
    assert_eq!(r.accounted(), r.submitted);
}

/// Acceptance (b) + (c), hang flavour: a CNN that stalls past the
/// deadline trips the breaker within `failure_threshold` requests, the
/// tree keeps answering while the breaker is open, and the half-open
/// probe restores the CNN once the fault clears.
#[test]
fn hung_cnn_trips_breaker_tree_answers_probe_restores() {
    let (_, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let advance = Arc::clone(&clock_raw);
    let hang = Arc::new(AtomicBool::new(true));
    let hang_h = Arc::clone(&hang);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if hang_h.load(Ordering::SeqCst) {
                advance.fetch_add(1_000_000, Ordering::SeqCst);
            }
            CnnFault::None
        })),
    };
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        breaker: tight_breaker(),
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, hooks, clock);
    let m = Arc::new(data.matrices[2].clone());
    let deadline = Some(Duration::from_nanos(1_000));

    // Three hung requests (submitted one at a time so each is admitted
    // before the previous hook advanced the clock) trip the breaker.
    for i in 0..3 {
        let err = server.submit(Arc::clone(&m), deadline).unwrap().wait();
        assert_eq!(err, Err(ServeError::DeadlineExceeded), "request {i}");
    }
    let r = server.report();
    assert_eq!(r.breaker.state, BreakerState::Open, "{r:?}");
    assert_eq!(r.breaker.to_open, 1);

    // While open: traffic is demoted, the tree answers, and the hook
    // (i.e. the faulty CNN) is never consulted.
    for _ in 0..4 {
        let sel = server
            .submit(Arc::clone(&m), deadline)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(sel.source, SelectionSource::Tree);
    }
    let r = server.report();
    assert_eq!(r.breaker_demoted, 4);
    assert_eq!(r.served_tree, 4);

    // Fault clears, backoff elapses: the next request is the half-open
    // probe, the CNN answers, and the breaker closes.
    hang.store(false, Ordering::SeqCst);
    clock_raw.fetch_add(10_000, Ordering::SeqCst);
    let sel = server
        .submit(Arc::clone(&m), deadline)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(sel.source, SelectionSource::Cnn);
    let r = server.report();
    assert_eq!(r.breaker.state, BreakerState::Closed);
    assert_eq!(r.probes_ok, 1);
    assert_eq!((r.breaker.to_half_open, r.breaker.to_closed), (1, 1));

    // Closed again: ordinary traffic flows to the CNN.
    let sel = server
        .submit(Arc::clone(&m), deadline)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(sel.source, SelectionSource::Cnn);
    assert_eq!(server.report().accounted(), server.report().submitted);
}

/// Acceptance (b), panic flavour: a panicking CNN never loses the
/// request — the tree rung answers it — and a failed probe reopens the
/// breaker with a doubled backoff.
#[test]
fn panicking_cnn_is_contained_and_failed_probe_doubles_backoff() {
    let (_, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let panicking = Arc::new(AtomicBool::new(true));
    let p_h = Arc::clone(&panicking);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if p_h.load(Ordering::SeqCst) {
                CnnFault::Panic
            } else {
                CnnFault::None
            }
        })),
    };
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        breaker: tight_breaker(),
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, hooks, clock);
    let m = Arc::new(data.matrices[3].clone());

    // Every request during the panic storm is still answered (by the
    // tree), and the third one trips the breaker.
    for _ in 0..3 {
        let sel = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
        assert_eq!(sel.source, SelectionSource::Tree);
    }
    let r = server.report();
    assert_eq!(r.breaker.state, BreakerState::Open);
    assert_eq!(r.ladder.cnn_panic, 3, "{r:?}");

    // Backoff elapses but the fault persists: the probe fails, the
    // breaker reopens, and the backoff doubles.
    clock_raw.fetch_add(2_000, Ordering::SeqCst);
    let sel = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(sel.source, SelectionSource::Tree);
    let r = server.report();
    assert_eq!(r.probes_failed, 1);
    assert_eq!(r.breaker.state, BreakerState::Open);
    assert_eq!(r.breaker.current_backoff_ns, 2_000);

    // Fault clears; after the doubled backoff the probe succeeds.
    panicking.store(false, Ordering::SeqCst);
    clock_raw.fetch_add(10_000, Ordering::SeqCst);
    let sel = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(sel.source, SelectionSource::Cnn);
    assert_eq!(server.report().breaker.state, BreakerState::Closed);
    assert_eq!(server.report().accounted(), server.report().submitted);
}

/// Acceptance (d): a corrupt artefact is rejected with a typed error
/// while the old model keeps serving; a valid artefact swaps in
/// atomically and bumps the generation, and ladder counters survive
/// the swap (retired generations still count).
#[test]
fn hot_reload_rejects_corrupt_artefact_and_swaps_valid_one() {
    let (cnn, _, data) = fixture();
    let (_, clock) = fake_clock();
    let server: SelectorServer<f32> = SelectorServer::with_parts(
        full_service(),
        ServerConfig {
            workers: 1,
            reload_attempts: 1,
            ..ServerConfig::default()
        },
        ServeHooks::default(),
        clock,
    );
    let m = Arc::new(data.matrices[4].clone());
    let sel_before = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(sel_before.source, SelectionSource::Cnn);

    let dir = std::env::temp_dir().join(format!("dnnspmv-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    let path_s = path.to_string_lossy().into_owned();
    cnn.save(&path_s).unwrap();

    // Corrupt artefact (payload bit-flip trips the envelope checksum):
    // typed rejection, generation unchanged, old model still serving.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replacen("formats", "f0rmats", 1)).unwrap();
    let err = server.reload_model(&path).expect_err("corrupt artefact");
    assert!(matches!(err, ServeError::Reload(_)), "{err:?}");
    assert_eq!(server.model_generation(), 0);
    let sel_mid = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(sel_mid.format, sel_before.format);

    // Valid artefact: swap succeeds, generation bumps, answers agree
    // with the artefact we wrote, and pre-swap ladder counts survive.
    std::fs::write(&path, &text).unwrap();
    let generation = server.reload_model(&path).unwrap();
    assert_eq!(generation, 1);
    let sel_after = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(sel_after.format, cnn.predict(&data.matrices[4]));
    let r = server.report();
    assert_eq!((r.reloads_ok, r.reloads_rejected), (1, 1));
    assert_eq!(r.model_generation, 1);
    assert_eq!(r.served_cnn, 3);
    assert_eq!(
        r.ladder.answered(),
        3,
        "retired-generation counters must survive the swap: {r:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: rayon callers hammer one server concurrently; the
/// terminal counters must sum exactly to the submissions — no request
/// lost, none double-counted — and the server-side rung counters must
/// agree with the ladder's own counters.
#[test]
fn rayon_stress_counters_sum_exactly() {
    let (_, _, data) = fixture();
    let server: SelectorServer<f32> = SelectorServer::new(
        full_service(),
        ServerConfig {
            workers: 3,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
    );
    let total = 256usize;
    let outcomes: Vec<Result<SelectionSource, ServeError>> = (0..total)
        .into_par_iter()
        .map(|i| {
            let m = Arc::new(data.matrices[i % data.matrices.len()].clone());
            server
                .submit(m, None)
                .and_then(|p| p.wait())
                .map(|s| s.source)
        })
        .collect();
    let served = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Overloaded { .. })))
        .count() as u64;
    assert_eq!(served + shed, total as u64, "unexpected outcome kinds");

    let r = server.report();
    assert_eq!(r.submitted, total as u64);
    assert_eq!(r.shed, shed);
    assert_eq!(r.served, served);
    assert_eq!(r.accounted(), r.submitted, "{r:?}");
    // The ladder saw exactly the admitted requests.
    assert_eq!(r.ladder.answered(), served);
    assert_eq!(r.served_cnn, r.ladder.cnn_ok);
    assert_eq!(r.served_tree, r.ladder.tree_ok);

    // The registry view agrees exactly with the report view even after
    // concurrent hammering: both are reads of the same atomic cells.
    let snap = server.metrics_snapshot();
    let c = |name: &str, labels: &[(&str, &str)]| snap.counter(name, labels).unwrap_or(0);
    assert_eq!(c("serve_submitted_total", &[]), r.submitted);
    assert_eq!(c("serve_outcome_total", &[("outcome", "shed")]), r.shed);
    let snap_served = c(
        "serve_outcome_total",
        &[("outcome", "served"), ("rung", "cnn")],
    ) + c(
        "serve_outcome_total",
        &[("outcome", "served"), ("rung", "tree")],
    ) + c(
        "serve_outcome_total",
        &[("outcome", "served"), ("rung", "default")],
    );
    assert_eq!(snap_served, r.served);
    // Load has fully drained: the live gauges are back to zero.
    assert_eq!(snap.gauge("serve_queue_depth", &[]), Some(0));
    assert_eq!(snap.gauge("serve_in_flight", &[]), Some(0));
}

/// Satellite 3: the registry snapshot and the typed `ServerReport` are
/// two views over the same cells — every counter matches field-for-
/// field, and the exact-accounting invariant holds in both views, after
/// a run that exercises every rung outcome the ladder has: healthy CNN
/// answers, a panic storm, breaker demotion, a successful probe, an
/// in-queue deadline expiry, and a hot reload.
#[test]
fn metrics_snapshot_reproduces_server_report_exactly() {
    let (cnn, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let panicking = Arc::new(AtomicBool::new(false));
    let p_h = Arc::clone(&panicking);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if p_h.load(Ordering::SeqCst) {
                CnnFault::Panic
            } else {
                CnnFault::None
            }
        })),
    };
    let server: SelectorServer<f32> = SelectorServer::with_parts(
        full_service(),
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            breaker: tight_breaker(),
            ..ServerConfig::default()
        },
        hooks,
        clock,
    );
    let m = Arc::new(data.matrices[5].clone());
    let serve_one = || server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();

    // Healthy CNN answers.
    for _ in 0..3 {
        assert_eq!(serve_one().source, SelectionSource::Cnn);
    }
    // Panic storm: the tree answers, the third failure trips the
    // breaker.
    panicking.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        assert_eq!(serve_one().source, SelectionSource::Tree);
    }
    // Breaker open: demoted traffic (CNN rung skipped on request).
    for _ in 0..2 {
        assert_eq!(serve_one().source, SelectionSource::Tree);
    }
    // Fault clears, backoff elapses: the probe restores the CNN.
    panicking.store(false, Ordering::SeqCst);
    clock_raw.fetch_add(100_000, Ordering::SeqCst);
    assert_eq!(serve_one().source, SelectionSource::Cnn);
    // In-queue deadline expiry.
    clock_raw.fetch_add(10_000_000, Ordering::SeqCst);
    assert_eq!(
        server
            .submit(Arc::clone(&m), Some(Duration::ZERO))
            .unwrap()
            .wait(),
        Err(ServeError::DeadlineExceeded)
    );
    // Hot reload, then one more healthy answer from the new generation.
    let dir = std::env::temp_dir().join(format!("dnnspmv-serve-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    cnn.save(path.to_string_lossy().as_ref()).unwrap();
    assert_eq!(server.reload_model(&path).unwrap(), 1);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(serve_one().source, SelectionSource::Cnn);

    let r = server.report();
    let snap = server.metrics_snapshot();
    let c = |name: &str, labels: &[(&str, &str)]| snap.counter(name, labels).unwrap_or(0);
    let outcome = |o: &str| c("serve_outcome_total", &[("outcome", o)]);
    let served = |rung: &str| {
        c(
            "serve_outcome_total",
            &[("outcome", "served"), ("rung", rung)],
        )
    };
    let rung = |r: &str, o: &str| c("selector_rung_total", &[("rung", r), ("outcome", o)]);

    // Field-for-field: the snapshot reproduces the report.
    assert_eq!(c("serve_submitted_total", &[]), r.submitted);
    assert_eq!(outcome("shed"), r.shed);
    assert_eq!(outcome("rejected_shutdown"), r.rejected_shutdown);
    assert_eq!(outcome("deadline_in_queue"), r.deadline_in_queue);
    assert_eq!(outcome("deadline_in_flight"), r.deadline_in_flight);
    assert_eq!(served("cnn"), r.served_cnn);
    assert_eq!(served("tree"), r.served_tree);
    assert_eq!(served("default"), r.served_default);
    assert_eq!(served("cnn") + served("tree") + served("default"), r.served);
    assert_eq!(c("serve_breaker_demoted_total", &[]), r.breaker_demoted);
    assert_eq!(c("serve_probe_total", &[("result", "ok")]), r.probes_ok);
    assert_eq!(
        c("serve_probe_total", &[("result", "failed")]),
        r.probes_failed
    );
    assert_eq!(c("serve_reload_total", &[("result", "ok")]), r.reloads_ok);
    assert_eq!(
        c("serve_reload_total", &[("result", "rejected")]),
        r.reloads_rejected
    );
    assert_eq!(
        snap.gauge("serve_model_generation", &[]),
        Some(r.model_generation as i64)
    );
    // The ladder view matches counter-for-counter too, across the
    // reload (both generations bound the same registry cells).
    assert_eq!(rung("cnn", "ok"), r.ladder.cnn_ok);
    assert_eq!(rung("cnn", "panic"), r.ladder.cnn_panic);
    assert_eq!(rung("cnn", "skipped"), r.ladder.cnn_skipped);
    assert_eq!(rung("cnn", "cancelled"), r.ladder.cnn_cancelled);
    assert_eq!(rung("tree", "ok"), r.ladder.tree_ok);
    assert_eq!(rung("tree", "panic"), r.ladder.tree_panic);
    assert_eq!(rung("default", "ok"), r.ladder.default_used);

    // The exact-accounting invariant holds in BOTH views.
    assert_eq!(r.accounted(), r.submitted, "{r:?}");
    let snap_accounted = outcome("shed")
        + outcome("rejected_shutdown")
        + served("cnn")
        + served("tree")
        + served("default")
        + outcome("deadline_in_queue")
        + outcome("deadline_in_flight");
    assert_eq!(snap_accounted, c("serve_submitted_total", &[]));

    // Spot-check the run actually exercised every path it claims to.
    assert_eq!(r.submitted, 11);
    assert_eq!(r.served_cnn, 5);
    assert_eq!(r.served_tree, 5);
    assert_eq!(r.ladder.cnn_panic, 3);
    assert_eq!(r.ladder.cnn_skipped, 2);
    assert_eq!(r.deadline_in_queue, 1);
    assert_eq!((r.probes_ok, r.reloads_ok), (1, 1));
    // The queue-wait histogram saw every dequeued request (the timed
    // path defaults on), and the live gauges have drained to zero.
    let qw = snap.histogram("serve_queue_wait_ns", &[]).expect("timed");
    assert_eq!(qw.count, r.submitted - r.shed - r.rejected_shutdown);
    assert_eq!(snap.gauge("serve_queue_depth", &[]), Some(0));
    assert_eq!(snap.gauge("serve_in_flight", &[]), Some(0));
}

/// Tentpole stage A: a structurally repeated matrix is answered from
/// the decision cache at admission — same selection as the worker-path
/// answer, no queueing — and a hot reload invalidates every cached
/// entry at once (generation keying), after which the first request
/// repopulates the cache under the new generation.
#[test]
fn cache_hits_repeat_worker_answers_and_reload_invalidates() {
    let (cnn, _, data) = fixture();
    let (_, clock) = fake_clock();
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        cache: CacheConfig::enabled(64),
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, ServeHooks::default(), clock);
    let m = Arc::new(data.matrices[6].clone());

    // Miss → worker answers via the CNN and populates the cache.
    let first = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(first.source, SelectionSource::Cnn);
    // Hit → answered at admission: identical selection, no new ladder
    // activity.
    let ladder_before = server.report().ladder.answered();
    let second = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(second, first, "hit must reproduce the cached selection");
    let r = server.report();
    assert_eq!(r.ladder.answered(), ladder_before, "hit ran no rung");
    assert_eq!(r.served_cache, 1);
    assert_eq!(r.cache.misses, 1);
    assert_eq!(r.cache.inserted, 1);
    assert_eq!(r.cache.entries, 1);

    // Hot reload: the generation bump strands the cached entry; the
    // next request is stale (dropped on sight), answered by the new
    // generation's worker path, and re-cached.
    let dir = std::env::temp_dir().join(format!("dnnspmv-serve-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    cnn.save(path.to_string_lossy().as_ref()).unwrap();
    assert_eq!(server.reload_model(&path).unwrap(), 1);
    let _ = std::fs::remove_dir_all(&dir);
    let third = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(third.source, SelectionSource::Cnn);
    let fourth = server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    assert_eq!(fourth, third);
    let r = server.report();
    assert_eq!(r.cache.stale, 1, "reload must strand the old entry: {r:?}");
    assert_eq!(r.served_cache, 2);
    assert_eq!(r.cache.entries, 1, "stale entry dropped, fresh one in");
    // Both invariants hold: terminal buckets and hot-path routes.
    assert_eq!(r.accounted(), r.submitted);
    assert!(r.path_accounted(), "{r:?}");
    assert_eq!(
        r.served,
        r.served_cache + r.single_served + r.batched_served
    );
}

/// Tentpole stage B: a partial micro-batch is held open for exactly
/// `max_batch_wait` of *injected* time (the worker polls the fake
/// clock, so a frozen clock holds the gather window open indefinitely),
/// and a batch that reaches `max_batch` departs with no wait at all.
#[test]
fn micro_batch_departs_at_max_batch_wait_or_when_full() {
    let (_, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 4,
        max_batch_wait: Duration::from_micros(100),
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, ServeHooks::default(), clock);

    // Three submissions: fewer than max_batch, so the worker gathers
    // them and holds the batch. With the clock frozen the gather window
    // cannot close, no matter how much real time passes.
    let pending: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(Arc::new(data.matrices[i].clone()), None)
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(
        server.report().served,
        0,
        "a partial batch must wait out max_batch_wait on the injected clock"
    );
    // Advance past the gather deadline: the batch of three departs.
    clock_raw.fetch_add(200_000, Ordering::SeqCst);
    for p in pending {
        assert_eq!(p.wait().unwrap().source, SelectionSource::Cnn);
    }
    let r = server.report();
    assert_eq!(r.batched_served, 3);
    assert_eq!(r.single_served, 0);

    // Four submissions: the batch fills to max_batch and departs
    // without any clock advance.
    let pending: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(Arc::new(data.matrices[10 + i].clone()), None)
                .unwrap()
        })
        .collect();
    for p in pending {
        assert_eq!(p.wait().unwrap().source, SelectionSource::Cnn);
    }
    let r = server.report();
    assert_eq!(r.batched_served, 7);
    assert!(r.path_accounted(), "{r:?}");
    let snap = server.metrics_snapshot();
    let bs = snap.histogram("serve_batch_size", &[]).expect("recorded");
    assert_eq!(bs.count, 2, "two batches departed");
    assert_eq!(bs.max, 4, "the second batch was full");
}

/// Tentpole stage B, failure scoping: one member's deadline expiring
/// while the batch is forming cancels that member alone — its batch
/// mates still get CNN answers from the shared forward pass.
#[test]
fn member_deadline_expiring_mid_batch_cancels_only_that_member() {
    let (_, _, data) = fixture();
    let (clock_raw, clock) = fake_clock();
    let advance = Arc::clone(&clock_raw);
    // Seq 0 parks the worker (priming request); seq 2 simulates a stall
    // by jumping the clock past its own deadline.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |seq| {
            if seq == 0 {
                entered_tx.send(()).ok();
                gate_rx.lock().unwrap().recv().ok();
            }
            if seq == 2 {
                advance.fetch_add(1_000_000, Ordering::SeqCst);
            }
            CnnFault::None
        })),
    };
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 4,
        ..ServerConfig::default()
    };
    let server = SelectorServer::with_parts(full_service(), cfg, hooks, clock);

    // Prime: park the worker so the next three submissions queue up and
    // form one batch on release.
    let priming = server
        .submit(Arc::new(data.matrices[0].clone()), None)
        .unwrap();
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker never dequeued the priming job");
    let b = server
        .submit(Arc::new(data.matrices[1].clone()), None)
        .unwrap();
    let c = server
        .submit(
            Arc::new(data.matrices[2].clone()),
            Some(Duration::from_nanos(1_000)),
        )
        .unwrap();
    let d = server
        .submit(Arc::new(data.matrices[3].clone()), None)
        .unwrap();
    gate_tx.send(()).ok();

    assert_eq!(priming.wait().unwrap().source, SelectionSource::Cnn);
    assert_eq!(b.wait().unwrap().source, SelectionSource::Cnn);
    assert_eq!(
        c.wait(),
        Err(ServeError::DeadlineExceeded),
        "the stalled member is cancelled alone"
    );
    assert_eq!(d.wait().unwrap().source, SelectionSource::Cnn);

    let r = server.report();
    assert_eq!(r.deadline_in_flight, 1);
    assert_eq!(r.batched_served, 2, "batch mates were still answered");
    assert_eq!(r.single_served, 1, "the priming request rode alone");
    assert_eq!(r.ladder.cnn_cancelled, 1);
    assert_eq!(r.accounted(), r.submitted);
    assert!(r.path_accounted(), "{r:?}");
}

/// Tentpole stage B, low load: sequential traffic forms batches of one,
/// which take the per-request path — batching must cost nothing when
/// there is nothing to coalesce.
#[test]
fn sequential_traffic_forms_batches_of_one_on_the_single_path() {
    let (_, _, data) = fixture();
    let (_, clock) = fake_clock();
    let server = SelectorServer::with_parts(
        full_service(),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        ServeHooks::default(),
        clock,
    );
    for i in 0..5 {
        let sel = server
            .submit(Arc::new(data.matrices[i].clone()), None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(sel.source, SelectionSource::Cnn);
    }
    let r = server.report();
    assert_eq!(r.single_served, 5);
    assert_eq!(r.batched_served, 0);
    assert!(r.path_accounted(), "{r:?}");
    let snap = server.metrics_snapshot();
    let bs = snap.histogram("serve_batch_size", &[]).expect("recorded");
    assert_eq!((bs.count, bs.max), (5, 1), "every batch was a singleton");
}

/// Satellite 4: parallel hammering with the cache on and batching
/// active — the exact-accounting invariant, its path-level refinement,
/// and agreement between server rung counters and ladder counters must
/// all survive concurrency.
#[test]
fn rayon_stress_with_cache_and_batching_accounts_exactly() {
    let (_, _, data) = fixture();
    let server: SelectorServer<f32> = SelectorServer::new(
        full_service(),
        ServerConfig {
            workers: 3,
            queue_capacity: 8,
            cache: CacheConfig::enabled(256),
            ..ServerConfig::default()
        },
    );
    let total = 256usize;
    let outcomes: Vec<Result<SelectionSource, ServeError>> = (0..total)
        .into_par_iter()
        .map(|i| {
            let m = Arc::new(data.matrices[i % data.matrices.len()].clone());
            server
                .submit(m, None)
                .and_then(|p| p.wait())
                .map(|s| s.source)
        })
        .collect();
    let served = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Overloaded { .. })))
        .count() as u64;
    assert_eq!(served + shed, total as u64, "unexpected outcome kinds");

    // A deterministic hit on top: serve one matrix twice sequentially.
    let m = Arc::new(data.matrices[0].clone());
    server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();
    server.submit(Arc::clone(&m), None).unwrap().wait().unwrap();

    let r = server.report();
    assert_eq!(r.submitted, total as u64 + 2);
    assert_eq!(r.shed, shed);
    assert_eq!(r.served, served + 2);
    assert_eq!(r.accounted(), r.submitted, "{r:?}");
    assert!(r.path_accounted(), "{r:?}");
    assert!(r.served_cache > 0, "repeated traffic must hit: {r:?}");
    // Cache hits never touch the ladder; everything else ran exactly
    // one rung.
    assert_eq!(r.ladder.answered(), r.served - r.served_cache);
    assert_eq!(r.served_cnn, r.ladder.cnn_ok);
    assert_eq!(r.served_tree, r.ladder.tree_ok);
    // Lookup accounting: every submission consulted the cache exactly
    // once (shed requests look up before hitting the full queue).
    assert_eq!(
        r.cache.hits + r.cache.misses + r.cache.stale + r.cache.expired,
        r.submitted
    );
    let snap = server.metrics_snapshot();
    assert_eq!(snap.gauge("serve_queue_depth", &[]), Some(0));
    assert_eq!(snap.gauge("serve_in_flight", &[]), Some(0));
    assert_eq!(
        snap.gauge("serve_cache_entries", &[]),
        Some(r.cache.entries)
    );
}

/// Time-boxed soak for CI (`--ignored`): sustained parallel load with
/// periodic hot reloads for a fixed wall-clock budget, then the same
/// exactness checks as the stress test.
#[test]
#[ignore = "soak: run explicitly (CI runs it release, time-boxed)"]
fn soak_sustained_load_with_reloads_stays_consistent() {
    let (cnn, _, data) = fixture();
    let server: Arc<SelectorServer<f32>> = Arc::new(SelectorServer::new(
        full_service(),
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            default_deadline: Some(Duration::from_secs(5)),
            ..ServerConfig::default()
        },
    ));
    let dir = std::env::temp_dir().join(format!("dnnspmv-serve-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    cnn.save(path.to_string_lossy().as_ref()).unwrap();

    let stop_at = std::time::Instant::now() + Duration::from_secs(10);
    let reloader = {
        let server = Arc::clone(&server);
        let path = path.clone();
        std::thread::spawn(move || {
            let mut ok = 0u64;
            while std::time::Instant::now() < stop_at {
                ok += u64::from(server.reload_model(&path).is_ok());
                std::thread::sleep(Duration::from_millis(250));
            }
            ok
        })
    };
    let (served, shed, expired): (u64, u64, u64) = (0..8usize)
        .into_par_iter()
        .map(|t| {
            let mut tally = (0u64, 0u64, 0u64);
            let mut i = t;
            while std::time::Instant::now() < stop_at {
                let m = Arc::new(data.matrices[i % data.matrices.len()].clone());
                match server
                    .submit(m, Some(Duration::from_secs(5)))
                    .and_then(|p| p.wait())
                {
                    Ok(_) => tally.0 += 1,
                    Err(ServeError::Overloaded { .. }) => tally.1 += 1,
                    Err(ServeError::DeadlineExceeded) => tally.2 += 1,
                    Err(e) => panic!("unexpected soak error: {e}"),
                }
                i += 7;
            }
            tally
        })
        .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    let reloads = reloader.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let r = server.report();
    assert!(served > 0, "soak served nothing: {r:?}");
    assert!(reloads > 0, "soak never reloaded");
    assert_eq!(r.submitted, served + shed + expired);
    assert_eq!(r.served, served);
    assert_eq!(r.shed, shed);
    assert_eq!(r.deadline_in_queue + r.deadline_in_flight, expired);
    assert_eq!(r.accounted(), r.submitted, "{r:?}");
    assert_eq!(r.reloads_ok, reloads);
}
