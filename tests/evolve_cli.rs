//! Exit-code contract of `dnnspmv evolve`: 0 when the shadow gate
//! promotes, 3 when it holds (or there is too little data), 2 on a
//! broken invocation. The journal is built in-process with the same
//! writer the serving sampler uses, so the binary replays exactly what
//! production would hand it.

use dnnspmv::core::{samples::make_channels, FormatSelector, SelectionSource, SelectorConfig};
use dnnspmv::feedback::{FeedbackRecord, JournalConfig, JournalWriter};
use dnnspmv::gen::{Dataset, DatasetSpec};
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::{label_dataset, PlatformModel};
use dnnspmv::repr::ReprConfig;
use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnnspmv"))
}

/// Trains a tiny incumbent, saves it, and journals records whose
/// measured labels are *shifted* off the training labels — the same
/// "platform changed underneath the model" setup the closed-loop soak
/// drifts with, so a fine-tune has real signal to learn.
fn fixture(dir: &Path) -> (String, String) {
    let data = Dataset::generate(&DatasetSpec {
        n_base: 48,
        n_augmented: 12,
        dim_min: 48,
        dim_max: 96,
        seed: 77,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let cfg = SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 32,
        },
        train: TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };
    let (sel, _) =
        FormatSelector::train_with_labels(&data.matrices, &labels, intel.formats().to_vec(), &cfg);
    let model_path = dir.join("model.json");
    sel.save(&model_path).unwrap();

    let journal_dir = dir.join("journal");
    let mut writer = JournalWriter::open(&journal_dir, JournalConfig::default()).unwrap();
    let k = sel.formats.len();
    for (i, (m, &label)) in data.matrices.iter().zip(&labels).enumerate() {
        let shifted = sel.formats[(label + 1) % k];
        writer
            .append(&FeedbackRecord {
                seq: i as u64,
                fingerprint: i as u64,
                generation: 0,
                chosen: sel.formats[label],
                source: SelectionSource::Cnn,
                measured_best: shifted,
                timings: vec![(shifted, 1.0e-6)],
                channels: make_channels(m, sel.config.repr, &sel.config.repr_config),
                nrows: m.nrows(),
                ncols: m.ncols(),
                nnz: m.nnz(),
            })
            .unwrap();
    }
    writer.sync().unwrap();
    (
        model_path.to_string_lossy().into_owned(),
        journal_dir.to_string_lossy().into_owned(),
    )
}

#[test]
fn evolve_cli_gate_and_usage_exit_codes() {
    let dir = std::env::temp_dir().join(format!("dnnspmv-evolve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (model, journal) = fixture(&dir);
    let out_path = dir.join("candidate.json");

    // Usage error: no --journal.
    let usage = bin().arg("evolve").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));

    // Gate held: an absurd margin no candidate can clear. Exit 3 and
    // no artefact written.
    let rejected = bin()
        .args(["evolve", "--journal", &journal, "--model", &model])
        .args(["--out", out_path.to_string_lossy().as_ref()])
        .args(["--epochs", "1", "--margin", "2.0", "--min-records", "8"])
        .output()
        .unwrap();
    assert_eq!(
        rejected.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&rejected.stderr)
    );
    assert!(!out_path.exists(), "rejected candidate must not be saved");

    // Gate passed: the shifted labels are learnable, the incumbent
    // scores ~0 on them, so a real fine-tune clears the margin. The
    // shadow report lands on stdout as JSON.
    let promoted = bin()
        .args(["evolve", "--journal", &journal, "--model", &model])
        .args(["--out", out_path.to_string_lossy().as_ref()])
        .args(["--epochs", "10", "--margin", "0.05", "--min-records", "8"])
        .output()
        .unwrap();
    assert_eq!(
        promoted.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&promoted.stderr)
    );
    assert!(out_path.exists(), "promoted candidate must be saved");
    let stdout = String::from_utf8_lossy(&promoted.stdout);
    assert!(
        stdout.contains("\"promote\":true"),
        "shadow report missing from stdout: {stdout}"
    );
    // The artefact is a loadable selector.
    FormatSelector::load(&out_path).expect("candidate artefact loads");

    // Insufficient data is a gate-style failure (3), not a usage error.
    let empty_journal = dir.join("empty-journal");
    let starved = bin()
        .args(["evolve", "--model", &model])
        .args(["--journal", empty_journal.to_string_lossy().as_ref()])
        .output()
        .unwrap();
    assert_eq!(starved.status.code(), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
}
