//! End-to-end pins for the GEMM threading policy: server workers run
//! GEMM single-threaded by default (the workers themselves are the
//! server's parallelism), while training threads GEMM at the width its
//! `TrainConfig` asks for. Both tests observe the process-global slots
//! probe, so they serialise on a shared mutex.

use std::sync::{Arc, Mutex};

use dnnspmv::core::{
    FormatSelector, SelectorConfig, SelectorServer, SelectorService, ServerConfig,
};
use dnnspmv::gen::{Dataset, DatasetSpec};
use dnnspmv::nn::network::Sample;
use dnnspmv::nn::structures::{build_cnn, Merging};
use dnnspmv::nn::tensor::Tensor;
use dnnspmv::nn::{
    slots_probe_max, slots_probe_reset, train, CnnConfig, GemmThreading, TrainConfig,
};
use dnnspmv::platform::{label_dataset, PlatformModel};
use dnnspmv::repr::ReprConfig;

/// The slots probe is process-global: one test at a time.
static PROBE: Mutex<()> = Mutex::new(());

/// The default server policy is `GemmThreading::Serial`: a worker's
/// whole select pipeline — representation extraction and every GEMM in
/// the CNN forward — must resolve to exactly one slot, so concurrent
/// workers never contend on the rayon pool.
#[test]
fn server_gemm_stays_serial_by_default() {
    let guard = PROBE.lock().unwrap_or_else(|e| e.into_inner());
    let data = Dataset::generate(&DatasetSpec {
        n_base: 60,
        n_augmented: 0,
        dim_min: 48,
        dim_max: 96,
        seed: 47,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let cfg = SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        cnn: CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 5,
        },
        train: TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 2e-3,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };
    let (cnn, _) =
        FormatSelector::train_with_labels(&data.matrices, &labels, intel.formats().to_vec(), &cfg);
    let service = SelectorService::new(Some(cnn), None)
        .unwrap()
        .with_confidence_threshold(0.0);
    assert_eq!(
        ServerConfig::default().gemm_threading,
        GemmThreading::Serial,
        "serving defaults to serial GEMM"
    );
    let server = SelectorServer::new(service, ServerConfig::default());

    slots_probe_reset();
    for m in data.matrices.iter().take(4) {
        server
            .submit(Arc::new(m.clone()), None)
            .unwrap()
            .wait()
            .unwrap();
    }
    let max = slots_probe_max();
    assert!(max >= 1, "no parallelisable GEMM ran in the select path");
    assert_eq!(max, 1, "server GEMM used {max} slots; must stay serial");
    drop(guard);
}

/// Training at `Fixed(3)` must actually resolve three slots in its
/// batched GEMMs — the probe records the widest partition any sgemm
/// call chose, and `Fixed` counts partition work even when the rayon
/// pool itself is smaller (workers share spans).
#[test]
fn training_under_fixed_threads_uses_that_many_slots() {
    let guard = PROBE.lock().unwrap_or_else(|e| e.into_inner());
    let samples: Vec<Sample> = (0..16)
        .map(|i| {
            let label = i % 2;
            let mut img = vec![0.0f32; 16 * 16];
            let off = if label == 0 { 0 } else { 8 };
            for y in 0..8 {
                for x in 0..8 {
                    img[(y + off) * 16 + (x + off)] = 1.0;
                }
            }
            Sample {
                channels: vec![Tensor::from_vec(&[16, 16], img)],
                label,
            }
        })
        .collect();
    let mut net = build_cnn(
        Merging::Late,
        1,
        (16, 16),
        2,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 3,
        },
    );
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        gemm_threading: GemmThreading::Fixed(3),
        ..TrainConfig::default()
    };
    slots_probe_reset();
    train(&mut net, &samples, &cfg);
    assert_eq!(
        slots_probe_max(),
        3,
        "training at Fixed(3) must partition GEMMs into three spans"
    );
    drop(guard);
}
