//! Cross-architecture migration demo (Section 6): train on the Intel
//! platform, migrate to the AMD platform with a small retraining
//! budget, and compare the three strategies of Figure 9.
//!
//! ```text
//! cargo run --release --example migrate_platform
//! ```

use dnnspmv::core::{make_samples, FormatSelector, SelectorConfig};
use dnnspmv::gen::{kfold, Dataset, DatasetSpec};
use dnnspmv::nn::transfer::Migration;
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::{label_dataset_noisy, PlatformModel};
use dnnspmv::repr::ReprConfig;

fn main() {
    let spec = DatasetSpec {
        n_base: 280,
        n_augmented: 80,
        dim_min: 48,
        dim_max: 224,
        ..DatasetSpec::default()
    };
    let dataset = Dataset::generate(&spec);
    let intel = PlatformModel::intel_cpu();
    let amd = PlatformModel::amd_cpu();

    let config = SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        train: TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };

    // Labels differ across machines — that is the whole problem.
    let intel_labels = label_dataset_noisy(&dataset.matrices, &intel, 0.08, 1);
    let amd_labels = label_dataset_noisy(&dataset.matrices, &amd, 0.08, 2);
    let differing = intel_labels
        .iter()
        .zip(&amd_labels)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "labels differ on {differing}/{} matrices between '{}' and '{}'",
        dataset.matrices.len(),
        intel.name,
        amd.name
    );

    let folds = kfold(dataset.matrices.len(), 4, 3);
    let (train_idx, test_idx) = &folds[0];
    let intel_samples = make_samples(
        &dataset.matrices,
        &intel_labels,
        config.repr,
        &config.repr_config,
    );
    let amd_samples = make_samples(
        &dataset.matrices,
        &amd_labels,
        config.repr,
        &config.repr_config,
    );
    let train_src: Vec<_> = train_idx
        .iter()
        .map(|&i| intel_samples[i].clone())
        .collect();
    let amd_train: Vec<_> = train_idx.iter().map(|&i| amd_samples[i].clone()).collect();
    let amd_test: Vec<_> = test_idx.iter().map(|&i| amd_samples[i].clone()).collect();

    println!("training source model on '{}'...", intel.name);
    let (source, _) =
        FormatSelector::train_on_samples(&train_src, intel.formats().to_vec(), &config);
    println!(
        "source model on AMD labels without migration: {:.3}",
        source.accuracy(&amd_test)
    );

    // Migrate with only a quarter of the AMD training labels — the
    // point of transfer learning is saving label-collection time
    // (~75 hours for the paper's full set).
    let budget = amd_train.len() / 4;
    println!("\nmigrating with {budget} AMD-labelled matrices:");
    for strategy in Migration::ALL {
        let (migrated, _) = source.migrate(strategy, &amd_train[..budget], &config.train);
        println!(
            "  {:<24} -> accuracy {:.3}",
            strategy.name(),
            migrated.accuracy(&amd_test)
        );
    }
}
