//! Full training pipeline with model persistence: builds a dataset,
//! trains CNN selectors for the CPU and GPU platforms, evaluates them
//! against the decision-tree baseline on a held-out split, and saves
//! the CPU model to disk.
//!
//! ```text
//! cargo run --release --example train_selector [-- <n_matrices> <epochs>]
//! ```

use dnnspmv::core::{make_samples, DtSelector, FormatSelector, SelectorConfig};
use dnnspmv::gen::{kfold, Dataset, DatasetSpec};
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::{label_dataset_noisy, PlatformModel};
use dnnspmv::repr::ReprConfig;
use dnnspmv::sparse::CooMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(400);
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);

    let spec = DatasetSpec {
        n_base: (n * 7) / 10,
        n_augmented: n - (n * 7) / 10,
        dim_min: 48,
        dim_max: 256,
        ..DatasetSpec::default()
    };
    println!("dataset: {} matrices", spec.len());
    let dataset = Dataset::generate(&spec);

    let config = SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        train: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };

    for platform in [PlatformModel::intel_cpu(), PlatformModel::nvidia_gpu()] {
        println!("\n=== {} ===", platform.name);
        let labels = label_dataset_noisy(&dataset.matrices, &platform, 0.08, 1);
        let folds = kfold(dataset.matrices.len(), 5, 7);
        let (train_idx, test_idx) = &folds[0];

        let samples = make_samples(&dataset.matrices, &labels, config.repr, &config.repr_config);
        let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let test: Vec<_> = test_idx.iter().map(|&i| samples[i].clone()).collect();

        let t0 = std::time::Instant::now();
        let (selector, _) =
            FormatSelector::train_on_samples(&train, platform.formats().to_vec(), &config);
        println!(
            "CNN  test accuracy: {:.3}  (trained in {:.1}s)",
            selector.accuracy(&test),
            t0.elapsed().as_secs_f64()
        );

        let train_m: Vec<CooMatrix<f32>> = train_idx
            .iter()
            .map(|&i| dataset.matrices[i].clone())
            .collect();
        let train_l: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_m: Vec<CooMatrix<f32>> = test_idx
            .iter()
            .map(|&i| dataset.matrices[i].clone())
            .collect();
        let test_l: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
        let dt = DtSelector::train(&train_m, &train_l, platform.formats().to_vec());
        println!("DT   test accuracy: {:.3}", dt.accuracy(&test_m, &test_l));

        if !platform.is_gpu {
            let path = std::env::temp_dir().join("dnnspmv_selector_cpu.json");
            selector.save(&path).expect("save model");
            let reloaded = FormatSelector::load(&path).expect("load model");
            assert_eq!(
                reloaded.predict(&dataset.matrices[0]),
                selector.predict(&dataset.matrices[0])
            );
            println!("model saved to {} and reloads identically", path.display());
        }
    }
}
