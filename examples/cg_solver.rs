//! End-to-end motivation scenario: a conjugate-gradient solver whose
//! inner loop is SpMV — the workload class (iterative linear solvers)
//! the paper's introduction motivates format selection with. The
//! selector's one-time prediction cost (~1 SpMV iteration, §7.6) is
//! amortised over hundreds of iterations.
//!
//! ```text
//! cargo run --release --example cg_solver
//! ```

use dnnspmv::gen::{generate, MatrixClass};
use dnnspmv::platform::{best_format, PlatformModel, WorkloadProfile};
use dnnspmv::sparse::{AnyMatrix, CooBuilder, CooMatrix, SparseFormat, Spmv};

/// Plain conjugate gradient on `A x = b` for symmetric positive
/// definite `A`; returns (solution, iterations, final residual norm).
fn conjugate_gradient(
    a: &AnyMatrix<f32>,
    b: &[f32],
    max_iters: usize,
    tol: f32,
) -> (Vec<f32>, usize, f32) {
    let n = b.len();
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old: f32 = r.iter().map(|v| v * v).sum();
    let mut ap = vec![0.0f32; n];
    for it in 0..max_iters {
        a.spmv(&p, &mut ap);
        let p_ap: f32 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f32 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < tol {
            return (x, it + 1, rs_new.sqrt());
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    (x, max_iters, rs_old.sqrt())
}

/// Symmetrises and diagonally dominates a matrix so CG converges.
fn make_spd(m: &CooMatrix<f32>) -> CooMatrix<f32> {
    let t = m.transpose();
    let n = m.nrows();
    let mut b = CooBuilder::new(n, n).expect("square");
    for (r, c, v) in m.iter() {
        b.push(r, c, 0.5 * v.abs()).expect("in range");
    }
    for (r, c, v) in t.iter() {
        b.push(r, c, 0.5 * v.abs()).expect("in range");
    }
    // Diagonal dominance: diagonal = row sum + 1.
    let sym = b.build();
    let mut b = CooBuilder::new(n, n).expect("square");
    let mut row_sums = vec![0.0f32; n];
    for (r, c, v) in sym.iter() {
        if r != c {
            b.push(r, c, v).expect("in range");
            row_sums[r] += v.abs();
        }
    }
    for (r, &s) in row_sums.iter().enumerate() {
        b.push(r, r, s + 1.0).expect("in range");
    }
    b.build()
}

fn main() {
    // A discretised-PDE-style operator: the classic CG workload.
    let raw = generate(MatrixClass::Stencil, 4096, 42);
    let a = make_spd(&raw);
    println!(
        "solving A x = b for a {}x{} stencil operator with {} nonzeros",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    // Ask the platform model which format to run the solver in.
    let platform = PlatformModel::intel_cpu();
    let chosen_format = best_format(&a, &platform);
    let profile = WorkloadProfile::compute(&a);
    println!("\nestimated SpMV cost per format on '{}':", platform.name);
    for (f, est) in platform.ranking(&profile) {
        println!("  {f:>5}: {est:>10.0} (model units)");
    }

    let b_vec: Vec<f32> = (0..a.nrows()).map(|i| ((i % 7) as f32) - 3.0).collect();
    for format in [chosen_format, SparseFormat::Csr, SparseFormat::Coo] {
        let Ok(stored) = AnyMatrix::convert(&a, format) else {
            println!("{format}: conversion infeasible, skipped");
            continue;
        };
        let t0 = std::time::Instant::now();
        let (x, iters, resid) = conjugate_gradient(&stored, &b_vec, 500, 1e-4);
        let dt = t0.elapsed().as_secs_f64();
        let marker = if format == chosen_format {
            "  <- selected"
        } else {
            ""
        };
        println!(
            "{format:>5}: {iters} iterations, residual {resid:.2e}, {dt:.3}s, x[0] = {:.4}{marker}",
            x[0]
        );
    }
}
