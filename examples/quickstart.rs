//! Quickstart: train a format selector on a small synthetic dataset,
//! then use it to pick and apply a storage format for a new matrix.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dnnspmv::core::{FormatSelector, SelectorConfig};
use dnnspmv::gen::{generate, Dataset, DatasetSpec, MatrixClass};
use dnnspmv::nn::TrainConfig;
use dnnspmv::platform::PlatformModel;
use dnnspmv::repr::ReprConfig;
use dnnspmv::sparse::Spmv;

fn main() {
    // 1. A dataset of synthetic matrices standing in for SuiteSparse.
    let spec = DatasetSpec {
        n_base: 240,
        n_augmented: 60,
        dim_min: 48,
        dim_max: 192,
        ..DatasetSpec::default()
    };
    println!("generating {} matrices...", spec.len());
    let dataset = Dataset::generate(&spec);

    // 2. Train the CNN selector against the Intel CPU platform model
    //    (label collection -> normalisation -> training, Figure 3).
    let platform = PlatformModel::intel_cpu();
    let config = SelectorConfig {
        repr_config: ReprConfig {
            image_size: 32,
            hist_rows: 32,
            hist_bins: 16,
        },
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };
    println!("training CNN selector on '{}'...", platform.name);
    let (selector, report) =
        FormatSelector::train_on_platform(&dataset.matrices, &platform, &config);
    println!(
        "trained: {} steps, final batch loss {:.3}",
        report.loss_history.len(),
        report.loss_history.last().copied().unwrap_or(f32::NAN)
    );

    // 3. Predict the best format for a fresh matrix and run SpMV in it.
    let matrix = generate(MatrixClass::Banded, 160, 20260707);
    let probs = selector.predict_proba(&matrix);
    println!(
        "\nnew {}x{} banded matrix, {} nonzeros",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    );
    for (f, p) in selector.formats.iter().zip(&probs) {
        println!("  P({f:>5}) = {p:.3}");
    }
    let chosen = selector.prepare(&matrix);
    println!("selected format: {}", chosen.format());

    let x = vec![1.0f32; matrix.ncols()];
    let y = chosen.spmv_alloc(&x);
    let y_ref = matrix.spmv_alloc(&x);
    let max_err = y
        .iter()
        .zip(&y_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("SpMV in the selected format matches COO (max err {max_err:.2e})");
}
