//! Property suite pinning the latency-histogram contract:
//!
//! * recording then snapshotting reproduces the exact aggregates
//!   (count, sum, min, max) of the recorded multiset;
//! * `merged` is associative and commutative with `empty()` as its
//!   identity, and splitting a recording across histograms then merging
//!   equals recording everything into one;
//! * every quantile lands within one bucket of a sorted-vector oracle
//!   that uses the same `⌈q·n⌉` rank rule;
//! * concurrent recording from 8 threads loses no counts.

use dnnspmv_obs::{bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};
use proptest::prelude::*;

/// Log-uniform-ish values: a full-range draw shifted right by a random
/// amount, so cases cover every octave from sub-microsecond to the top
/// of the `u64` range rather than clustering near `u64::MAX`.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..u64::MAX, 0u32..60).prop_map(|(raw, shift)| raw >> shift),
        0..250,
    )
}

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The oracle the quantile estimate must stay within one bucket of:
/// the rank-`⌈q·n⌉` element of the sorted values (rank 1 for `q = 0`).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn snapshot_aggregates_are_exact(values in arb_values()) {
        let s = snap_of(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(s.min, values.iter().copied().min().unwrap_or(u64::MAX));
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.buckets.len(), BUCKETS);
        prop_assert_eq!(s.is_empty(), values.is_empty());
    }

    #[test]
    fn every_value_lands_in_its_bucket(values in arb_values()) {
        let s = snap_of(&values);
        for &v in &values {
            prop_assert!(s.buckets[bucket_index(v)] >= 1, "v={v}");
        }
    }

    #[test]
    fn merge_is_commutative_and_has_identity(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));
        prop_assert_eq!(sa.merged(&HistogramSnapshot::empty()), sa.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merged(&sa), sa);
    }

    #[test]
    fn merge_is_associative(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(sa.merged(&sb).merged(&sc), sa.merged(&sb.merged(&sc)));
    }

    #[test]
    fn merging_splits_equals_recording_together(all in arb_values(), cut in 0usize..250) {
        let cut = cut.min(all.len());
        let merged = snap_of(&all[..cut]).merged(&snap_of(&all[cut..]));
        prop_assert_eq!(merged, snap_of(&all));
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_the_sorted_oracle(
        values in arb_values(),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        if values.is_empty() {
            return Ok(());
        }
        let s = snap_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in qs {
            let want = oracle_quantile(&sorted, q);
            let got = s.quantile(q);
            let (bw, bg) = (bucket_index(want), bucket_index(got));
            prop_assert!(
                bw.abs_diff(bg) <= 1,
                "q={q}: estimate {got} (bucket {bg}) vs oracle {want} (bucket {bw})"
            );
            prop_assert!((s.min..=s.max).contains(&got), "q={q}: {got} outside observed range");
        }
        // The endpoints share their oracle's bucket exactly (rank 1 and
        // rank n always resolve to the buckets holding min and max).
        prop_assert_eq!(bucket_index(s.quantile(0.0)), bucket_index(sorted[0]));
        prop_assert_eq!(
            bucket_index(s.quantile(1.0)),
            bucket_index(*sorted.last().unwrap())
        );
    }

    #[test]
    fn concurrent_recording_from_eight_threads_loses_nothing(values in arb_values()) {
        const THREADS: usize = 8;
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                let values = &values;
                scope.spawn(move || {
                    for &v in values.iter().skip(t).step_by(THREADS) {
                        h.record(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        // Every thread's records survived: the concurrent snapshot is
        // bit-identical to a single-threaded recording of the same
        // multiset (bucket counts are order-independent).
        prop_assert_eq!(s, snap_of(&values));
    }
}
