//! Deterministic span-tracing behaviour under a fake clock: exact
//! nested durations, close-order sink determinism, and the unwind
//! guarantee — a span open when its scope panics still reports.

use dnnspmv_obs::{LatencyHistogram, ManualClock, RingSink, SpanSink, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn test_tracer(start: u64, cap: usize) -> (Arc<ManualClock>, Arc<RingSink>, Tracer) {
    let clock = ManualClock::starting_at(start);
    let sink = RingSink::new(cap);
    let tracer = Tracer::new(clock.as_clock_fn(), Arc::clone(&sink) as Arc<dyn SpanSink>);
    (clock, sink, tracer)
}

#[test]
fn three_deep_nesting_reports_exact_durations_in_close_order() {
    let (clock, sink, tracer) = test_tracer(1_000, 16);
    {
        let _a = tracer.span("a");
        clock.advance(5);
        {
            let _b = tracer.span("b");
            clock.advance(11);
            {
                let _c = tracer.span("c");
                clock.advance(2);
            }
            clock.advance(3);
        }
        clock.advance(7);
    }
    let spans = sink.take();
    let got: Vec<(&str, u64, u64)> = spans
        .iter()
        .map(|s| (s.name.as_str(), s.start_ns, s.duration_ns()))
        .collect();
    // Innermost closes first; every boundary is an exact clock reading.
    assert_eq!(got, [("c", 1_016, 2), ("b", 1_005, 16), ("a", 1_000, 28),]);
}

#[test]
fn sibling_spans_interleave_deterministically() {
    let (clock, sink, tracer) = test_tracer(0, 16);
    // Overlapping (not nested) lifetimes: first opened, last closed.
    let first = tracer.span("first");
    clock.advance(1);
    let second = tracer.span("second");
    clock.advance(1);
    drop(first);
    clock.advance(1);
    drop(second);
    let names: Vec<String> = sink.take().into_iter().map(|s| s.name).collect();
    assert_eq!(names, ["first", "second"], "sink order is close order");
}

#[test]
fn span_open_during_panic_unwind_still_reports() {
    let (clock, sink, tracer) = test_tracer(50, 16);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _doomed = tracer.span("doomed");
        clock.advance(13);
        panic!("kernel blew up");
    }));
    assert!(result.is_err(), "the panic must actually happen");
    let spans = sink.take();
    assert_eq!(spans.len(), 1, "the unwinding drop reported the span");
    assert_eq!(spans[0].name, "doomed");
    assert_eq!(spans[0].start_ns, 50);
    assert_eq!(
        spans[0].duration_ns(),
        13,
        "duration covers up to the panic"
    );
}

#[test]
fn span_recording_feeds_histogram_even_through_unwind() {
    let (clock, sink, tracer) = test_tracer(0, 16);
    let hist = Arc::new(LatencyHistogram::new());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _s = tracer.span_recording("timed", Arc::clone(&hist));
        clock.advance(9);
        panic!("mid-span failure");
    }));
    assert!(result.is_err());
    let snap = hist.snapshot();
    assert_eq!(snap.count, 1, "the histogram saw the unwound span");
    assert_eq!((snap.min, snap.max), (9, 9));
    assert_eq!(sink.take().len(), 1, "and so did the sink");
}

#[test]
fn spans_after_a_panic_keep_working() {
    // A panic that poisoned nothing: the tracer and sink stay usable.
    let (clock, sink, tracer) = test_tracer(0, 16);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let _s = tracer.span("crash");
        panic!("boom");
    }));
    {
        let _s = tracer.span("after");
        clock.advance(4);
    }
    let spans = sink.take();
    assert_eq!(spans.len(), 2);
    assert_eq!(spans[1].name, "after");
    assert_eq!(spans[1].duration_ns(), 4);
    assert_eq!(sink.dropped(), 0);
}
