//! `dnnspmv-obs` — the observability substrate under every hot layer of
//! the system: kernels, training, and serving.
//!
//! PR 4 gave the selector server a one-shot `ServerReport`; nothing
//! exposed *live* latency distributions, per-rung fallback rates, or
//! per-phase kernel time. This crate is the measurement layer those
//! need, built around three constraints:
//!
//! * **Lightweight.** Recording is a handful of relaxed atomic adds —
//!   no locks, no allocation, no formatting — so instrumentation can
//!   sit inside an SpMV kernel or the serve hot path without moving
//!   the p50 it is measuring. The crate has zero runtime dependencies.
//! * **Deterministic under test.** Time is injected ([`ClockFn`], the
//!   same pattern PR 4's server uses), so span durations and latency
//!   buckets are exact in tests; sinks are pluggable so traces land in
//!   a ring buffer a test can inspect.
//! * **One source of truth.** Everything renders from one
//!   [`MetricsSnapshot`]: the Prometheus text dump, the JSON dump, the
//!   `ServerReport` view, and `bench_serve`'s phase stats all read the
//!   same registry, so live metrics and benchmark artefacts can never
//!   disagree.
//!
//! The pieces:
//!
//! * [`Counter`] / [`Gauge`] — atomic scalar metrics with typed
//!   handles; cheap to clone, safe to record from any thread.
//! * [`LatencyHistogram`] — fixed-bucket log-scale (HDR-style
//!   log-linear) histogram: lock-free record, mergeable
//!   [`HistogramSnapshot`]s, quantiles exact to one bucket
//!   (≤ 1/16 ≈ 6.25 % relative width) plus exact min/max/sum.
//! * [`Registry`] — names + label sets mapped to handles; snapshotting
//!   and rendering ([`MetricsSnapshot::to_prometheus`],
//!   [`MetricsSnapshot::to_json`]).
//! * [`Tracer`] / [`SpanGuard`] — RAII span timing over an injectable
//!   clock, reported to a [`SpanSink`] ([`RingSink`] for tests,
//!   [`JsonLinesSink`] for production, [`NullSink`] to disable).
//! * [`global`] — the process-wide registry the kernel and training
//!   instrumentation records into (`dnnspmv metrics` dumps it).

pub mod clock;
pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod span;

pub use clock::{system_clock, ClockFn, ManualClock};
pub use histogram::{bucket_index, bucket_low, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use metrics::{Counter, Gauge, GaugeGuard};
pub use registry::{global, MetricKey, MetricsSnapshot, Registry};
pub use span::{JsonLinesSink, NullSink, RingSink, SpanGuard, SpanRecord, SpanSink, Tracer};
