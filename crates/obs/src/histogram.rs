//! Fixed-bucket log-scale latency histogram.
//!
//! The layout is the HDR-histogram "log-linear" scheme: values below
//! [`SUB`] get exact unit buckets; above that, each power-of-two octave
//! is split into [`SUB`] linear sub-buckets, so every bucket's relative
//! width is at most `1/SUB` (6.25 % for `SUB = 16`). The bucket count
//! is fixed at compile time ([`BUCKETS`]), which buys three properties
//! the serving layer needs:
//!
//! * **Lock-free recording** — one relaxed `fetch_add` into a fixed
//!   array slot plus count/sum/min/max updates; no allocation, no
//!   resizing, no locks, safe from any number of threads.
//! * **Mergeable snapshots** — two snapshots add bucket-wise, so
//!   per-phase stats are snapshot diffs and multi-source stats are
//!   snapshot sums, both exact in counts.
//! * **Deterministic quantiles** — a quantile is "the bucket holding
//!   the rank-`⌈q·n⌉` recorded value"; the estimate returned is that
//!   bucket's midpoint, clamped into the exact observed `[min, max]`.
//!   The rank rule matches the sorted-vector oracle definition
//!   exactly, which is what the property suite pins.
//!
//! Values are `u64` — the system records nanoseconds, but nothing here
//! assumes a unit.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (must be a power of two).
pub const SUB: usize = 16;
const SUB_BITS: u32 = SUB.trailing_zeros();

/// Total bucket count covering the full `u64` range.
/// Shifts run 0..=`63 - SUB_BITS`, each contributing `SUB` buckets,
/// plus the exact region `0..SUB` (which aliases shift 0's low half in
/// indexing below, hence the `+ 1` octave).
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// The bucket a value lands in. Total over all of `u64`; monotone in
/// `v`; exact (width-1 buckets) for `v < 2·SUB`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = (v >> shift) as usize - SUB;
    (shift as usize + 1) * SUB + sub
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to
/// it). The exclusive upper bound is `bucket_low(i + 1)`.
pub fn bucket_low(i: usize) -> u64 {
    if i < 2 * SUB {
        return i as u64;
    }
    let shift = (i / SUB - 1) as u32;
    let sub = (i % SUB) as u64;
    (SUB as u64 + sub) << shift
}

/// A midpoint representative for bucket `i`, used as the quantile
/// estimate before clamping into the observed range.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_low(i);
    let hi = if i + 1 < BUCKETS {
        bucket_low(i + 1) - 1
    } else {
        u64::MAX
    };
    lo + (hi - lo) / 2
}

/// Lock-free fixed-bucket log-scale histogram (see module docs).
///
/// `record` is wait-free (a few relaxed atomics); `snapshot` is a
/// consistent-enough read for monitoring: counts racing with concurrent
/// recorders may be off by in-flight records, but once recording
/// quiesces the snapshot is exact (the property suite pins this).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets and the exact aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]: mergeable, diffable,
/// and the thing quantiles are computed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total recorded values (equals the bucket sum once recording has
    /// quiesced).
    pub count: u64,
    /// Sum of recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Exact smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Field-wise merge: bucket-wise sum, min of mins, max of maxes.
    /// Associative and commutative with [`HistogramSnapshot::empty`] as
    /// the identity (the property suite pins all three).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            // Wrapping, to match `record`'s atomic fetch_add semantics:
            // a sum that has wrapped still merges/diffs consistently.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Bucket-wise difference against an `earlier` snapshot of the same
    /// histogram — the per-phase view a benchmark takes between two
    /// registry snapshots. Counts and sum are exact; min/max cannot be
    /// un-merged, so they are re-derived from the diffed buckets'
    /// bounds (exact to one bucket, like quantiles).
    ///
    /// # Panics
    /// Panics if `earlier` is not a prefix of `self` (some bucket would
    /// go negative) — diffing unrelated histograms is a bug.
    pub fn minus(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| {
                now.checked_sub(*then)
                    .expect("snapshot diff: earlier is not a prefix of self")
            })
            .collect();
        let count = self.count - earlier.count;
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        HistogramSnapshot {
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            min: first.map_or(u64::MAX, bucket_low),
            max: last.map_or(0, |i| {
                // The largest value that could have landed in bucket i,
                // clamped by the lifetime-exact max.
                let hi = if i + 1 < BUCKETS {
                    bucket_low(i + 1) - 1
                } else {
                    u64::MAX
                };
                hi.min(self.max)
            }),
            buckets,
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the midpoint of the bucket
    /// containing the rank-`⌈q·count⌉` recorded value (rank 1 for
    /// `q = 0`), clamped into the exact `[min, max]`. `q = 1` therefore
    /// returns the exact max, and on an empty snapshot every quantile
    /// is 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_exact_below_two_sub() {
        for v in 0..(2 * SUB as u64) {
            assert_eq!(bucket_index(v), v as usize, "v={v}");
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_bracket() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut prev = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= prev, "monotone at v={v}");
            prev = i;
            assert!(i < BUCKETS);
            assert!(bucket_low(i) <= v, "low bound at v={v}");
            if i + 1 < BUCKETS {
                assert!(v < bucket_low(i + 1), "high bound at v={v}");
            }
        }
    }

    #[test]
    fn every_bucket_boundary_round_trips() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn small_recordings_give_exact_quantiles() {
        let h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!((s.min, s.max), (1, 10));
        // Values < SUB are in width-1 buckets: quantiles are exact.
        assert_eq!(s.p50(), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 10);
        assert_eq!(s.mean(), 5.5);
    }

    #[test]
    fn quantile_of_large_values_stays_within_one_bucket() {
        let h = LatencyHistogram::new();
        let v = 1_000_000u64;
        for _ in 0..100 {
            h.record(v);
        }
        let s = h.snapshot();
        let i = bucket_index(v);
        let p50 = s.p50();
        assert_eq!(bucket_index(p50), i, "estimate in the recorded bucket");
        assert_eq!(s.quantile(1.0), v, "q=1 is the exact max");
    }

    #[test]
    fn diff_recovers_a_phase() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        h.record(2000);
        let after = h.snapshot();
        let phase = after.minus(&before);
        assert_eq!(phase.count, 2);
        assert_eq!(phase.sum, 3000);
        // Bucket-bound min/max bracket the phase's values.
        assert!(phase.min <= 1000 && 1000 < 2 * phase.min.max(1));
        assert!(phase.max >= 2000);
        assert_eq!(bucket_index(phase.quantile(1.0)), bucket_index(2000));
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = LatencyHistogram::new();
        h.record(7);
        h.record(70);
        let s = h.snapshot();
        assert_eq!(s.merged(&HistogramSnapshot::empty()), s);
        assert_eq!(HistogramSnapshot::empty().merged(&s), s);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
    }
}
