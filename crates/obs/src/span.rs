//! RAII span tracing over an injectable clock.
//!
//! A [`Tracer`] stamps a start time when [`Tracer::span`] is called and
//! reports a finished [`SpanRecord`] to its [`SpanSink`] when the
//! returned [`SpanGuard`] drops — including a drop during panic
//! unwinding, so a crashed kernel still leaves its span in the trace.
//! The clock is a [`ClockFn`], so tests that drive a
//! [`ManualClock`](crate::ManualClock) observe exact durations.
//!
//! Sinks are pluggable: [`RingSink`] keeps the last N spans in memory
//! for tests and post-mortem dumps, [`JsonLinesSink`] streams one JSON
//! object per line to any writer for production, and [`NullSink`]
//! swallows everything (tracing disabled).

use crate::clock::{system_clock, ClockFn};
use crate::histogram::LatencyHistogram;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A finished span: name plus start/end clock readings in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"serve.handle"`, `"spmv.csr"`).
    pub name: String,
    /// Clock reading when the span was opened.
    pub start_ns: u64,
    /// Clock reading when the guard dropped.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall time covered by the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Where finished spans go. Implementations must tolerate reports from
/// many threads, and from inside panic unwinding (no panicking in
/// `report` — a double panic aborts the process).
pub trait SpanSink: Send + Sync {
    /// Accepts one finished span.
    fn report(&self, span: SpanRecord);
}

/// Discards every span — the disabled tracer's sink.
#[derive(Debug, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn report(&self, _span: SpanRecord) {}
}

/// A bounded in-memory sink: keeps the most recent `cap` spans,
/// counting (not panicking on) overflow. The test and post-mortem
/// sink.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `cap` spans (`cap` ≥ 1).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        })
    }

    /// Drains and returns the buffered spans, oldest first.
    pub fn take(&self) -> Vec<SpanRecord> {
        self.buf.lock().expect("ring buffer").drain(..).collect()
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring buffer").len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl SpanSink for RingSink {
    fn report(&self, span: SpanRecord) {
        let Ok(mut buf) = self.buf.lock() else {
            // A panic while holding the ring lock poisoned it; spans
            // are diagnostics, losing one beats aborting the process.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(span);
    }
}

/// Streams spans as JSON lines (`{"span":...,"start_ns":...,
/// "end_ns":...,"duration_ns":...}`) to any writer — the production
/// sink. Write errors are counted, never raised: tracing must not take
/// down the traced system.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
    errors: AtomicU64,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("errors", &self.errors.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// A sink writing one line per span to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Arc<Self> {
        Arc::new(Self {
            out: Mutex::new(out),
            errors: AtomicU64::new(0),
        })
    }

    /// Number of spans lost to write errors or a poisoned writer.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl SpanSink for JsonLinesSink {
    fn report(&self, span: SpanRecord) {
        let mut name = String::with_capacity(span.name.len());
        for ch in span.name.chars() {
            match ch {
                '"' => name.push_str("\\\""),
                '\\' => name.push_str("\\\\"),
                c if (c as u32) < 0x20 => name.push_str(&format!("\\u{:04x}", c as u32)),
                c => name.push(c),
            }
        }
        let line = format!(
            "{{\"span\":\"{name}\",\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}\n",
            span.start_ns,
            span.end_ns,
            span.duration_ns()
        );
        let Ok(mut out) = self.out.lock() else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if out.write_all(line.as_bytes()).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Hands out [`SpanGuard`]s stamped by one clock, reporting to one
/// sink. Cheap to clone (two `Arc`s).
#[derive(Clone)]
pub struct Tracer {
    clock: ClockFn,
    sink: Arc<dyn SpanSink>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer reading `clock` and reporting to `sink`.
    pub fn new(clock: ClockFn, sink: Arc<dyn SpanSink>) -> Self {
        Self { clock, sink }
    }

    /// A tracer that times with the system clock and discards spans —
    /// the default when no one is listening.
    pub fn disabled() -> Self {
        Self::new(system_clock(), Arc::new(NullSink))
    }

    /// Opens a span; it closes (and reports) when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SpanGuard {
            name: name.into(),
            start_ns: (self.clock)(),
            clock: Arc::clone(&self.clock),
            sink: Arc::clone(&self.sink),
            histogram: None,
        }
    }

    /// Like [`span`](Self::span), but the duration is also recorded
    /// into `histogram` on close — one guard feeds both the trace and
    /// the metric, from the same two clock readings.
    pub fn span_recording(
        &self,
        name: impl Into<String>,
        histogram: Arc<LatencyHistogram>,
    ) -> SpanGuard {
        let mut g = self.span(name);
        g.histogram = Some(histogram);
        g
    }

    /// The tracer's clock (for callers that need a raw reading on the
    /// same timeline as the spans).
    pub fn clock(&self) -> ClockFn {
        Arc::clone(&self.clock)
    }
}

/// An open span. Dropping it stamps the end time and reports the
/// finished [`SpanRecord`] — drops during panic unwinding report too.
#[must_use = "a span measures nothing unless it lives across the timed region"]
pub struct SpanGuard {
    name: String,
    start_ns: u64,
    clock: ClockFn,
    sink: Arc<dyn SpanSink>,
    histogram: Option<Arc<LatencyHistogram>>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("start_ns", &self.start_ns)
            .finish_non_exhaustive()
    }
}

impl SpanGuard {
    /// The span's start reading (same timeline as the tracer's clock).
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = (self.clock)();
        if let Some(h) = &self.histogram {
            h.record(end_ns.saturating_sub(self.start_ns));
        }
        self.sink.report(SpanRecord {
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            end_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn span_durations_are_exact_under_a_manual_clock() {
        let clock = ManualClock::starting_at(100);
        let sink = RingSink::new(16);
        let tracer = Tracer::new(clock.as_clock_fn(), Arc::clone(&sink) as Arc<dyn SpanSink>);
        {
            let _outer = tracer.span("outer");
            clock.advance(10);
            {
                let _inner = tracer.span("inner");
                clock.advance(7);
            }
            clock.advance(3);
        }
        let spans = sink.take();
        assert_eq!(spans.len(), 2);
        // Inner closes first: sink order is close order.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].duration_ns(), 7);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].duration_ns(), 20);
        assert_eq!(spans[1].start_ns, 100);
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_evictions() {
        let sink = RingSink::new(2);
        let tracer = Tracer::new(
            ManualClock::new().as_clock_fn(),
            Arc::clone(&sink) as Arc<dyn SpanSink>,
        );
        for i in 0..5 {
            drop(tracer.span(format!("s{i}")));
        }
        assert_eq!(sink.dropped(), 3);
        let names: Vec<String> = sink.take().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["s3", "s4"], "most recent spans survive");
    }

    #[test]
    fn jsonlines_sink_writes_one_object_per_span() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))));
        let clock = ManualClock::starting_at(5);
        let tracer = Tracer::new(clock.as_clock_fn(), Arc::clone(&sink) as Arc<dyn SpanSink>);
        {
            let _s = tracer.span("extract/\"quoted\"");
            clock.advance(37);
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"span\":\"extract/\\\"quoted\\\"\",\"start_ns\":5,\"end_ns\":42,\"duration_ns\":37}\n"
        );
        assert_eq!(sink.errors(), 0);
    }

    #[test]
    fn span_recording_feeds_the_histogram() {
        let clock = ManualClock::new();
        let tracer = Tracer::new(clock.as_clock_fn(), Arc::new(NullSink));
        let hist = Arc::new(LatencyHistogram::new());
        {
            let _s = tracer.span_recording("k", Arc::clone(&hist));
            clock.advance(64);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 64);
    }
}
