//! The metrics registry: names + label sets mapped to typed handles.
//!
//! A [`Registry`] is the rendezvous point between instrumentation and
//! export. Call sites ask for a handle once (`counter` / `gauge` /
//! `histogram` are get-or-create and idempotent) and record through it
//! with relaxed atomics; exporters call [`Registry::snapshot`] and
//! render the returned [`MetricsSnapshot`] as a Prometheus-style text
//! dump or JSON. Handle lookup takes a lock; recording never does —
//! the registry maps are only touched at registration and snapshot
//! time, both off the hot path.
//!
//! The [`global`] registry is the process-wide instance the
//! feature-gated kernel timers and the training loop record into;
//! subsystems that need isolation (each [`SelectorServer`] generation
//! set, every test) create their own.
//!
//! [`SelectorServer`]: ../dnnspmv_core/struct.SelectorServer.html

use crate::histogram::{bucket_low, HistogramSnapshot, LatencyHistogram, BUCKETS};
use crate::metrics::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A metric identity: name plus an ordered label set.
///
/// Labels are sorted at construction so `{a="1", b="2"}` and
/// `{b="2", a="1"}` are the same metric.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`snake_case`, unit-suffixed: `_total`, `_ns`).
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",...}` (bare name without labels).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    fn render_with(&self, extra: &[(&str, String)]) -> String {
        let mut all: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
            .collect();
        all.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape(v))));
        if all.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, all.join(","))
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<LatencyHistogram>>>,
}

/// A set of named metrics (see module docs). Cheap to clone: clones
/// share the same metric cells.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.counters.write().expect("counter map");
        let cell = map.entry(key).or_default();
        Counter::from_shared(Arc::clone(cell))
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.gauges.write().expect("gauge map");
        let cell = map.entry(key).or_default();
        Gauge::from_shared(Arc::clone(cell))
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.histograms.write().expect("histogram map");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// A point-in-time copy of every metric, sorted by name and labels
    /// (deterministic render order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .expect("counter map")
            .iter()
            .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .expect("gauge map")
            .iter()
            .map(|(k, g)| (k.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .expect("histogram map")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry. Kernel timers (feature-gated) and the
/// training loop record here; `dnnspmv metrics` dumps it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A consistent, sorted copy of a [`Registry`]'s metrics — the single
/// source every exporter and report view renders from.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` for every counter, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// `(key, value)` for every gauge, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// `(key, snapshot)` for every histogram, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter `name{labels}` (`None` if never created).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Snapshot of the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Sum of every counter named `name`, across all label sets —
    /// e.g. total requests over all `outcome` labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Prometheus-style text exposition.
    ///
    /// Counters and gauges render one sample per label set; histograms
    /// render summary-style (`{quantile="0.5"|"0.99"|"1"}` plus `_sum`
    /// and `_count`), because the fixed log-scale buckets make exact
    /// quantiles available at snapshot time and 976 cumulative `le`
    /// lines per histogram would drown the dump.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = Some(name.to_string());
            }
        };
        for (key, v) in &self.counters {
            type_line(&mut out, &key.name, "counter");
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        for (key, v) in &self.gauges {
            type_line(&mut out, &key.name, "gauge");
            out.push_str(&format!("{} {v}\n", key.render()));
        }
        for (key, h) in &self.histograms {
            type_line(&mut out, &key.name, "summary");
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (1.0, "1")] {
                out.push_str(&format!(
                    "{} {}\n",
                    key.render_with(&[("quantile", label.to_string())]),
                    h.quantile(q)
                ));
            }
            let mut sum_key = key.clone();
            sum_key.name = format!("{}_sum", key.name);
            out.push_str(&format!("{} {}\n", sum_key.render(), h.sum));
            let mut count_key = key.clone();
            count_key.name = format!("{}_count", key.name);
            out.push_str(&format!("{} {}\n", count_key.render(), h.count));
        }
        out
    }

    /// The snapshot as one JSON object (hand-rolled — this crate takes
    /// no dependencies). Histogram buckets are sparse `[index, count]`
    /// pairs with the bucket's inclusive lower bound alongside, so the
    /// dump merges and diffs like the snapshot it came from.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        push_scalars(&mut out, &self.counters, |v| v.to_string());
        out.push_str("],\"gauges\":[");
        push_scalars(&mut out, &self.gauges, |v| v.to_string());
        out.push_str("],\"histograms\":[");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},{}\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                json_str(&key.name),
                json_labels(&key.labels),
                h.count,
                h.sum,
                if h.is_empty() { 0 } else { h.min },
                h.max,
                h.p50(),
                h.p99(),
            ));
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate().filter(|(_, &c)| c > 0) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{b},{},{c}]", bucket_low(b)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn push_scalars<V: Copy>(out: &mut String, rows: &[(MetricKey, V)], fmt: impl Fn(V) -> String) {
    for (i, (key, v)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},{}\"value\":{}}}",
            json_str(&key.name),
            json_labels(&key.labels),
            fmt(*v)
        ));
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return "\"labels\":{},".to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
        .collect();
    format!("\"labels\":{{{}}},", body.join(","))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Number of buckets a JSON bucket index may range over (re-exported
/// for dump consumers that validate indices).
pub const JSON_BUCKETS: usize = BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(
            r.snapshot().counter("x_total", &[("k", "v")]),
            Some(2),
            "same key, same cell"
        );
        // Label order does not create a second metric.
        let c = r.counter("y_total", &[("a", "1"), ("b", "2")]);
        let d = r.counter("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        d.inc();
        assert_eq!(
            r.snapshot().counter("y_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn snapshot_orders_and_renders_deterministically() {
        let r = Registry::new();
        r.counter("b_total", &[]).inc();
        r.counter("a_total", &[("z", "1")]).add(3);
        r.gauge("depth", &[]).set(-2);
        r.histogram("lat_ns", &[("phase", "steady")]).record(5);
        let s = r.snapshot();
        let text = s.to_prometheus();
        let a = text.find("a_total{z=\"1\"} 3").expect("a_total");
        let b = text.find("b_total 1").expect("b_total");
        assert!(a < b, "sorted by name:\n{text}");
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("lat_ns{phase=\"steady\",quantile=\"0.5\"} 5"));
        assert!(text.contains("lat_ns_count{phase=\"steady\"} 1"));
        // Two identical registries render identically.
        assert_eq!(text, r.snapshot().to_prometheus());
    }

    #[test]
    fn json_dump_is_wellformed_enough_to_eyeball() {
        let r = Registry::new();
        r.counter("req_total", &[("outcome", "ok\"weird")]).inc();
        r.histogram("lat_ns", &[]).record(100);
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ok\\\"weird\""), "{j}");
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"buckets\":[["));
    }

    #[test]
    fn counter_sum_totals_across_label_sets() {
        let r = Registry::new();
        r.counter("req_total", &[("o", "a")]).add(2);
        r.counter("req_total", &[("o", "b")]).add(5);
        r.counter("other_total", &[]).add(100);
        assert_eq!(r.snapshot().counter_sum("req_total"), 7);
    }

    #[test]
    fn global_registry_is_one_instance() {
        global().counter("obs_selftest_total", &[]).inc();
        let v = global()
            .snapshot()
            .counter("obs_selftest_total", &[])
            .unwrap();
        assert!(v >= 1);
    }
}
