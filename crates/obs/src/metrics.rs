//! Scalar metric primitives: monotonic counters and up/down gauges.
//!
//! Handles are `Arc`s around a single atomic cell, handed out by the
//! [`Registry`](crate::Registry): clone one per call site, record with
//! relaxed atomics, read from any thread. A handle detached from any
//! registry (via `Counter::new()`) works identically — useful for
//! scratch measurements that should not appear in exported dumps.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter (not attached to a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    pub(crate) fn from_shared(cell: Arc<AtomicU64>) -> Self {
        Self { cell }
    }
}

/// A gauge: a signed value that can move both ways (queue depth,
/// in-flight requests, live model generation).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A free-standing gauge (not attached to a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.cell.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Stores a `[0, 1]` ratio as an integer permille (‰). Gauges are
    /// integers, so fractional quantities (accuracy, fill ratios) are
    /// exported at 1/1000 resolution; non-finite input clamps to 0.
    #[inline]
    pub fn set_permille(&self, ratio: f64) {
        let v = if ratio.is_finite() {
            (ratio * 1000.0)
                .round()
                .clamp(i64::MIN as f64, i64::MAX as f64) as i64
        } else {
            0
        };
        self.set(v);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    pub(crate) fn from_shared(cell: Arc<AtomicI64>) -> Self {
        Self { cell }
    }
}

/// An RAII in-flight marker: `inc` on construction, `dec` on drop —
/// including a drop during panic unwinding, so a crashed worker never
/// leaks an in-flight count.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
}

impl GaugeGuard {
    /// Increments `gauge` now; decrements it when dropped.
    pub fn enter(gauge: &Gauge) -> Self {
        gauge.inc();
        Self {
            gauge: gauge.clone(),
        }
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_clones_share_the_cell() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn permille_rounds_and_survives_non_finite() {
        let g = Gauge::new();
        g.set_permille(0.7349);
        assert_eq!(g.get(), 735);
        g.set_permille(1.0);
        assert_eq!(g.get(), 1000);
        g.set_permille(f64::NAN);
        assert_eq!(g.get(), 0);
        g.set_permille(f64::INFINITY);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_guard_releases_on_panic_unwind() {
        let g = Gauge::new();
        let g2 = g.clone();
        let r = std::panic::catch_unwind(move || {
            let _guard = GaugeGuard::enter(&g2);
            assert_eq!(g2.get(), 1);
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(g.get(), 0, "guard must release during unwind");
    }
}
