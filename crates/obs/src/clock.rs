//! Injectable monotonic time, shared by spans and the serving layer.
//!
//! PR 4 established the pattern: anything timing-sensitive takes a
//! [`ClockFn`] instead of reading `Instant` directly, so tests drive a
//! fake clock and every duration they observe is exact. This module
//! hoists that pattern out of `dnnspmv-core` so kernels, training, and
//! the tracer can use the same type without depending on the server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Injectable monotonic clock returning nanoseconds since an arbitrary
/// epoch. Production uses [`system_clock`]; tests drive a
/// [`ManualClock`] or any closure.
pub type ClockFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Monotonic wall clock (nanoseconds since first use anywhere in the
/// process — all instances share one epoch so timestamps compare).
pub fn system_clock() -> ClockFn {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    Arc::new(move || epoch.elapsed().as_nanos() as u64)
}

/// A hand-advanced fake clock for deterministic tests: reads are
/// atomic, so worker threads and the test harness can share it.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `t` nanoseconds.
    pub fn starting_at(t: u64) -> Arc<Self> {
        let c = Self::default();
        c.now.store(t, Ordering::SeqCst);
        Arc::new(c)
    }

    /// A clock starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current reading in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock by `dt` nanoseconds.
    pub fn advance(&self, dt: u64) {
        self.now.fetch_add(dt, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute reading. Jumping backwards is
    /// allowed — it models a host clock misbehaving (VM migration,
    /// time sync) — and every consumer is required to clamp elapsed
    /// arithmetic (`saturating_sub`/`saturating_add`) so a rewound
    /// clock reads as "no time passed", never as an underflow.
    pub fn set(&self, t: u64) {
        self.now.store(t, Ordering::SeqCst);
    }

    /// Rewinds the clock by `dt` nanoseconds (to zero at most) — the
    /// regression lever for non-monotonic-clock tests.
    pub fn rewind(&self, dt: u64) {
        let mut cur = self.now.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_sub(dt);
            match self
                .now
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// This clock as a [`ClockFn`] handle.
    pub fn as_clock_fn(self: &Arc<Self>) -> ClockFn {
        let c = Arc::clone(self);
        Arc::new(move || c.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_reads_through_the_handle() {
        let c = ManualClock::starting_at(10);
        let f = c.as_clock_fn();
        assert_eq!(f(), 10);
        c.advance(5);
        assert_eq!(f(), 15);
        c.set(100);
        assert_eq!(f(), 100);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let f = system_clock();
        let a = f();
        let b = f();
        assert!(b >= a);
    }
}
