//! `repro fig11` — loss convergence of late vs early merging (E8).
//!
//! Figure 11 plots the training cross-entropy of the two structures on
//! identical data and optimiser settings. The paper's shape: the
//! late-merging curve drops faster, converges lower (~0.1 vs ~0.4 at
//! 10000 steps), and is visibly steadier.

use crate::ExpConfig;
use dnnspmv_core::make_samples;
use dnnspmv_gen::Dataset;
use dnnspmv_nn::{build_cnn, train, Merging};
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use dnnspmv_repr::ReprKind;
use serde::{Deserialize, Serialize};

/// Loss-per-step curves of the two structures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossCurves {
    /// Per-step batch losses of the late-merging network.
    pub late: Vec<f32>,
    /// Per-step batch losses of the early-merging network.
    pub early: Vec<f32>,
}

/// Trains both structures on identical CPU histogram samples.
pub fn run(cfg: &ExpConfig) -> LossCurves {
    let data = Dataset::generate(&cfg.dataset);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset_noisy(&data.matrices, &intel, cfg.label_noise, cfg.seed);
    let samples = make_samples(
        &data.matrices,
        &labels,
        ReprKind::Histogram,
        &cfg.repr_config,
    );
    let shape = cfg.repr_config.channel_shape(ReprKind::Histogram);
    let classes = intel.formats().len();
    let train_cfg = cfg.train_config();

    let mut curves = Vec::new();
    for merging in [Merging::Late, Merging::Early] {
        let mut net = build_cnn(merging, 2, shape, classes, &cfg.cnn);
        let report = train(&mut net, &samples, &train_cfg);
        curves.push(report.loss_history);
    }
    let early = curves.pop().expect("two curves were trained");
    let late = curves.pop().expect("two curves were trained");
    LossCurves { late, early }
}

/// Moving average used for plotting (batch losses are noisy).
pub fn smooth(xs: &[f32], window: usize) -> Vec<f32> {
    if xs.is_empty() || window == 0 {
        return xs.to_vec();
    }
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(window / 2);
            let hi = (i + window.div_ceil(2)).min(xs.len());
            xs[lo..hi].iter().sum::<f32>() / (hi - lo) as f32
        })
        .collect()
}

impl LossCurves {
    /// Mean loss over the final quarter of a curve.
    pub fn final_loss(curve: &[f32]) -> f32 {
        if curve.is_empty() {
            return f32::NAN;
        }
        let tail = &curve[curve.len() - curve.len() / 4 - 1..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// Renders a sampled view of the two smoothed curves.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 11: loss convergence, late vs early merging ==\n");
        let late = smooth(&self.late, 21);
        let early = smooth(&self.early, 21);
        let n = late.len().min(early.len());
        out.push_str(&format!("{:>7} {:>12} {:>12}\n", "step", "late", "early"));
        let points = 20usize.min(n.max(1));
        for k in 0..points {
            let i = k * n.saturating_sub(1) / points.saturating_sub(1).max(1);
            out.push_str(&format!("{:>7} {:>12.4} {:>12.4}\n", i, late[i], early[i]));
        }
        out.push_str(&format!(
            "final loss: late={:.4} early={:.4}  (paper: late ~0.1, early ~0.4)\n",
            Self::final_loss(&self.late),
            Self::final_loss(&self.early)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_preserves_length_and_means() {
        let xs = vec![1.0, 3.0, 5.0, 7.0];
        let s = smooth(&xs, 2);
        assert_eq!(s.len(), 4);
        // Smoothed values stay within the data range.
        for v in &s {
            assert!((1.0..=7.0).contains(v));
        }
        assert_eq!(smooth(&[], 5), Vec::<f32>::new());
    }

    #[test]
    fn final_loss_uses_the_tail() {
        let curve = vec![10.0, 10.0, 10.0, 1.0, 1.0];
        assert!(LossCurves::final_loss(&curve) < 2.0);
    }

    #[test]
    fn mini_run_produces_two_nonempty_curves() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 60;
        cfg.dataset.n_augmented = 0;
        cfg.epochs = 2;
        let r = run(&cfg);
        assert!(!r.late.is_empty());
        assert_eq!(r.late.len(), r.early.len());
    }
}
