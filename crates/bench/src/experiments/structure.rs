//! `repro table1` / `repro fig10` — platform parameters and the CNN
//! structure printout (E1, E7).

use crate::ExpConfig;
use dnnspmv_nn::{build_cnn, describe_structure, Merging};
use dnnspmv_platform::PlatformModel;
use dnnspmv_repr::ReprConfig;

/// Renders Table 1: the three platform models and their parameters.
pub fn table1() -> String {
    let mut out = String::from("== Table 1: hardware platforms (as cost models) ==\n");
    for p in [
        PlatformModel::intel_cpu(),
        PlatformModel::amd_cpu(),
        PlatformModel::nvidia_gpu(),
    ] {
        out.push_str(&format!(
            "{:<22} bw={:>6.1} GB/s  cores={:>6}  flops/ns={:>6.1}  cache={:>5.0} B  {}  formats: {}\n",
            p.name,
            p.bw_gbps,
            p.cores,
            p.flops_per_ns,
            p.cache_bytes,
            if p.is_gpu { "GPU" } else { "CPU" },
            p.formats()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str(
        "(effective cache scaled to the synthetic dataset's working sets; see DESIGN.md)\n",
    );
    out
}

/// Renders Figure 10: the late-merging structure at the paper's input
/// sizes, with activation shapes at each stage.
pub fn fig10(cfg: &ExpConfig) -> String {
    let mut out = String::from("== Figure 10: late-merging CNN structure ==\n");
    out.push_str("At the paper's input size (128 x 128):\n");
    let paper = build_cnn(Merging::Late, 2, (128, 128), 4, &cfg.cnn);
    out.push_str(&describe_structure(&paper));
    let this = ReprConfig::default();
    out.push_str(&format!(
        "\nAt this repo's default histogram size ({} x {}):\n",
        this.hist_rows, this.hist_bins
    ));
    let ours = build_cnn(
        Merging::Late,
        2,
        (this.hist_rows, this.hist_bins),
        4,
        &cfg.cnn,
    );
    out.push_str(&describe_structure(&ours));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_three_platforms() {
        let s = table1();
        assert!(s.contains("Intel"));
        assert!(s.contains("AMD"));
        assert!(s.contains("TITAN"));
        assert!(s.contains("CSR5"));
    }

    #[test]
    fn fig10_reproduces_paper_waypoints() {
        let mut cfg = ExpConfig::quick();
        // Figure 10 uses the paper's channel schedule.
        cfg.cnn = dnnspmv_nn::CnnConfig::default();
        let s = fig10(&cfg);
        assert!(s.contains("CONV(3x3x16, stride 1)"));
        // 128x128 -> ... -> 4x4x64 -> 1024 (the figure's shapes).
        assert!(s.contains("64x4x4"), "{s}");
        assert!(s.contains("1024"));
    }
}
