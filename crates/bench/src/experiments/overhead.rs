//! `repro overhead` — prediction overhead in SpMV iterations (E9).
//!
//! Section 7.6 reports, in units of one CSR SpMV iteration: CNN input
//! representation 0.96x + CNN inference 0.13x = 1.09x total, versus the
//! DT's 3.4x feature extraction + 0.0085x prediction = 3.4x total (the
//! DT's hand-crafted features need several passes over the matrix).
//! These are real wall-clock measurements of our Rust implementations
//! on the host.

use crate::ExpConfig;
use dnnspmv_core::{make_samples, DtSelector, FormatSelector};
use dnnspmv_gen::Dataset;
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use dnnspmv_repr::{MatrixRepr, ReprKind};
use dnnspmv_sparse::{CooMatrix, CsrMatrix, Spmv};
use dnnspmv_tree::features;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Median per-matrix costs, in seconds and in CSR-SpMV-iteration units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadResult {
    /// Matrices measured.
    pub count: usize,
    /// Median one-iteration CSR SpMV time (the unit).
    pub spmv_secs: f64,
    /// Median histogram-representation extraction time.
    pub repr_secs: f64,
    /// Median CNN forward-pass time.
    pub cnn_infer_secs: f64,
    /// Median DT feature-extraction time.
    pub dt_features_secs: f64,
    /// Median DT tree-walk time.
    pub dt_predict_secs: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("times are not NaN"));
    xs[xs.len() / 2]
}

fn time_it<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Measures overheads on a sample of dataset matrices.
pub fn run(cfg: &ExpConfig) -> OverheadResult {
    let data = Dataset::generate(&cfg.dataset);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset_noisy(&data.matrices, &intel, cfg.label_noise, cfg.seed);

    // Small models are enough: inference cost is structure-dependent,
    // not accuracy-dependent.
    let mut train_cfg = cfg.clone();
    train_cfg.epochs = 1;
    let sel_cfg = train_cfg.selector_config(ReprKind::Histogram);
    let samples = make_samples(
        &data.matrices,
        &labels,
        ReprKind::Histogram,
        &cfg.repr_config,
    );
    let (cnn, _) = FormatSelector::train_on_samples(
        &samples[..samples.len().min(64)],
        intel.formats().to_vec(),
        &sel_cfg,
    );
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());

    // Measure at the paper's scale: §7.6's "about one SpMV iteration"
    // claim is about matrices with ~10^6 nonzeros, where one iteration
    // costs milliseconds. The training dataset's matrices are tiny
    // (SpMV is microseconds there, so any fixed inference cost looks
    // enormous); build a few large operators for the measurement.
    let large: Vec<CooMatrix<f32>> = vec![
        dnnspmv_gen::generate(dnnspmv_gen::MatrixClass::Stencil, 250_000, 3),
        dnnspmv_gen::generate(dnnspmv_gen::MatrixClass::Banded, 150_000, 5),
        dnnspmv_gen::generate(dnnspmv_gen::MatrixClass::PowerLaw, 60_000, 7),
        dnnspmv_gen::generate(dnnspmv_gen::MatrixClass::UniformRows, 100_000, 9),
        dnnspmv_gen::generate(dnnspmv_gen::MatrixClass::Random, 80_000, 11),
    ];
    let picks: Vec<&CooMatrix<f32>> = large.iter().collect();

    let mut spmv = Vec::new();
    let mut repr = Vec::new();
    let mut cnn_inf = Vec::new();
    let mut dt_feat = Vec::new();
    let mut dt_pred = Vec::new();
    for m in picks {
        let csr = CsrMatrix::from_coo(m);
        let x = vec![1.0f32; m.ncols()];
        let mut y = vec![0.0f32; m.nrows()];
        spmv.push(time_it(20, || csr.spmv(&x, &mut y)));
        repr.push(time_it(5, || {
            std::hint::black_box(MatrixRepr::extract(
                m,
                ReprKind::Histogram,
                &cfg.repr_config,
            ));
        }));
        let channels =
            dnnspmv_core::samples::make_channels(m, ReprKind::Histogram, &cfg.repr_config);
        cnn_inf.push(time_it(3, || {
            std::hint::black_box(cnn.net.forward(&channels));
        }));
        dt_feat.push(time_it(5, || {
            std::hint::black_box(features(m));
        }));
        let f = features(m);
        dt_pred.push(time_it(50, || {
            std::hint::black_box(dt_predict(&dt, &f, m));
        }));
    }

    OverheadResult {
        count: spmv.len(),
        spmv_secs: median(spmv),
        repr_secs: median(repr),
        cnn_infer_secs: median(cnn_inf),
        dt_features_secs: median(dt_feat),
        dt_predict_secs: median(dt_pred),
    }
}

fn dt_predict(dt: &DtSelector, _features: &[f64], m: &CooMatrix<f32>) -> usize {
    // DtSelector recomputes features internally; the tree walk itself
    // is measured as the difference, but for simplicity we time the
    // walk via the public API on an already-warm path.
    dt.predict_label(m)
}

impl OverheadResult {
    /// Renders the Section 7.6 comparison.
    pub fn render(&self) -> String {
        let unit = self.spmv_secs.max(1e-12);
        let repr = self.repr_secs / unit;
        let infer = self.cnn_infer_secs / unit;
        let feat = self.dt_features_secs / unit;
        let pred = (self.dt_predict_secs - self.dt_features_secs).max(0.0) / unit;
        format!(
            "== Section 7.6: prediction overhead (units of one CSR SpMV iteration) ==\n\
             measured over {} paper-scale matrices (~10^6 nnz); 1 unit = {:.3e} s\n\
             CNN: representation {repr:.2}x + inference {infer:.2}x = {:.2}x   (paper: 0.96 + 0.13 = 1.09x)\n\
             DT:  features       {feat:.2}x + tree walk {pred:.4}x = {:.2}x   (paper: 3.4 + 0.0085 = 3.4x)\n",
            self.count,
            self.spmv_secs,
            repr + infer,
            feat + pred,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_measurement_is_positive() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 60;
        cfg.dataset.n_augmented = 0;
        let r = run(&cfg);
        assert!(r.count > 0);
        assert!(r.spmv_secs > 0.0);
        assert!(r.repr_secs > 0.0);
        assert!(r.cnn_infer_secs > 0.0);
        assert!(r.dt_features_secs > 0.0);
        // The render must not divide by zero or produce NaN.
        let s = r.render();
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 3.0);
    }
}
