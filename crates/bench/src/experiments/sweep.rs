//! `repro sweep` — representation-size ablation (Section 4's sizing
//! remark: 128x128 images vs the histogram's smaller 128x50).
//!
//! Sweeps the histogram representation size and reports held-out
//! accuracy, demonstrating the paper's observation that the histogram
//! stays accurate at sizes where block-sampled images degrade.

use crate::ExpConfig;
use dnnspmv_core::{make_samples, FormatSelector};
use dnnspmv_gen::{kfold, Dataset};
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use dnnspmv_repr::{ReprConfig, ReprKind};
use serde::{Deserialize, Serialize};

/// Accuracy per representation size per kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Representation edge sizes swept.
    pub sizes: Vec<usize>,
    /// (representation name, accuracy per size).
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Runs the ablation on the Intel platform.
pub fn run(cfg: &ExpConfig) -> SweepResult {
    let data = Dataset::generate(&cfg.dataset);
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset_noisy(&data.matrices, &intel, cfg.label_noise, cfg.seed);
    let folds = kfold(data.matrices.len(), cfg.folds.max(2), cfg.seed ^ 0xF01D);
    let (train_idx, test_idx) = &folds[0];

    let sizes = vec![16usize, 24, 32, 48, 64];
    let kinds = [ReprKind::Binary, ReprKind::Histogram];
    let mut curves: Vec<(String, Vec<f64>)> = kinds
        .iter()
        .map(|k| (k.name().to_string(), Vec::new()))
        .collect();
    for &size in &sizes {
        let repr_config = ReprConfig {
            image_size: size,
            hist_rows: size,
            hist_bins: (size / 2).max(16),
        };
        for (ki, &kind) in kinds.iter().enumerate() {
            let samples = make_samples(&data.matrices, &labels, kind, &repr_config);
            let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
            let test: Vec<_> = test_idx.iter().map(|&i| samples[i].clone()).collect();
            let mut sel_cfg = cfg.selector_config(kind);
            sel_cfg.repr_config = repr_config;
            let (sel, _) =
                FormatSelector::train_on_samples(&train, intel.formats().to_vec(), &sel_cfg);
            curves[ki].1.push(sel.accuracy(&test));
        }
    }
    SweepResult { sizes, curves }
}

impl SweepResult {
    /// Renders the accuracy-vs-size table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("== Ablation: representation size vs held-out accuracy (Intel) ==\n");
        out.push_str(&format!("{:>6}", "size"));
        for (name, _) in &self.curves {
            out.push_str(&format!(" | {name:>20}"));
        }
        out.push('\n');
        for (i, &s) in self.sizes.iter().enumerate() {
            out.push_str(&format!("{s:>6}"));
            for (_, accs) in &self.curves {
                out.push_str(&format!(" | {:>20.3}", accs[i]));
            }
            out.push('\n');
        }
        out.push_str(
            "(paper: histograms work at 128x50 where images need 128x128 — distance binning is size-robust)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_aligned_curves() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 80;
        cfg.dataset.n_augmented = 0;
        cfg.epochs = 2;
        let r = run(&cfg);
        assert_eq!(r.curves.len(), 2);
        for (_, accs) in &r.curves {
            assert_eq!(accs.len(), r.sizes.len());
        }
    }
}
