//! `repro fig8` — SpMV speedups from CNN predictions (E4, E5).
//!
//! Figure 8 plots, over the test matrices where the CNN and DT models
//! *disagree*, the speedup of running SpMV in the CNN-chosen format
//! over the DT-chosen format (paper: 1.73x average, 5.2x max, 86% of
//! disagreements improved). Section 7.3 also reports speedups over
//! always-using-CSR (paper CPU: 2.23x average / 14.9x max; GPU: 1.7x /
//! 22.5x). Times come from the same deterministic cost model that
//! produced the labels (the measured-kernel cross-check lives in the
//! Criterion benches).

use crate::ExpConfig;
use dnnspmv_core::{make_samples, DtSelector, FormatSelector};
use dnnspmv_gen::{kfold, Dataset};
use dnnspmv_platform::{label_dataset_noisy, PlatformModel, WorkloadProfile};
use dnnspmv_repr::ReprKind;
use dnnspmv_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// Distribution summary of one speedup comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupStats {
    /// What is being compared (e.g. "CNN over DT").
    pub name: String,
    /// Number of matrices in the comparison.
    pub count: usize,
    /// Geometric quantities are more honest for ratios, but the paper
    /// reports arithmetic means; we report both.
    pub mean: f64,
    /// Geometric mean.
    pub geomean: f64,
    /// Maximum speedup.
    pub max: f64,
    /// Fraction of matrices with speedup >= 1.
    pub frac_improved: f64,
    /// Histogram over [`SpeedupStats::BUCKETS`] (last bucket is
    /// open-ended).
    pub histogram: Vec<usize>,
}

impl SpeedupStats {
    /// Bucket lower edges matching Figure 8's y-axis labels.
    pub const BUCKETS: [f64; 14] = [
        0.4, 0.8, 1.3, 1.7, 2.1, 2.5, 2.9, 3.3, 3.7, 4.1, 4.5, 4.9, 5.3, 5.7,
    ];

    fn from_ratios(name: &str, ratios: &[f64]) -> Self {
        let count = ratios.len();
        if count == 0 {
            return Self {
                name: name.into(),
                count: 0,
                mean: 0.0,
                geomean: 0.0,
                max: 0.0,
                frac_improved: 0.0,
                histogram: vec![0; Self::BUCKETS.len()],
            };
        }
        let mean = ratios.iter().sum::<f64>() / count as f64;
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / count as f64).exp();
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        let improved = ratios.iter().filter(|&&r| r >= 1.0).count();
        let mut histogram = vec![0usize; Self::BUCKETS.len()];
        for &r in ratios {
            // Find the last bucket whose lower edge is <= r.
            let mut b = 0;
            for (i, &edge) in Self::BUCKETS.iter().enumerate() {
                if r >= edge {
                    b = i;
                }
            }
            histogram[b] += 1;
        }
        Self {
            name: name.into(),
            count,
            mean,
            geomean,
            max,
            frac_improved: improved as f64 / count as f64,
            histogram,
        }
    }
}

/// Figure 8 + Section 7.3 result bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// CNN-chosen over DT-chosen, disagreeing matrices only (Fig. 8).
    pub cnn_over_dt: SpeedupStats,
    /// CNN-chosen over default CSR, all CPU test matrices (§7.3).
    pub cnn_over_csr_cpu: SpeedupStats,
    /// CNN-chosen over default CSR on the GPU platform (§7.3).
    pub cnn_over_csr_gpu: SpeedupStats,
}

fn estimate_time(platform: &PlatformModel, p: &WorkloadProfile, label: usize) -> f64 {
    platform.estimate(p, platform.formats()[label])
}

/// Trains CNN+Histogram and DT on one fold of each platform, then
/// compares predicted-format SpMV times on the held-out matrices.
pub fn run(cfg: &ExpConfig) -> SpeedupResult {
    let data = Dataset::generate(&cfg.dataset);
    let folds = kfold(data.matrices.len(), cfg.folds.max(2), cfg.seed ^ 0xF01D);
    let (train_idx, test_idx) = &folds[0];

    let mut cpu_ratios_vs_dt = Vec::new();
    let mut cpu_ratios_vs_csr = Vec::new();
    let mut gpu_ratios_vs_csr = Vec::new();

    for platform in [PlatformModel::intel_cpu(), PlatformModel::nvidia_gpu()] {
        let labels = label_dataset_noisy(&data.matrices, &platform, cfg.label_noise, cfg.seed);
        let samples = make_samples(
            &data.matrices,
            &labels,
            ReprKind::Histogram,
            &cfg.repr_config,
        );
        let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let (cnn, _) = FormatSelector::train_on_samples(
            &train,
            platform.formats().to_vec(),
            &cfg.selector_config(ReprKind::Histogram),
        );
        let train_m: Vec<CooMatrix<f32>> = train_idx
            .iter()
            .map(|&i| data.matrices[i].clone())
            .collect();
        let train_l: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let dt = DtSelector::train(&train_m, &train_l, platform.formats().to_vec());

        let csr_label = platform
            .formats()
            .iter()
            .position(|f| *f == dnnspmv_sparse::SparseFormat::Csr)
            .expect("every platform set contains CSR");

        for &i in test_idx {
            let m = &data.matrices[i];
            let profile = WorkloadProfile::compute(m);
            let cnn_label = cnn.predict_label(m);
            let t_cnn = estimate_time(&platform, &profile, cnn_label);
            let t_csr = estimate_time(&platform, &profile, csr_label);
            if t_cnn.is_finite() && t_csr.is_finite() {
                if platform.is_gpu {
                    gpu_ratios_vs_csr.push(t_csr / t_cnn);
                } else {
                    cpu_ratios_vs_csr.push(t_csr / t_cnn);
                }
            }
            if !platform.is_gpu {
                let dt_label = dt.predict_label(m);
                if dt_label != cnn_label {
                    let t_dt = estimate_time(&platform, &profile, dt_label);
                    if t_cnn.is_finite() && t_dt.is_finite() {
                        cpu_ratios_vs_dt.push(t_dt / t_cnn);
                    }
                }
            }
        }
    }

    SpeedupResult {
        cnn_over_dt: SpeedupStats::from_ratios(
            "CNN over DT (disagreements, CPU)",
            &cpu_ratios_vs_dt,
        ),
        cnn_over_csr_cpu: SpeedupStats::from_ratios(
            "CNN over default CSR (CPU)",
            &cpu_ratios_vs_csr,
        ),
        cnn_over_csr_gpu: SpeedupStats::from_ratios(
            "CNN over default CSR (GPU)",
            &gpu_ratios_vs_csr,
        ),
    }
}

impl SpeedupResult {
    /// Renders the distribution like Figure 8 plus the §7.3 headlines.
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 8 / Section 7.3: SpMV speedups ==\n");
        for s in [
            &self.cnn_over_dt,
            &self.cnn_over_csr_cpu,
            &self.cnn_over_csr_gpu,
        ] {
            out.push_str(&format!(
                "{}: n={} mean={:.2}x geomean={:.2}x max={:.1}x improved={:.0}%\n",
                s.name,
                s.count,
                s.mean,
                s.geomean,
                s.max,
                100.0 * s.frac_improved
            ));
        }
        out.push_str("Speedup distribution (CNN over DT, disagreements):\n");
        let total = self.cnn_over_dt.count.max(1);
        for (i, &edge) in SpeedupStats::BUCKETS.iter().enumerate() {
            let c = self.cnn_over_dt.histogram[i];
            let pct = 100.0 * c as f64 / total as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            out.push_str(&format!("  >= {edge:>3.1}x: {pct:>5.1}% {bar}\n"));
        }
        out.push_str(
            "(paper: 1.73x mean, 5.2x max, 86% improved over DT; 2.23x/14.9x over CSR on CPU, 1.7x/22.5x on GPU)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_sane() {
        let s = SpeedupStats::from_ratios("t", &[0.5, 1.0, 1.5, 2.0, 6.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 6.0);
        assert!((s.frac_improved - 0.8).abs() < 1e-9);
        // 6.0 lands in the open-ended last bucket.
        assert_eq!(*s.histogram.last().unwrap(), 1);
        assert_eq!(s.histogram.iter().sum::<usize>(), 5);
    }

    #[test]
    fn empty_ratios_do_not_panic() {
        let s = SpeedupStats::from_ratios("t", &[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
