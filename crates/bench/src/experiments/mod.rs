//! One module per reproduced table/figure.

pub mod labels;
pub mod loss;
pub mod overhead;
pub mod speedup;
pub mod structure;
pub mod sweep;
pub mod table;
pub mod transfer;
