//! `repro table2` / `repro table3` — prediction-quality tables (E2, E3).
//!
//! Table 2 (CPU): per-format recall and precision plus overall accuracy
//! for CNN+Binary, CNN+Binary+Density, CNN+Histogram and the DT
//! baseline, over the Intel platform's labels with k-fold cross
//! validation. Table 3 (GPU): CNN+Histogram vs DT over the six-format
//! cuSPARSE+CSR5 set. Paper reference values: CPU overall 0.88 / 0.90 /
//! 0.93 vs DT 0.85; GPU 0.90 vs 0.83.

use crate::{fmt_opt, ExpConfig};
use dnnspmv_core::{make_samples, DtSelector, FormatSelector};
use dnnspmv_gen::{kfold, Dataset};
use dnnspmv_nn::train::{accuracy_from_confusion, recall_precision};
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use dnnspmv_repr::ReprKind;
use dnnspmv_sparse::CooMatrix;
use serde::{Deserialize, Serialize};

/// One evaluated model: its name and fold-aggregated confusion matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelEval {
    /// Table column header.
    pub name: String,
    /// `confusion[truth][predicted]`, summed over all test folds.
    pub confusion: Vec<Vec<usize>>,
}

impl ModelEval {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        accuracy_from_confusion(&self.confusion)
    }
}

/// A full prediction-quality table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    /// Which paper table this reproduces.
    pub title: String,
    /// Format names (row labels).
    pub formats: Vec<String>,
    /// Ground-truth label counts over the whole dataset.
    pub ground_truth: Vec<usize>,
    /// Evaluated models (columns).
    pub models: Vec<ModelEval>,
}

/// Runs the Table 2 experiment (Intel CPU, all representations + DT).
pub fn table2(cfg: &ExpConfig) -> TableResult {
    run_table(
        cfg,
        &PlatformModel::intel_cpu(),
        &[
            ReprKind::Binary,
            ReprKind::BinaryDensity,
            ReprKind::Histogram,
        ],
        "Table 2: prediction quality on Intel CPU",
    )
}

/// Runs the Table 3 experiment (NVIDIA GPU, histogram CNN + DT).
pub fn table3(cfg: &ExpConfig) -> TableResult {
    run_table(
        cfg,
        &PlatformModel::nvidia_gpu(),
        &[ReprKind::Histogram],
        "Table 3: prediction quality on NVIDIA GPU",
    )
}

/// Shared machinery: k-fold CV of every CNN variant plus the DT.
pub fn run_table(
    cfg: &ExpConfig,
    platform: &PlatformModel,
    repr_kinds: &[ReprKind],
    title: &str,
) -> TableResult {
    let data = Dataset::generate(&cfg.dataset);
    let labels = label_dataset_noisy(&data.matrices, platform, cfg.label_noise, cfg.seed);
    let k = platform.formats().len();
    let mut ground_truth = vec![0usize; k];
    for &l in &labels {
        ground_truth[l] += 1;
    }
    let folds = kfold(data.matrices.len(), cfg.folds, cfg.seed ^ 0xF01D);

    let mut models = Vec::new();
    for &kind in repr_kinds {
        let samples = make_samples(&data.matrices, &labels, kind, &cfg.repr_config);
        let mut confusion = vec![vec![0usize; k]; k];
        for (train_idx, test_idx) in &folds {
            let train: Vec<_> = train_idx.iter().map(|&i| samples[i].clone()).collect();
            let test: Vec<_> = test_idx.iter().map(|&i| samples[i].clone()).collect();
            let (sel, _) = FormatSelector::train_on_samples(
                &train,
                platform.formats().to_vec(),
                &cfg.selector_config(kind),
            );
            for (cm_row, fold_row) in confusion.iter_mut().zip(sel.confusion(&test)) {
                for (c, v) in cm_row.iter_mut().zip(fold_row) {
                    *c += v;
                }
            }
        }
        models.push(ModelEval {
            name: kind.name().to_string(),
            confusion,
        });
    }

    // Decision-tree baseline over the same folds.
    let mut confusion = vec![vec![0usize; k]; k];
    for (train_idx, test_idx) in &folds {
        let train_m: Vec<CooMatrix<f32>> = train_idx
            .iter()
            .map(|&i| data.matrices[i].clone())
            .collect();
        let train_l: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_m: Vec<CooMatrix<f32>> =
            test_idx.iter().map(|&i| data.matrices[i].clone()).collect();
        let test_l: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
        let dt = DtSelector::train(&train_m, &train_l, platform.formats().to_vec());
        for (cm_row, fold_row) in confusion.iter_mut().zip(dt.confusion(&test_m, &test_l)) {
            for (c, v) in cm_row.iter_mut().zip(fold_row) {
                *c += v;
            }
        }
    }
    models.push(ModelEval {
        name: "DT".to_string(),
        confusion,
    });

    TableResult {
        title: title.to_string(),
        formats: platform
            .formats()
            .iter()
            .map(|f| f.name().to_string())
            .collect(),
        ground_truth,
        models,
    }
}

impl TableResult {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!("{:>7} {:>7}", "Format", "Truth"));
        for m in &self.models {
            out.push_str(&format!(" | {:^18}", m.name));
        }
        out.push('\n');
        out.push_str(&format!("{:>7} {:>7}", "", ""));
        for _ in &self.models {
            out.push_str(&format!(" | {:>8} {:>8}", "Recall", "Precis."));
        }
        out.push('\n');
        for (fi, f) in self.formats.iter().enumerate() {
            out.push_str(&format!("{f:>7} {:>7}", self.ground_truth[fi]));
            for m in &self.models {
                let rp = recall_precision(&m.confusion);
                out.push_str(&format!(
                    " | {:>8} {:>8}",
                    fmt_opt(rp[fi].0),
                    fmt_opt(rp[fi].1)
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>7} {:>7}",
            "Overall",
            self.ground_truth.iter().sum::<usize>()
        ));
        for m in &self.models {
            out.push_str(&format!(" | {:^18.3}", m.accuracy()));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end table run; asserts structural sanity.
    /// Slow-ish (trains a CNN), so it uses a very small configuration.
    #[test]
    fn mini_table_has_consistent_counts() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 120;
        cfg.dataset.n_augmented = 40;
        cfg.folds = 2;
        cfg.epochs = 4;
        let t = run_table(
            &cfg,
            &PlatformModel::intel_cpu(),
            &[ReprKind::Histogram],
            "mini",
        );
        assert_eq!(t.formats.len(), 4);
        let total: usize = t.ground_truth.iter().sum();
        assert_eq!(total, 160);
        for m in &t.models {
            let cm_total: usize = m.confusion.iter().flatten().sum();
            assert_eq!(cm_total, 160, "{} covers every test point", m.name);
            let acc = m.accuracy();
            assert!(acc > 0.3, "{} accuracy {acc} is below sanity", m.name);
        }
        assert_eq!(t.models.last().unwrap().name, "DT");
        // The render must include every format row and both models.
        let s = t.render();
        assert!(s.contains("CSR") && s.contains("DT") && s.contains("Overall"));
    }
}
