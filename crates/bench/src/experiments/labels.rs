//! `repro labels` — label-distribution sanity check (E10).
//!
//! Verifies that the synthetic dataset plus the platform cost models
//! produce a ground-truth distribution shaped like the paper's: CSR
//! dominating on CPU (Table 2's Ground Truth column: 6947 of 9200),
//! meaningful minorities for DIA/ELL/COO, COO never winning on GPU
//! (Table 3), and Intel/AMD disagreeing on a nontrivial fraction
//! (the premise of Section 6).

use crate::ExpConfig;
use dnnspmv_gen::Dataset;
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use serde::{Deserialize, Serialize};

/// Per-platform label counts plus the CPU-pair disagreement rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelStats {
    /// Total matrices.
    pub total: usize,
    /// (platform name, format names, counts).
    pub platforms: Vec<(String, Vec<String>, Vec<usize>)>,
    /// Fraction of matrices whose Intel and AMD labels differ.
    pub intel_amd_disagreement: f64,
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> LabelStats {
    let data = Dataset::generate(&cfg.dataset);
    let mut platforms = Vec::new();
    let mut intel_labels = Vec::new();
    let mut amd_labels = Vec::new();
    for p in [
        PlatformModel::intel_cpu(),
        PlatformModel::amd_cpu(),
        PlatformModel::nvidia_gpu(),
    ] {
        let labels = label_dataset_noisy(&data.matrices, &p, cfg.label_noise, cfg.seed);
        let mut counts = vec![0usize; p.formats().len()];
        for &l in &labels {
            counts[l] += 1;
        }
        if !p.is_gpu && intel_labels.is_empty() {
            intel_labels = labels.clone();
        } else if !p.is_gpu {
            amd_labels = labels.clone();
        }
        platforms.push((
            p.name.clone(),
            p.formats().iter().map(|f| f.name().to_string()).collect(),
            counts,
        ));
    }
    let disagree = intel_labels
        .iter()
        .zip(&amd_labels)
        .filter(|(a, b)| a != b)
        .count();
    LabelStats {
        total: data.matrices.len(),
        platforms,
        intel_amd_disagreement: disagree as f64 / data.matrices.len() as f64,
    }
}

impl LabelStats {
    /// Prints the distribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Label distribution over {} matrices ==\n",
            self.total
        ));
        for (name, formats, counts) in &self.platforms {
            out.push_str(&format!("{name}:\n"));
            for (f, c) in formats.iter().zip(counts) {
                out.push_str(&format!(
                    "  {f:>5}: {c:>6}  ({:.1}%)\n",
                    100.0 * *c as f64 / self.total as f64
                ));
            }
        }
        out.push_str(&format!(
            "Intel vs AMD label disagreement: {:.1}% (paper premise: labels are architecture-dependent)\n",
            100.0 * self.intel_amd_disagreement
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_stats_shape_matches_paper() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 150;
        cfg.dataset.n_augmented = 50;
        let stats = run(&cfg);
        assert_eq!(stats.total, 200);
        // CPU platform 0 = Intel: CSR (index 1 in CPU set) dominates.
        let (_, formats, counts) = &stats.platforms[0];
        let csr = formats.iter().position(|f| f == "CSR").unwrap();
        assert!(
            counts[csr] * 2 > stats.total,
            "CSR holds only {}/{}",
            counts[csr],
            stats.total
        );
        // Every CPU class is populated.
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
        // COO never (or almost never) wins on the GPU.
        let (_, gformats, gcounts) = &stats.platforms[2];
        let coo = gformats.iter().position(|f| f == "COO").unwrap();
        assert!(
            gcounts[coo] * 50 < stats.total,
            "GPU COO wins {}",
            gcounts[coo]
        );
        // Platforms disagree on some but not most labels.
        assert!(stats.intel_amd_disagreement > 0.02);
        assert!(stats.intel_amd_disagreement < 0.6);
    }
}
