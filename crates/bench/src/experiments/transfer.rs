//! `repro fig9` — cross-architecture model migration (E6).
//!
//! Figure 9: train a selector on the Intel platform, then migrate it to
//! the AMD platform with increasing amounts of AMD-labelled retraining
//! data, comparing *train from scratch*, *continuous evolvement* and
//! *top evolvement*. The paper's shape: both transfer methods reach
//! high accuracy with a fraction of the data the from-scratch curve
//! needs, and top evolvement learns fastest at small sizes while
//! continuous evolvement has the slightly higher ceiling.

use crate::ExpConfig;
use dnnspmv_core::{make_samples, FormatSelector};
use dnnspmv_gen::{kfold, Dataset};
use dnnspmv_nn::transfer::Migration;
use dnnspmv_nn::TrainConfig;
use dnnspmv_platform::{label_dataset_noisy, PlatformModel};
use dnnspmv_repr::ReprKind;
use serde::{Deserialize, Serialize};

/// Accuracy-vs-retraining-size curves for the three strategies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferResult {
    /// Retraining-set sizes (x axis).
    pub sizes: Vec<usize>,
    /// (strategy name, accuracy per size) — Figure 9's three curves.
    pub curves: Vec<(String, Vec<f64>)>,
    /// Accuracy of the unmigrated Intel model on AMD labels (the
    /// motivation: it is poor).
    pub source_on_target: f64,
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> TransferResult {
    let data = Dataset::generate(&cfg.dataset);
    let intel = PlatformModel::intel_cpu();
    let amd = PlatformModel::amd_cpu();
    let intel_labels = label_dataset_noisy(&data.matrices, &intel, cfg.label_noise, cfg.seed);
    let amd_labels = label_dataset_noisy(&data.matrices, &amd, cfg.label_noise, cfg.seed ^ 1);

    let folds = kfold(data.matrices.len(), cfg.folds.max(2), cfg.seed ^ 0xF01D);
    let (train_idx, test_idx) = &folds[0];

    let sel_cfg = cfg.selector_config(ReprKind::Histogram);
    let intel_samples = make_samples(
        &data.matrices,
        &intel_labels,
        ReprKind::Histogram,
        &cfg.repr_config,
    );
    let amd_samples = make_samples(
        &data.matrices,
        &amd_labels,
        ReprKind::Histogram,
        &cfg.repr_config,
    );

    // Source model: full Intel training set.
    let train_src: Vec<_> = train_idx
        .iter()
        .map(|&i| intel_samples[i].clone())
        .collect();
    let (source, _) =
        FormatSelector::train_on_samples(&train_src, intel.formats().to_vec(), &sel_cfg);

    let amd_train: Vec<_> = train_idx.iter().map(|&i| amd_samples[i].clone()).collect();
    let amd_test: Vec<_> = test_idx.iter().map(|&i| amd_samples[i].clone()).collect();
    let source_on_target = source.accuracy(&amd_test);

    // Retraining sizes: 0 .. full training set in ~9 steps (the paper
    // sweeps 0..4500 in steps of 500 on a 9200-matrix set).
    let steps = 9usize;
    let max_size = amd_train.len() / 2;
    let sizes: Vec<usize> = (0..=steps).map(|k| k * max_size / steps).collect();

    let migrate_cfg = TrainConfig {
        // Migration budgets are small; keep the epoch count matched to
        // the main training so comparisons are fair.
        ..sel_cfg.train.clone()
    };

    let mut curves: Vec<(String, Vec<f64>)> = Migration::ALL
        .iter()
        .map(|s| (s.name().to_string(), Vec::new()))
        .collect();
    for &size in &sizes {
        let subset = &amd_train[..size];
        for (si, &strategy) in Migration::ALL.iter().enumerate() {
            let acc = if size == 0 {
                match strategy {
                    // Without retraining data, transfer = reuse the
                    // source model; scratch = an untrained network.
                    Migration::FromScratch => {
                        let (fresh, _) = FormatSelector::train_on_samples(
                            &[],
                            intel.formats().to_vec(),
                            &sel_cfg,
                        );
                        fresh.accuracy(&amd_test)
                    }
                    _ => source_on_target,
                }
            } else {
                let (migrated, _) = source.migrate(strategy, subset, &migrate_cfg);
                migrated.accuracy(&amd_test)
            };
            curves[si].1.push(acc);
        }
    }

    TransferResult {
        sizes,
        curves,
        source_on_target,
    }
}

impl TransferResult {
    /// Renders the three curves as aligned columns (Figure 9's data).
    pub fn render(&self) -> String {
        let mut out = String::from("== Figure 9: migrating Intel -> AMD ==\n");
        out.push_str(&format!(
            "Unmigrated source accuracy on AMD labels: {:.3}\n",
            self.source_on_target
        ));
        out.push_str(&format!("{:>8}", "size"));
        for (name, _) in &self.curves {
            out.push_str(&format!(" | {name:>22}"));
        }
        out.push('\n');
        for (i, &s) in self.sizes.iter().enumerate() {
            out.push_str(&format!("{s:>8}"));
            for (_, accs) in &self.curves {
                out.push_str(&format!(" | {:>22.3}", accs[i]));
            }
            out.push('\n');
        }
        out.push_str(
            "(paper shape: transfer methods reach target accuracy with ~1/4 of the from-scratch data)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_complete_and_bounded() {
        let mut cfg = ExpConfig::quick();
        cfg.dataset.n_base = 100;
        cfg.dataset.n_augmented = 20;
        cfg.epochs = 3;
        let r = run(&cfg);
        assert_eq!(r.curves.len(), 3);
        for (name, accs) in &r.curves {
            assert_eq!(accs.len(), r.sizes.len(), "{name}");
            for &a in accs {
                assert!((0.0..=1.0).contains(&a), "{name}: {a}");
            }
        }
        assert_eq!(r.sizes[0], 0);
        // Transfer curves start exactly at the unmigrated accuracy.
        assert_eq!(r.curves[1].1[0], r.source_on_target);
        assert_eq!(r.curves[2].1[0], r.source_on_target);
    }
}
