//! `serve-bench` — soak driver for the admission-controlled selector
//! server.
//!
//! Trains a small CNN+tree ladder, then drives a [`SelectorServer`]
//! through three phases with a pool of client threads:
//!
//! 1. **steady** — healthy CNN under sustained parallel load;
//! 2. **fault** — an injected panic storm in the CNN rung (the breaker
//!    trips, the tree keeps answering);
//! 3. **recovery** — the fault clears, a half-open probe restores the
//!    CNN, and a hot model reload swaps a new generation in mid-load.
//!
//! Per-phase p50/p99/max latency, the overall shed rate, and the
//! breaker transition counts go to `BENCH_serve.json`.

use dnnspmv_core::{
    BreakerConfig, BreakerState, CnnFault, DtSelector, FormatSelector, SelectorServer,
    SelectorService, ServeError, ServeHooks, ServerConfig, ServerReport,
};
use dnnspmv_gen::{Dataset, DatasetSpec};
use dnnspmv_platform::{label_dataset, PlatformModel};
use serde::Serialize;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Matrices in the synthetic training set.
    pub matrices: usize,
    /// Training epochs (the model's accuracy is irrelevant here; it
    /// just has to be a real CNN doing real work per request).
    pub epochs: usize,
    /// Parallel client threads.
    pub clients: usize,
    /// Requests each client sends per phase.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Bounded queue capacity (small enough that bursts shed).
    pub queue_capacity: usize,
    /// Dataset / training seed.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        Self {
            matrices: 100,
            epochs: 2,
            clients: 12,
            requests_per_client: 60,
            workers: 2,
            // Deliberately smaller than the client pool so sustained
            // load actually exercises the shedding path.
            queue_capacity: 4,
            seed: 41,
        }
    }
}

/// Latency digest for one phase.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseStats {
    /// Phase name (steady / fault / recovery).
    pub phase: String,
    /// Requests answered in this phase.
    pub served: u64,
    /// Requests shed in this phase.
    pub shed: u64,
    /// Median submit→answer latency, milliseconds (served only).
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
}

/// Machine-readable soak result (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Per-phase latency digests.
    pub phases: Vec<PhaseStats>,
    /// shed / submitted over the whole run.
    pub shed_rate: f64,
    /// Closed/half-open → open transitions (≥ 1: the fault tripped it).
    pub breaker_to_open: u64,
    /// Open → half-open transitions (probes issued).
    pub breaker_to_half_open: u64,
    /// Half-open → closed transitions (≥ 1: recovery happened).
    pub breaker_to_closed: u64,
    /// Successful hot reloads during the run.
    pub reloads_ok: u64,
    /// Whether every submission landed in exactly one terminal bucket.
    pub accounting_exact: bool,
    /// Full final server counters.
    pub server: ServerReport,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn phase_stats(name: &str, latencies_ms: &mut [f64], shed: u64) -> PhaseStats {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    PhaseStats {
        phase: name.to_string(),
        served: latencies_ms.len() as u64,
        shed,
        p50_ms: percentile(latencies_ms, 0.50),
        p99_ms: percentile(latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    }
}

/// One phase of parallel hammering; returns served latencies and the
/// number of sheds observed by the clients.
fn drive_phase(
    server: &SelectorServer<f32>,
    matrices: &[dnnspmv_sparse::CooMatrix<f32>],
    clients: usize,
    requests_per_client: usize,
) -> (Vec<f64>, u64) {
    let latencies = Mutex::new(Vec::new());
    let shed = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latencies = &latencies;
            let shed = &shed;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(requests_per_client);
                let mut my_shed = 0u64;
                for r in 0..requests_per_client {
                    let m = Arc::new(matrices[(c * 31 + r * 7) % matrices.len()].clone());
                    let t0 = Instant::now();
                    match server.submit(m, None).and_then(|p| p.wait()) {
                        Ok(_) => mine.push(t0.elapsed().as_secs_f64() * 1e3),
                        Err(ServeError::Overloaded { .. }) => my_shed += 1,
                        Err(e) => panic!("soak: unexpected error {e}"),
                    }
                }
                latencies.lock().unwrap().extend(mine);
                *shed.lock().unwrap() += my_shed;
            });
        }
    });
    (latencies.into_inner().unwrap(), shed.into_inner().unwrap())
}

/// Runs the full three-phase soak and returns the report.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let data = Dataset::generate(&DatasetSpec {
        n_base: (cfg.matrices * 8) / 10,
        n_augmented: cfg.matrices - (cfg.matrices * 8) / 10,
        dim_min: 48,
        dim_max: 128,
        seed: cfg.seed,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let sel_cfg = crate::ExpConfig::quick().selector_config(dnnspmv_repr::ReprKind::Histogram);
    let sel_cfg = dnnspmv_core::SelectorConfig {
        train: dnnspmv_nn::TrainConfig {
            epochs: cfg.epochs,
            ..sel_cfg.train
        },
        ..sel_cfg
    };
    let (cnn, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &sel_cfg,
    );
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
    let service = SelectorService::new(Some(cnn.clone()), Some(dt))
        .expect("freshly trained predictors validate")
        .with_confidence_threshold(0.0);

    // Fault phase selector: 0 = healthy, 1 = panic storm.
    let fault_phase = Arc::new(AtomicU8::new(0));
    let fp = Arc::clone(&fault_phase);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if fp.load(Ordering::SeqCst) == 1 {
                CnnFault::Panic
            } else {
                CnnFault::None
            }
        })),
    };
    let server: SelectorServer<f32> = SelectorServer::with_parts(
        service,
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            },
            ..ServerConfig::default()
        },
        hooks,
        dnnspmv_core::system_clock(),
    );

    let mut phases = Vec::new();

    // Phase 1: steady healthy load.
    let (mut lat, shed) = drive_phase(
        &server,
        &data.matrices,
        cfg.clients,
        cfg.requests_per_client,
    );
    phases.push(phase_stats("steady", &mut lat, shed));

    // Phase 2: panic storm — the tree must keep answering.
    fault_phase.store(1, Ordering::SeqCst);
    let (mut lat, shed) = drive_phase(
        &server,
        &data.matrices,
        cfg.clients,
        cfg.requests_per_client,
    );
    phases.push(phase_stats("fault", &mut lat, shed));

    // Phase 3: fault clears; a hot reload swaps a new generation in
    // mid-load, and the half-open probe restores the CNN.
    fault_phase.store(0, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.json");
    cnn.save(model_path.to_string_lossy().as_ref())
        .expect("save soak model");
    server.reload_model(&model_path).expect("hot reload");
    let (mut lat, shed) = drive_phase(
        &server,
        &data.matrices,
        cfg.clients,
        cfg.requests_per_client,
    );
    phases.push(phase_stats("recovery", &mut lat, shed));
    // Trickle requests until the half-open probe has closed the
    // breaker (bounded: the backoff cap is 50 ms).
    let give_up = Instant::now() + Duration::from_secs(10);
    while server.report().breaker.state != BreakerState::Closed && Instant::now() < give_up {
        let m = Arc::new(data.matrices[0].clone());
        let _ = server.submit(m, None).and_then(|p| p.wait());
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let report = server.report();
    ServeBenchReport {
        phases,
        shed_rate: report.shed as f64 / report.submitted.max(1) as f64,
        breaker_to_open: report.breaker.to_open,
        breaker_to_half_open: report.breaker.to_half_open,
        breaker_to_closed: report.breaker.to_closed,
        reloads_ok: report.reloads_ok,
        accounting_exact: report.accounted() == report.submitted,
        server: report,
    }
}

impl ServeBenchReport {
    /// The report as a JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialisable report")
    }

    /// Writes the JSON line to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Human-readable summary (stderr companion to the JSON).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            out.push_str(&format!(
                "{:>9}: served {:>5}, shed {:>4}, p50 {:>7.2} ms, p99 {:>7.2} ms, max {:>7.2} ms\n",
                p.phase, p.served, p.shed, p.p50_ms, p.p99_ms, p.max_ms
            ));
        }
        out.push_str(&format!(
            "shed rate {:.3}; breaker open/half-open/closed = {}/{}/{}; reloads {}; accounting {}\n",
            self.shed_rate,
            self.breaker_to_open,
            self.breaker_to_half_open,
            self.breaker_to_closed,
            self.reloads_ok,
            if self.accounting_exact { "exact" } else { "LOST REQUESTS" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_small_and_empty_inputs() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn tiny_soak_trips_and_recovers() {
        let r = run_serve_bench(&ServeBenchConfig {
            matrices: 40,
            epochs: 1,
            clients: 4,
            requests_per_client: 12,
            workers: 2,
            queue_capacity: 8,
            seed: 7,
        });
        assert_eq!(r.phases.len(), 3);
        assert!(r.breaker_to_open >= 1, "fault phase must trip: {r:?}");
        assert!(r.breaker_to_closed >= 1, "recovery must close: {r:?}");
        assert_eq!(r.reloads_ok, 1);
        assert!(r.accounting_exact, "{r:?}");
    }
}
