//! `serve-bench` — soak driver for the admission-controlled selector
//! server.
//!
//! Trains a small CNN+tree ladder, then drives a [`SelectorServer`]
//! through three phases with a pool of client threads:
//!
//! 1. **steady** — healthy CNN under sustained parallel load;
//! 2. **fault** — an injected panic storm in the CNN rung (the breaker
//!    trips, the tree keeps answering);
//! 3. **recovery** — the fault clears, a half-open probe restores the
//!    CNN, and a hot model reload swaps a new generation in mid-load.
//!
//! A fourth stage compares the two-stage hot path (fingerprint-keyed
//! decision cache + worker micro-batching) against a plain per-request
//! server built from the same model, under the same ≥ 3× closed-loop
//! overload and then at low load — the throughput ratio, cache hit
//! rate, and hit-vs-miss medians land in the report
//! ([`HotPathComparison`]).
//!
//! Per-phase p50/p99/max latency and throughput, the overall shed
//! rate, and the breaker transition counts go to `BENCH_serve.json`.
//! Phase stats are
//! read straight off the server's metrics registry: clients record
//! their observed latencies into per-phase registry histograms and the
//! digests are [`HistogramSnapshot`] quantiles — the same arithmetic
//! every other exporter uses, not a private percentile routine.
//!
//! [`run_overhead_smoke`] measures what the instrumentation itself
//! costs: two identical steady-phase soaks, one with the server's
//! latency histograms enabled and one with them disabled
//! ([`ServerConfig::latency_metrics`]), clients timing both sides the
//! same way. CI fails if the instrumented p50 regresses more than 10 %.

use dnnspmv_core::{
    BreakerConfig, BreakerState, CacheConfig, CnnFault, DtSelector, FormatSelector, SelectorServer,
    SelectorService, ServeError, ServeHooks, ServerConfig, ServerReport,
};
use dnnspmv_gen::{Dataset, DatasetSpec};
use dnnspmv_obs::{HistogramSnapshot, LatencyHistogram};
use dnnspmv_platform::{label_dataset, PlatformModel};
use dnnspmv_sparse::CooMatrix;
use serde::Serialize;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Matrices in the synthetic training set.
    pub matrices: usize,
    /// Training epochs (the model's accuracy is irrelevant here; it
    /// just has to be a real CNN doing real work per request).
    pub epochs: usize,
    /// Parallel client threads.
    pub clients: usize,
    /// Requests each client sends per phase.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Bounded queue capacity (small enough that bursts shed).
    pub queue_capacity: usize,
    /// Dataset / training seed.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        Self {
            matrices: 100,
            epochs: 2,
            clients: 12,
            requests_per_client: 60,
            workers: 2,
            // Deliberately smaller than the client pool so sustained
            // load actually exercises the shedding path.
            queue_capacity: 4,
            seed: 41,
        }
    }
}

/// Latency digest for one phase.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseStats {
    /// Phase name (steady / fault / recovery).
    pub phase: String,
    /// Requests answered in this phase.
    pub served: u64,
    /// Requests shed in this phase.
    pub shed: u64,
    /// Median submit→answer latency, milliseconds (served only).
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Answers per wall-clock second over the phase.
    pub served_per_sec: f64,
}

/// Batched-vs-unbatched hot-path comparison: the same closed-loop
/// overload driven against two servers built from the same model — one
/// with the two-stage hot path off (no cache, `max_batch` 1) and one
/// with it on — plus a low-load pass on each, so the comparison shows
/// both the overload win and that unloaded latency did not regress.
#[derive(Debug, Clone, Serialize)]
pub struct HotPathComparison {
    /// Overload answers/sec with the hot path off.
    pub unbatched_served_per_sec: f64,
    /// Overload answers/sec with cache + micro-batching on.
    pub batched_served_per_sec: f64,
    /// batched / unbatched overload throughput.
    pub throughput_ratio: f64,
    /// Overload shed fraction, hot path off.
    pub unbatched_shed_rate: f64,
    /// Overload shed fraction, hot path on.
    pub batched_shed_rate: f64,
    /// Low-load (single sequential client) p50, hot path off, ms.
    pub low_load_unbatched_p50_ms: f64,
    /// Low-load p50, hot path on, ms.
    pub low_load_batched_p50_ms: f64,
    /// Low-load p50 ratio (hot / off); ≤ 1.10 is the acceptance bar.
    pub low_load_p50_ratio: f64,
    /// Cache hit fraction over all lookups on the hot server.
    pub cache_hit_rate: f64,
    /// Median cache-hit service time (fingerprint + lookup), µs.
    pub cache_hit_p50_us: f64,
    /// Low-load miss-path p50 on the unbatched server, µs — the
    /// reference the hit path is compared against.
    pub miss_p50_us: f64,
    /// Both comparison servers passed the terminal-bucket *and*
    /// path-route accounting invariants.
    pub accounting_exact: bool,
}

/// Machine-readable soak result (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Per-phase latency digests.
    pub phases: Vec<PhaseStats>,
    /// Batched-vs-unbatched throughput comparison (tentpole numbers).
    pub hot_path: HotPathComparison,
    /// shed / submitted over the whole run.
    pub shed_rate: f64,
    /// Closed/half-open → open transitions (≥ 1: the fault tripped it).
    pub breaker_to_open: u64,
    /// Open → half-open transitions (probes issued).
    pub breaker_to_half_open: u64,
    /// Half-open → closed transitions (≥ 1: recovery happened).
    pub breaker_to_closed: u64,
    /// Successful hot reloads during the run.
    pub reloads_ok: u64,
    /// Whether every submission landed in exactly one terminal bucket.
    pub accounting_exact: bool,
    /// Full final server counters.
    pub server: ServerReport,
}

impl PhaseStats {
    /// Builds a phase digest from a latency-histogram snapshot — the
    /// one percentile implementation (`HistogramSnapshot::quantile`)
    /// this crate uses.
    pub fn from_histogram(
        phase: &str,
        snap: &HistogramSnapshot,
        shed: u64,
        elapsed: Duration,
    ) -> Self {
        Self {
            phase: phase.to_string(),
            served: snap.count,
            shed,
            p50_ms: snap.p50() as f64 / 1e6,
            p99_ms: snap.p99() as f64 / 1e6,
            max_ms: snap.max as f64 / 1e6,
            served_per_sec: snap.count as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    }
}

/// Parallel hammering: `clients` threads each send
/// `requests_per_client` requests, recording every served request's
/// submit→answer latency into `latency`. All clients have joined (so
/// every accepted request has completed) by the time this returns.
fn hammer(
    server: &SelectorServer<f32>,
    matrices: &[CooMatrix<f32>],
    clients: usize,
    requests_per_client: usize,
    latency: &LatencyHistogram,
) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for r in 0..requests_per_client {
                    let m = Arc::new(matrices[(c * 31 + r * 7) % matrices.len()].clone());
                    let t0 = Instant::now();
                    match server.submit(m, None).and_then(|p| p.wait()) {
                        Ok(_) => latency.record(t0.elapsed().as_nanos() as u64),
                        Err(ServeError::Overloaded { .. }) => {}
                        Err(e) => panic!("soak: unexpected error {e}"),
                    }
                }
            });
        }
    });
}

fn shed_total(server: &SelectorServer<f32>) -> u64 {
    server
        .metrics_snapshot()
        .counter("serve_outcome_total", &[("outcome", "shed")])
        .unwrap_or(0)
}

/// One phase of parallel hammering. Client latencies land in the
/// server registry (`bench_client_latency_ns{phase}`); the digest and
/// the phase's shed count are read back off that same registry.
fn drive_phase(
    server: &SelectorServer<f32>,
    matrices: &[CooMatrix<f32>],
    clients: usize,
    requests_per_client: usize,
    phase: &str,
) -> PhaseStats {
    let latency = server
        .registry()
        .histogram("bench_client_latency_ns", &[("phase", phase)]);
    let shed_before = shed_total(server);
    let t0 = Instant::now();
    hammer(server, matrices, clients, requests_per_client, &latency);
    let elapsed = t0.elapsed();
    let shed = shed_total(server) - shed_before;
    PhaseStats::from_histogram(phase, &latency.snapshot(), shed, elapsed)
}

/// Trains the soak fixture: a small CNN+tree pair plus the matrices
/// the clients will submit. Shared by [`run_serve_bench`] and
/// [`run_overhead_smoke`] (the smoke trains once and serves twice).
fn trained_parts(cfg: &ServeBenchConfig) -> (FormatSelector, DtSelector, Vec<CooMatrix<f32>>) {
    let data = Dataset::generate(&DatasetSpec {
        n_base: (cfg.matrices * 8) / 10,
        n_augmented: cfg.matrices - (cfg.matrices * 8) / 10,
        dim_min: 48,
        dim_max: 128,
        seed: cfg.seed,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let sel_cfg = crate::ExpConfig::quick().selector_config(dnnspmv_repr::ReprKind::Histogram);
    let sel_cfg = dnnspmv_core::SelectorConfig {
        train: dnnspmv_nn::TrainConfig {
            epochs: cfg.epochs,
            ..sel_cfg.train
        },
        ..sel_cfg
    };
    let (cnn, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &sel_cfg,
    );
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());
    (cnn, dt, data.matrices)
}

/// Drives the batched-vs-unbatched comparison: the same overload and
/// low-load traffic against a server with the hot path off and one with
/// it on. Closed-loop clients mean both sides see the same offered
/// pattern; the shed rates are reported so the throughput ratio can be
/// read at comparable shed budgets.
fn run_hot_path_comparison(
    cnn: &FormatSelector,
    dt: &DtSelector,
    matrices: &[CooMatrix<f32>],
    cfg: &ServeBenchConfig,
) -> HotPathComparison {
    let queue_capacity = cfg.queue_capacity.max(16);
    let build = |hot: bool| -> SelectorServer<f32> {
        let service = SelectorService::new(Some(cnn.clone()), Some(dt.clone()))
            .expect("freshly trained predictors validate")
            .with_confidence_threshold(0.0);
        SelectorServer::new(
            service,
            ServerConfig {
                workers: cfg.workers,
                queue_capacity,
                cache: if hot {
                    CacheConfig::enabled(1024)
                } else {
                    CacheConfig::default()
                },
                max_batch: if hot { 8 } else { 1 },
                ..ServerConfig::default()
            },
        )
    };
    // ≥ 3× overload: at least three closed-loop clients per worker.
    let overload_clients = cfg.clients.max(3 * cfg.workers);
    let side = |hot: bool| {
        let server = build(hot);
        let overload = LatencyHistogram::new();
        let t0 = Instant::now();
        hammer(
            &server,
            matrices,
            overload_clients,
            cfg.requests_per_client,
            &overload,
        );
        let elapsed = t0.elapsed();
        // Low load: one sequential client — batches stay singletons, so
        // this measures what batching costs when there is nothing to
        // coalesce (and, on the hot side, what hits buy).
        let low = LatencyHistogram::new();
        hammer(&server, matrices, 1, cfg.requests_per_client, &low);
        let r = server.report();
        let hit_p50_us = server
            .metrics_snapshot()
            .histogram("serve_cache_hit_ns", &[])
            .map_or(0.0, |h| h.p50() as f64 / 1e3);
        (
            overload.snapshot().count as f64 / elapsed.as_secs_f64().max(1e-9),
            r.shed as f64 / r.submitted.max(1) as f64,
            low.snapshot().p50() as f64 / 1e6,
            r.cache.hit_rate(),
            hit_p50_us,
            r.accounted() == r.submitted && r.path_accounted(),
        )
    };
    let (un_tput, un_shed, un_p50_ms, _, _, un_exact) = side(false);
    let (hot_tput, hot_shed, hot_p50_ms, hit_rate, hit_p50_us, hot_exact) = side(true);
    HotPathComparison {
        unbatched_served_per_sec: un_tput,
        batched_served_per_sec: hot_tput,
        throughput_ratio: hot_tput / un_tput.max(1e-9),
        unbatched_shed_rate: un_shed,
        batched_shed_rate: hot_shed,
        low_load_unbatched_p50_ms: un_p50_ms,
        low_load_batched_p50_ms: hot_p50_ms,
        low_load_p50_ratio: hot_p50_ms / un_p50_ms.max(1e-9),
        cache_hit_rate: hit_rate,
        cache_hit_p50_us: hit_p50_us,
        miss_p50_us: un_p50_ms * 1e3,
        accounting_exact: un_exact && hot_exact,
    }
}

/// Runs the full three-phase soak and returns the report.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let (cnn, dt, matrices) = trained_parts(cfg);
    let service = SelectorService::new(Some(cnn.clone()), Some(dt.clone()))
        .expect("freshly trained predictors validate")
        .with_confidence_threshold(0.0);

    // Fault phase selector: 0 = healthy, 1 = panic storm.
    let fault_phase = Arc::new(AtomicU8::new(0));
    let fp = Arc::clone(&fault_phase);
    let hooks = ServeHooks {
        cnn_fault: Some(Arc::new(move |_seq| {
            if fp.load(Ordering::SeqCst) == 1 {
                CnnFault::Panic
            } else {
                CnnFault::None
            }
        })),
    };
    let server: SelectorServer<f32> = SelectorServer::with_parts(
        service,
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            },
            ..ServerConfig::default()
        },
        hooks,
        dnnspmv_core::system_clock(),
    );

    let mut phases = Vec::new();

    // Phase 1: steady healthy load.
    phases.push(drive_phase(
        &server,
        &matrices,
        cfg.clients,
        cfg.requests_per_client,
        "steady",
    ));

    // Phase 2: panic storm — the tree must keep answering.
    fault_phase.store(1, Ordering::SeqCst);
    phases.push(drive_phase(
        &server,
        &matrices,
        cfg.clients,
        cfg.requests_per_client,
        "fault",
    ));

    // Phase 3: fault clears; a hot reload swaps a new generation in
    // mid-load, and the half-open probe restores the CNN.
    fault_phase.store(0, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.json");
    cnn.save(model_path.to_string_lossy().as_ref())
        .expect("save soak model");
    server.reload_model(&model_path).expect("hot reload");
    phases.push(drive_phase(
        &server,
        &matrices,
        cfg.clients,
        cfg.requests_per_client,
        "recovery",
    ));
    // Trickle requests until the half-open probe has closed the
    // breaker (bounded: the backoff cap is 50 ms).
    let give_up = Instant::now() + Duration::from_secs(10);
    while server.report().breaker.state != BreakerState::Closed && Instant::now() < give_up {
        let m = Arc::new(matrices[0].clone());
        let _ = server.submit(m, None).and_then(|p| p.wait());
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = std::fs::remove_dir_all(&dir);

    // The tentpole comparison: same model, hot path off vs on.
    let hot_path = run_hot_path_comparison(&cnn, &dt, &matrices, cfg);

    let report = server.report();
    ServeBenchReport {
        phases,
        shed_rate: report.shed as f64 / report.submitted.max(1) as f64,
        breaker_to_open: report.breaker.to_open,
        breaker_to_half_open: report.breaker.to_half_open,
        breaker_to_closed: report.breaker.to_closed,
        reloads_ok: report.reloads_ok,
        accounting_exact: report.accounted() == report.submitted
            && report.path_accounted()
            && hot_path.accounting_exact,
        hot_path,
        server: report,
    }
}

/// Result of the instrumentation-overhead smoke (`serve-bench --quick`).
#[derive(Debug, Clone, Serialize)]
pub struct OverheadReport {
    /// Best baseline (latency metrics off) median, milliseconds.
    pub baseline_p50_ms: f64,
    /// Best instrumented (latency metrics on) median, milliseconds.
    pub instrumented_p50_ms: f64,
    /// instrumented_p50 / baseline_p50.
    pub p50_ratio: f64,
    /// Best baseline p99, milliseconds (context, not gated).
    pub baseline_p99_ms: f64,
    /// Best instrumented p99, milliseconds (context, not gated).
    pub instrumented_p99_ms: f64,
    /// Requests served per side across all rounds.
    pub served_per_side: u64,
    /// The CI gate: ratio above this fails the smoke.
    pub max_ratio: f64,
}

impl OverheadReport {
    /// Whether the instrumented server stayed within the overhead gate.
    pub fn within_budget(&self) -> bool {
        self.p50_ratio <= self.max_ratio
    }

    /// The report as a JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialisable report")
    }

    /// Human-readable one-liner.
    pub fn render(&self) -> String {
        format!(
            "overhead smoke: baseline p50 {:.3} ms, instrumented p50 {:.3} ms, ratio {:.3} (gate {:.2}) — {}\n",
            self.baseline_p50_ms,
            self.instrumented_p50_ms,
            self.p50_ratio,
            self.max_ratio,
            if self.within_budget() { "PASS" } else { "FAIL" }
        )
    }
}

/// Measures what the serve-path latency instrumentation costs.
///
/// Trains once, then runs alternating healthy steady-state soaks
/// against two servers built from the same model: one with
/// [`ServerConfig::latency_metrics`] off (baseline) and one with it on
/// (instrumented). Clients time both sides identically into *detached*
/// histograms (not the servers' registries), so the measurement
/// overhead is the same on both sides and the only difference is the
/// instrumentation under test. Interleaving rounds (b,i,b,i) and taking
/// the best p50 per side de-noises machine jitter the same way
/// min-of-N benchmarking does.
pub fn run_overhead_smoke(cfg: &ServeBenchConfig, max_ratio: f64) -> OverheadReport {
    let (cnn, dt, matrices) = trained_parts(cfg);
    let build_server = |latency_metrics: bool| -> SelectorServer<f32> {
        let service = SelectorService::new(Some(cnn.clone()), Some(dt.clone()))
            .expect("freshly trained predictors validate")
            .with_confidence_threshold(0.0);
        SelectorServer::new(
            service,
            ServerConfig {
                workers: cfg.workers,
                // Deep queue: shedding would add scheduling noise to
                // exactly the latencies being compared.
                queue_capacity: cfg.clients * cfg.requests_per_client,
                latency_metrics,
                ..ServerConfig::default()
            },
        )
    };
    let baseline = build_server(false);
    let instrumented = build_server(true);

    // min-of-3 per side: p50s quantize to the histogram's 6.25 %
    // buckets, so one noisy round can move a side by a full bucket;
    // three interleaved rounds make a two-bucket excursion (which would
    // breach the 10 % gate) vanishingly unlikely.
    const ROUNDS: usize = 3;
    let mut base_snaps: Vec<HistogramSnapshot> = Vec::new();
    let mut inst_snaps: Vec<HistogramSnapshot> = Vec::new();
    for _ in 0..ROUNDS {
        for (server, snaps) in [
            (&baseline, &mut base_snaps),
            (&instrumented, &mut inst_snaps),
        ] {
            let hist = LatencyHistogram::new();
            hammer(
                server,
                &matrices,
                cfg.clients,
                cfg.requests_per_client,
                &hist,
            );
            snaps.push(hist.snapshot());
        }
    }

    let best_p50 = |snaps: &[HistogramSnapshot]| {
        snaps
            .iter()
            .map(|s| s.p50())
            .min()
            .expect("at least one round")
    };
    let best_p99 = |snaps: &[HistogramSnapshot]| {
        snaps
            .iter()
            .map(|s| s.p99())
            .min()
            .expect("at least one round")
    };
    let base_p50 = best_p50(&base_snaps) as f64;
    let inst_p50 = best_p50(&inst_snaps) as f64;
    OverheadReport {
        baseline_p50_ms: base_p50 / 1e6,
        instrumented_p50_ms: inst_p50 / 1e6,
        p50_ratio: inst_p50 / base_p50.max(1.0),
        baseline_p99_ms: best_p99(&base_snaps) as f64 / 1e6,
        instrumented_p99_ms: best_p99(&inst_snaps) as f64 / 1e6,
        served_per_side: base_snaps.iter().map(|s| s.count).sum(),
        max_ratio,
    }
}

impl ServeBenchReport {
    /// The report as a JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialisable report")
    }

    /// Writes the JSON line to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Human-readable summary (stderr companion to the JSON).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            out.push_str(&format!(
                "{:>9}: served {:>5}, shed {:>4}, p50 {:>7.2} ms, p99 {:>7.2} ms, max {:>7.2} ms, {:>8.0}/s\n",
                p.phase, p.served, p.shed, p.p50_ms, p.p99_ms, p.max_ms, p.served_per_sec
            ));
        }
        let h = &self.hot_path;
        out.push_str(&format!(
            "hot path: {:.0}/s unbatched vs {:.0}/s batched ({:.2}x; shed {:.3} vs {:.3})\n",
            h.unbatched_served_per_sec,
            h.batched_served_per_sec,
            h.throughput_ratio,
            h.unbatched_shed_rate,
            h.batched_shed_rate,
        ));
        out.push_str(&format!(
            "low load: p50 {:.3} ms unbatched vs {:.3} ms batched ({:.2}x); cache hit rate {:.3}, hit p50 {:.1} us vs miss {:.1} us\n",
            h.low_load_unbatched_p50_ms,
            h.low_load_batched_p50_ms,
            h.low_load_p50_ratio,
            h.cache_hit_rate,
            h.cache_hit_p50_us,
            h.miss_p50_us,
        ));
        out.push_str(&format!(
            "shed rate {:.3}; breaker open/half-open/closed = {}/{}/{}; reloads {}; accounting {}\n",
            self.shed_rate,
            self.breaker_to_open,
            self.breaker_to_half_open,
            self.breaker_to_closed,
            self.reloads_ok,
            if self.accounting_exact { "exact" } else { "LOST REQUESTS" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_come_from_histogram_snapshot_quantiles() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4] {
            h.record(ms * 1_000_000);
        }
        let snap = h.snapshot();
        let s = PhaseStats::from_histogram("steady", &snap, 7, Duration::from_secs(2));
        assert_eq!(s.phase, "steady");
        assert_eq!(s.served, 4);
        assert_eq!(s.shed, 7);
        assert_eq!(s.max_ms, 4.0);
        assert_eq!(s.served_per_sec, 2.0);
        // Quantiles use the shared snapshot arithmetic: the bucket
        // holding the ⌈q·n⌉-th sample, within one bucket's width.
        assert!((s.p50_ms - 2.0).abs() / 2.0 < 0.07, "{}", s.p50_ms);
        assert!((s.p99_ms - 4.0).abs() / 4.0 < 0.07, "{}", s.p99_ms);
    }

    #[test]
    fn empty_histogram_yields_zero_stats() {
        let h = LatencyHistogram::new();
        let s = PhaseStats::from_histogram("fault", &h.snapshot(), 0, Duration::from_secs(1));
        assert_eq!((s.served, s.shed), (0, 0));
        assert_eq!((s.p50_ms, s.p99_ms, s.max_ms), (0.0, 0.0, 0.0));
        assert_eq!(s.served_per_sec, 0.0);
    }

    #[test]
    fn tiny_soak_trips_and_recovers() {
        let r = run_serve_bench(&ServeBenchConfig {
            matrices: 40,
            epochs: 1,
            clients: 4,
            requests_per_client: 12,
            workers: 2,
            queue_capacity: 8,
            seed: 7,
        });
        assert_eq!(r.phases.len(), 3);
        assert!(r.breaker_to_open >= 1, "fault phase must trip: {r:?}");
        assert!(r.breaker_to_closed >= 1, "recovery must close: {r:?}");
        assert_eq!(r.reloads_ok, 1);
        assert!(r.accounting_exact, "{r:?}");
        // The hot-path comparison ran and kept its books; the cache saw
        // hits on the soak's repetitive traffic. (The throughput ratio
        // itself is asserted by the CI gate on release soaks, not here
        // — a debug-build tiny fixture is too noisy to gate on.)
        let h = &r.hot_path;
        assert!(h.accounting_exact, "{h:?}");
        assert!(h.batched_served_per_sec > 0.0 && h.unbatched_served_per_sec > 0.0);
        assert!(h.cache_hit_rate > 0.0, "repeated traffic must hit: {h:?}");
        for p in &r.phases {
            assert!(p.served == 0 || p.served_per_sec > 0.0, "{p:?}");
        }
    }
}
