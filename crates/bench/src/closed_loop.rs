//! `bench_loop` — closed-loop soak for the online-learning pipeline.
//!
//! One run exercises the whole feedback story end to end, against a
//! deterministic environment change (the sampler's [`ModelTimer`] cost
//! vector is rotated mid-run, so the measured-best labels shift under a
//! trained selector exactly once, on cue):
//!
//! 1. **steady** — a trained selector serves; the sampler journals
//!    ground truth and the drift window stays healthy;
//! 2. **drift** — the timer rotates (simulated platform change); the
//!    rolling accuracy collapses and the drift detector trips;
//! 3. **evolve** — the journal's post-change records fine-tune a
//!    candidate; shadow evaluation on the held-out tail must pass it,
//!    and must *reject* a poisoned candidate trained on shifted labels;
//! 4. **promote** — the candidate hot-reloads behind a
//!    [`PromotionGuard`]; accuracy recovers above the trip threshold;
//! 5. **rollback** — the poisoned candidate is force-promoted; the
//!    guard watches fresh drift evidence and rolls back to the good
//!    generation, after which accuracy recovers again;
//! 6. **overhead** — a tapped server is compared against an identical
//!    untapped one under a sequential client; the sampling tap must
//!    stay within the serve overhead budget (p50 ratio ≤ 1.10, same
//!    bar the instrumentation smoke uses).
//!
//! Every stage lands in [`ClosedLoopReport`]; [`ClosedLoopReport::gates_passed`]
//! is the CI verdict.

use dnnspmv_core::{
    CacheConfig, FormatSelector, SelectorConfig, SelectorServer, SelectorService, ServerConfig,
};
use dnnspmv_feedback::{
    evolve, replay, usable_samples, DriftConfig, DriftDetector, EvolveConfig, FeedbackSampler,
    GuardVerdict, JournalConfig, JournalWriter, ModelTimer, PromotionConfig, PromotionGuard,
    SamplerConfig, ShadowReport,
};
use dnnspmv_gen::{Dataset, DatasetSpec};
use dnnspmv_nn::{Migration, TrainConfig};
use dnnspmv_obs::LatencyHistogram;
use dnnspmv_platform::{label_dataset, PlatformModel};
use dnnspmv_sparse::CooMatrix;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Closed-loop soak parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Matrices in the synthetic pool (also the training set).
    pub matrices: usize,
    /// Epochs for the incumbent's initial training.
    pub train_epochs: usize,
    /// Epochs for the journal fine-tune.
    pub evolve_epochs: usize,
    /// Sequential passes over the pool per serve phase.
    pub rounds_per_phase: usize,
    /// Sample every Nth served answer.
    pub sample_every: u64,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// Shadow gate margin (candidate must beat incumbent by this).
    pub shadow_margin: f64,
    /// Holdout fraction for shadow scoring.
    pub holdout_frac: f64,
    /// Promotion-guard tuning.
    pub guard: PromotionConfig,
    /// Overhead budget: tapped/untapped low-load p50 ratio.
    pub max_overhead_ratio: f64,
    /// Skip the wall-clock overhead probe (debug-mode tests: the
    /// functional gates are deterministic, timing under a debug build
    /// is not).
    pub skip_overhead: bool,
    /// Dataset / training seed.
    pub seed: u64,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self {
            matrices: 120,
            train_epochs: 4,
            evolve_epochs: 24,
            rounds_per_phase: 2,
            sample_every: 2,
            drift: DriftConfig {
                window: 96,
                min_samples: 24,
                threshold: 0.7,
            },
            shadow_margin: 0.05,
            holdout_frac: 0.25,
            guard: PromotionConfig {
                margin: 0.1,
                min_samples: 16,
            },
            max_overhead_ratio: 1.10,
            skip_overhead: false,
            seed: 41,
        }
    }
}

impl ClosedLoopConfig {
    /// CI-scale run: same gates, smaller fixture.
    pub fn quick() -> Self {
        Self {
            matrices: 80,
            train_epochs: 3,
            evolve_epochs: 18,
            ..Self::default()
        }
    }
}

/// Machine-readable soak result (`BENCH_loop.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ClosedLoopReport {
    /// Rolling accuracy at the end of the steady phase.
    pub steady_accuracy: f64,
    /// Rolling accuracy after the environment change.
    pub drifted_accuracy: f64,
    /// The drift detector latched a trip during the drift phase.
    pub drift_tripped: bool,
    /// Records recovered from the journal before evolving.
    pub journal_records: usize,
    /// Corrupt records the replay had to skip (expected 0 here).
    pub journal_corrupt: usize,
    /// Post-change records the candidate was fine-tuned from.
    pub evolve_records: usize,
    /// Shadow evaluation of the honest candidate.
    pub shadow: ShadowReport,
    /// The honest candidate passed the shadow gate.
    pub promoted: bool,
    /// Poisoned candidate's holdout accuracy.
    pub poisoned_accuracy: f64,
    /// The shadow gate rejected the poisoned candidate.
    pub poisoned_rejected: bool,
    /// Rolling accuracy after promoting the honest candidate.
    pub recovered_accuracy: f64,
    /// The trip threshold recovery is judged against.
    pub drift_threshold: f64,
    /// Recovery cleared the drift threshold.
    pub recovered: bool,
    /// The guard rolled the forced bad promotion back.
    pub rollback: bool,
    /// Baseline the guard judged the bad promotion against.
    pub rollback_baseline: f64,
    /// Accuracy that forced the rollback.
    pub rollback_current: f64,
    /// Rolling accuracy after the rollback settled.
    pub post_rollback_accuracy: f64,
    /// `feedback_rollback_total` at the end of the run.
    pub rollback_total: u64,
    /// Sampled / shed counts over the whole run.
    pub sampled_total: u64,
    /// Samples shed by the bounded queue (expected 0 at this load).
    pub shed_total: u64,
    /// Untapped sequential p50, microseconds (0 when skipped).
    pub overhead_plain_p50_us: f64,
    /// Tapped sequential p50, microseconds (0 when skipped).
    pub overhead_tapped_p50_us: f64,
    /// tapped / untapped p50 (1.0 when skipped).
    pub overhead_ratio: f64,
    /// The ratio stayed within budget (vacuously true when skipped).
    pub overhead_ok: bool,
    /// Whole-run wall clock, seconds.
    pub elapsed_s: f64,
}

impl ClosedLoopReport {
    /// All CI gates in one verdict.
    pub fn gates_passed(&self) -> bool {
        self.drift_tripped
            && self.promoted
            && self.poisoned_rejected
            && self.recovered
            && self.rollback
            && self.overhead_ok
            && self.journal_corrupt == 0
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let gate = |ok: bool| if ok { "ok" } else { "FAILED" };
        format!(
            "closed loop ({:.1}s):\n\
             \x20 steady accuracy        {:.3}\n\
             \x20 drifted accuracy       {:.3}  trip {}\n\
             \x20 journal                {} records ({} corrupt), {} used for evolve\n\
             \x20 shadow gate            incumbent {:.3} vs candidate {:.3} (margin {:.2}) {}\n\
             \x20 poisoned candidate     {:.3} rejected {}\n\
             \x20 recovered accuracy     {:.3} (threshold {:.2}) {}\n\
             \x20 rollback               baseline {:.3} -> {:.3} rolled back {}\n\
             \x20 post-rollback accuracy {:.3}\n\
             \x20 sampler                {} sampled, {} shed\n\
             \x20 tap overhead           p50 {:.1}us vs {:.1}us ratio {:.3} {}\n",
            self.elapsed_s,
            self.steady_accuracy,
            self.drifted_accuracy,
            gate(self.drift_tripped),
            self.journal_records,
            self.journal_corrupt,
            self.evolve_records,
            self.shadow.incumbent_accuracy,
            self.shadow.candidate_accuracy,
            self.shadow.margin,
            gate(self.promoted),
            self.poisoned_accuracy,
            gate(self.poisoned_rejected),
            self.recovered_accuracy,
            self.drift_threshold,
            gate(self.recovered),
            self.rollback_baseline,
            self.rollback_current,
            gate(self.rollback),
            self.post_rollback_accuracy,
            self.sampled_total,
            self.shed_total,
            self.overhead_tapped_p50_us,
            self.overhead_plain_p50_us,
            self.overhead_ratio,
            gate(self.overhead_ok),
        )
    }

    /// Serializes the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Writes the report to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// One sequential pass-pool serve phase (deterministic sample order).
fn serve_phase(server: &SelectorServer<f32>, matrices: &[CooMatrix<f32>], rounds: usize) {
    for _ in 0..rounds {
        for m in matrices {
            server.select(m).expect("closed-loop serve");
        }
    }
}

fn counter(server: &SelectorServer<f32>, name: &str) -> u64 {
    server.metrics_snapshot().counter(name, &[]).unwrap_or(0)
}

/// Builds a cache-enabled server over `model` alone (no tree rung, no
/// confidence gate): every answer is the CNN's, so drift accuracy
/// measures exactly the model under test.
fn build_server(model: &FormatSelector) -> SelectorServer<f32> {
    let service = SelectorService::new(Some(model.clone()), None)
        .expect("trained selector validates")
        .with_confidence_threshold(0.0);
    SelectorServer::new(
        service,
        ServerConfig {
            workers: 2,
            queue_capacity: 512,
            cache: CacheConfig::enabled(2048),
            ..ServerConfig::default()
        },
    )
}

fn attach_sampler(
    server: &SelectorServer<f32>,
    sel_cfg: &SelectorConfig,
    journal_dir: &Path,
    drift: &Arc<DriftDetector>,
    timer: Arc<dyn dnnspmv_feedback::SpmvTimer<f32>>,
    sample_every: u64,
) -> FeedbackSampler<f32> {
    let sampler = FeedbackSampler::new(
        SamplerConfig {
            sample_every,
            queue_capacity: 4096,
            repr: sel_cfg.repr,
            repr_config: sel_cfg.repr_config,
        },
        JournalWriter::open(journal_dir, JournalConfig::default()).expect("open journal"),
        Arc::clone(drift),
        timer,
        server.registry(),
    );
    assert!(server.set_serve_tap(sampler.tap()), "tap attaches once");
    sampler
}

/// Sequential p50 comparison: an identical model served with and
/// without the sampling tap. Best-of-3 per side so one scheduler
/// hiccup cannot fail the gate; the first (untimed) pass warms the
/// decision caches so both sides measure the steady hot path.
fn overhead_probe(
    model: &FormatSelector,
    matrices: &[CooMatrix<f32>],
    intel: &PlatformModel,
    dir: &Path,
) -> (f64, f64) {
    let plain = build_server(model);
    let tapped = build_server(model);
    let drift = Arc::new(DriftDetector::new(
        DriftConfig::default(),
        tapped.registry(),
    ));
    let _sampler = attach_sampler(
        &tapped,
        &model.config,
        &dir.join("overhead-journal"),
        &drift,
        Arc::new(ModelTimer::new(intel.clone())),
        8,
    );
    let side = |server: &SelectorServer<f32>| -> f64 {
        serve_phase(server, matrices, 1); // warm the cache
        let h = LatencyHistogram::new();
        for m in matrices {
            let t0 = Instant::now();
            server.select(m).expect("probe serve");
            h.record(t0.elapsed().as_nanos() as u64);
        }
        h.snapshot().p50() as f64 / 1e3
    };
    let mut plain_p50 = f64::MAX;
    let mut tapped_p50 = f64::MAX;
    for _ in 0..3 {
        plain_p50 = plain_p50.min(side(&plain));
        tapped_p50 = tapped_p50.min(side(&tapped));
    }
    (plain_p50, tapped_p50)
}

/// Runs the full closed loop and returns the report.
pub fn run_closed_loop(cfg: &ClosedLoopConfig) -> ClosedLoopReport {
    let t_start = Instant::now();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dnnspmv-loop-{}-{}", std::process::id(), cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("loop temp dir");

    // Fixture: a selector trained on cost-model labels — exactly what
    // the unrotated ModelTimer will measure, so the steady phase is
    // honest agreement, not luck.
    let data = Dataset::generate(&DatasetSpec {
        n_base: (cfg.matrices * 8) / 10,
        n_augmented: cfg.matrices - (cfg.matrices * 8) / 10,
        dim_min: 48,
        dim_max: 128,
        seed: cfg.seed,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let sel_cfg = crate::ExpConfig::quick().selector_config(dnnspmv_repr::ReprKind::Histogram);
    let sel_cfg = SelectorConfig {
        train: TrainConfig {
            epochs: cfg.train_epochs,
            ..sel_cfg.train
        },
        ..sel_cfg
    };
    let (incumbent, _) = FormatSelector::train_with_labels(
        &data.matrices,
        &labels,
        intel.formats().to_vec(),
        &sel_cfg,
    );
    let incumbent_path = dir.join("incumbent.json");
    incumbent
        .save(incumbent_path.to_string_lossy().as_ref())
        .expect("save incumbent");

    let server = build_server(&incumbent);
    let drift = Arc::new(DriftDetector::new(cfg.drift, server.registry()));
    let timer = ModelTimer::new(intel.clone());
    let journal_dir = dir.join("journal");
    let sampler = attach_sampler(
        &server,
        &incumbent.config,
        &journal_dir,
        &drift,
        Arc::new(timer.clone()),
        cfg.sample_every,
    );

    // Phase 1: steady agreement.
    serve_phase(&server, &data.matrices, cfg.rounds_per_phase);
    sampler.flush();
    let steady_accuracy = drift.accuracy();
    let steady_appended = counter(&server, "feedback_appended_total");

    // Phase 2: the environment changes under the selector.
    sampler.set_timer(Arc::new(timer.rotated(1)));
    serve_phase(&server, &data.matrices, cfg.rounds_per_phase);
    sampler.flush();
    let drifted_accuracy = drift.accuracy();
    let drift_tripped = drift.tripped();

    // Phase 3: evolve from the journal's post-change records.
    sampler.sync().expect("journal sync");
    let (records, replay_report) = replay(&journal_dir).expect("journal replay");
    let recent: Vec<_> = records
        .iter()
        .filter(|r| r.seq >= steady_appended)
        .cloned()
        .collect();
    let evolve_cfg = EvolveConfig {
        strategy: Migration::ContinuousEvolvement,
        train: TrainConfig {
            epochs: cfg.evolve_epochs,
            ..sel_cfg.train.clone()
        },
        holdout_frac: cfg.holdout_frac,
        min_records: 16,
        margin: cfg.shadow_margin,
    };
    let (candidate, shadow, _train_report) =
        evolve(&incumbent, &recent, &evolve_cfg).expect("evolve");
    let promoted = shadow.promote;
    let candidate_path = dir.join("candidate.json");
    candidate
        .save(candidate_path.to_string_lossy().as_ref())
        .expect("save candidate");

    // A poisoned candidate: fine-tuned on labels shifted off the
    // measured truth, scored on the same held-out tail the honest
    // candidate faced. The gate must hold.
    let mut poison_samples = usable_samples(&incumbent, &recent);
    let holdout_n = ((poison_samples.len() as f64 * cfg.holdout_frac) as usize)
        .clamp(1, poison_samples.len() - 1);
    let holdout = poison_samples.split_off(poison_samples.len() - holdout_n);
    let k = incumbent.formats.len();
    for s in &mut poison_samples {
        s.label = (s.label + 1) % k;
    }
    let (poisoned, _) = incumbent.migrate(evolve_cfg.strategy, &poison_samples, &evolve_cfg.train);
    let poisoned_accuracy = poisoned.accuracy(&holdout);
    let poisoned_rejected = poisoned_accuracy < incumbent.accuracy(&holdout) + cfg.shadow_margin;
    let poisoned_path = dir.join("poisoned.json");
    poisoned
        .save(poisoned_path.to_string_lossy().as_ref())
        .expect("save poisoned");

    // Phase 4: guarded promotion of the honest candidate; accuracy
    // must recover above the trip threshold on fresh evidence.
    let (mut guard, _) =
        PromotionGuard::promote(&server, &drift, &candidate_path, &incumbent_path, cfg.guard)
            .expect("promote candidate");
    serve_phase(&server, &data.matrices, cfg.rounds_per_phase);
    sampler.flush();
    let recovered_accuracy = drift.accuracy();
    let recovered = recovered_accuracy >= cfg.drift.threshold;
    let healthy = guard.check(&server, &drift).expect("guard check");
    assert!(
        matches!(healthy, GuardVerdict::Healthy | GuardVerdict::Watching),
        "a recovered promotion must not roll back"
    );

    // Phase 5: force-promote the poisoned candidate; the guard must
    // roll back to the good generation on fresh drift evidence.
    let (mut bad_guard, _) =
        PromotionGuard::promote(&server, &drift, &poisoned_path, &candidate_path, cfg.guard)
            .expect("promote poisoned");
    serve_phase(&server, &data.matrices, cfg.rounds_per_phase);
    sampler.flush();
    let verdict = bad_guard.check(&server, &drift).expect("bad guard check");
    let (rollback, rollback_baseline, rollback_current) = match verdict {
        GuardVerdict::RolledBack { baseline, current } => (true, baseline, current),
        _ => (false, bad_guard.baseline(), drift.accuracy()),
    };
    // After rollback the good candidate serves again.
    serve_phase(&server, &data.matrices, cfg.rounds_per_phase);
    sampler.flush();
    let post_rollback_accuracy = drift.accuracy();

    let sampled_total = counter(&server, "feedback_sampled_total");
    let shed_total = counter(&server, "feedback_shed_total");
    let rollback_total = counter(&server, "feedback_rollback_total");
    drop(sampler);
    drop(server);

    // Phase 6: what the tap costs an untapped-identical server.
    let (overhead_plain_p50_us, overhead_tapped_p50_us, overhead_ratio) = if cfg.skip_overhead {
        (0.0, 0.0, 1.0)
    } else {
        let (plain, tapped) = overhead_probe(&incumbent, &data.matrices, &intel, &dir);
        (plain, tapped, tapped / plain.max(1e-9))
    };
    let overhead_ok = overhead_ratio <= cfg.max_overhead_ratio;

    let _ = std::fs::remove_dir_all(&dir);
    ClosedLoopReport {
        steady_accuracy,
        drifted_accuracy,
        drift_tripped,
        journal_records: replay_report.records,
        journal_corrupt: replay_report.corrupt_records,
        evolve_records: recent.len(),
        shadow,
        promoted,
        poisoned_accuracy,
        poisoned_rejected,
        recovered_accuracy,
        drift_threshold: cfg.drift.threshold,
        recovered,
        rollback,
        rollback_baseline,
        rollback_current,
        post_rollback_accuracy,
        rollback_total,
        sampled_total,
        shed_total,
        overhead_plain_p50_us,
        overhead_tapped_p50_us,
        overhead_ratio,
        overhead_ok,
        elapsed_s: t_start.elapsed().as_secs_f64(),
    }
}
