//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Section 7).
//!
//! Each experiment is a pure function from an [`ExpConfig`] to a
//! serialisable result struct with a `render()` method that prints the
//! same rows/series the paper reports. The `repro` binary dispatches
//! subcommands to them:
//!
//! | command    | paper artefact | result type |
//! |------------|----------------|-------------|
//! | `table1`   | Table 1        | platform parameter dump |
//! | `table2`   | Table 2        | [`experiments::table::TableResult`] (CPU) |
//! | `table3`   | Table 3        | [`experiments::table::TableResult`] (GPU) |
//! | `fig8`     | Figure 8 + §7.3| [`experiments::speedup::SpeedupResult`] |
//! | `fig9`     | Figure 9       | [`experiments::transfer::TransferResult`] |
//! | `fig10`    | Figure 10      | structure printout |
//! | `fig11`    | Figure 11      | [`experiments::loss::LossCurves`] |
//! | `overhead` | §7.6           | [`experiments::overhead::OverheadResult`] |
//! | `labels`   | §7.1 sanity    | [`experiments::labels::LabelStats`] |
//! | `sweep`    | §4 size remark | [`experiments::sweep::SweepResult`] |

//! The `bench_serve` binary (also `dnnspmv serve-bench`) is the soak
//! driver for the admission-controlled server: [`serve`].

pub mod chaos_soak;
pub mod closed_loop;
pub mod experiments;
pub mod serve;
pub mod spmv_sweep;

use dnnspmv_core::SelectorConfig;
use dnnspmv_gen::DatasetSpec;
use dnnspmv_nn::{CnnConfig, OptimizerKind, TrainConfig};
use dnnspmv_repr::{ReprConfig, ReprKind};
use serde::{Deserialize, Serialize};

/// Shared experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpConfig {
    /// The synthetic dataset stand-in for the 9200-matrix collection.
    pub dataset: DatasetSpec,
    /// Cross-validation folds (the paper uses 5).
    pub folds: usize,
    /// Representation sizes.
    pub repr_config: ReprConfig,
    /// CNN structure.
    pub cnn: CnnConfig,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Relative measurement noise applied during label collection
    /// (models run-to-run variance of real timings; 0 disables).
    pub label_noise: f64,
    /// Master seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Laptop-scale configuration: every experiment finishes in
    /// seconds-to-a-minute. Used by `--quick` and the bench targets.
    pub fn quick() -> Self {
        Self {
            dataset: DatasetSpec {
                n_base: 280,
                n_augmented: 120,
                dim_min: 48,
                dim_max: 256,
                ..DatasetSpec::default()
            },
            folds: 2,
            repr_config: ReprConfig {
                image_size: 32,
                hist_rows: 32,
                hist_bins: 32,
            },
            cnn: CnnConfig {
                conv_channels: [8, 16, 32],
                hidden: 48,
                seed: 0xC44,
            },
            epochs: 18,
            batch_size: 32,
            lr: 2e-3,
            label_noise: 0.05,
            seed: 0xD44A_5EED,
        }
    }

    /// Full configuration: a few thousand matrices, 64x64 inputs,
    /// 5-fold CV. `repro all` at this setting takes tens of minutes on
    /// a multi-core machine and several hours on a single core; the
    /// recorded EXPERIMENTS.md run used `--matrices 1200 --epochs 18
    /// --folds 2` as a middle ground.
    pub fn standard() -> Self {
        Self {
            dataset: DatasetSpec::default(),
            folds: 5,
            repr_config: ReprConfig::default(),
            cnn: CnnConfig::default(),
            epochs: 14,
            batch_size: 32,
            lr: 1.5e-3,
            label_noise: 0.05,
            seed: 0xD44A_5EED,
        }
    }

    /// The selector configuration for a representation kind.
    pub fn selector_config(&self, repr: ReprKind) -> SelectorConfig {
        SelectorConfig {
            repr,
            repr_config: self.repr_config,
            merging: dnnspmv_nn::Merging::Late,
            cnn: self.cnn.clone(),
            train: self.train_config(),
        }
    }

    /// The training configuration.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            lr: self.lr,
            optimizer: OptimizerKind::adam(),
            seed: self.seed ^ 0x7EA1,
            ..TrainConfig::default()
        }
    }
}

/// Formats a recall/precision cell like the paper's tables ("-" when
/// the class never occurs / is never predicted).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_standard() {
        let q = ExpConfig::quick();
        let s = ExpConfig::standard();
        assert!(q.dataset.len() < s.dataset.len());
        assert!(q.folds <= s.folds);
        assert!(q.repr_config.image_size <= s.repr_config.image_size);
    }

    #[test]
    fn selector_config_uses_requested_repr() {
        let c = ExpConfig::quick().selector_config(ReprKind::Binary);
        assert_eq!(c.repr, ReprKind::Binary);
        assert_eq!(c.repr_config.image_size, 32);
    }

    #[test]
    fn fmt_opt_renders_dash_for_none() {
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(0.925)), "0.93");
    }
}
