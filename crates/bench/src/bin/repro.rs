//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <command> [--quick | --standard] [--folds N] [--epochs N]
//!                 [--matrices N] [--json FILE]
//!
//! commands:
//!   table1    platform parameters (Table 1)
//!   table2    CPU prediction quality (Table 2)
//!   table3    GPU prediction quality (Table 3)
//!   fig8      SpMV speedup distribution (Figure 8, Section 7.3)
//!   fig9      transfer-learning curves (Figure 9)
//!   fig10     CNN structure (Figure 10)
//!   fig11     loss convergence late vs early merging (Figure 11)
//!   overhead  prediction overhead (Section 7.6)
//!   labels    label-distribution sanity check (Section 7.1)
//!   sweep     representation-size ablation (Section 4)
//!   all       everything above, in order
//! ```
//!
//! `--quick` (default) finishes in a few minutes; `--standard` uses the
//! full dataset and 5-fold CV and takes tens of minutes.

use dnnspmv_bench::experiments::{
    labels, loss, overhead, speedup, structure, sweep, table, transfer,
};
use dnnspmv_bench::ExpConfig;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <command> [--quick|--standard] [--folds N] [--epochs N] [--matrices N] [--json FILE]");
        eprintln!("commands: table1 table2 table3 fig8 fig9 fig10 fig11 overhead labels sweep all");
        std::process::exit(2);
    }
    let command = args[0].clone();
    let mut cfg = ExpConfig::quick();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--standard" => cfg = ExpConfig::standard(),
            "--folds" => {
                i += 1;
                cfg.folds = parse(&args, i, "--folds");
            }
            "--epochs" => {
                i += 1;
                cfg.epochs = parse(&args, i, "--epochs");
            }
            "--matrices" => {
                i += 1;
                let n: usize = parse(&args, i, "--matrices");
                cfg.dataset.n_base = (n * 3) / 10;
                cfg.dataset.n_augmented = n - cfg.dataset.n_base;
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--json needs a path"))
                        .clone(),
                );
            }
            other => {
                die(&format!("unknown flag '{other}'"));
            }
        }
        i += 1;
    }

    let mut json_blobs: Vec<(String, String)> = Vec::new();
    let commands: Vec<&str> = if command == "all" {
        vec![
            "table1", "labels", "table2", "table3", "fig8", "fig9", "fig10", "fig11", "overhead",
            "sweep",
        ]
    } else {
        vec![command.as_str()]
    };

    for cmd in commands {
        let t0 = std::time::Instant::now();
        let (text, json) = run_one(cmd, &cfg);
        println!("{text}");
        eprintln!("[{cmd} finished in {:.1}s]", t0.elapsed().as_secs_f64());
        if let Some(j) = json {
            json_blobs.push((cmd.to_string(), j));
        }
    }

    if let Some(path) = json_path {
        let combined = format!(
            "{{{}}}",
            json_blobs
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        let mut f = std::fs::File::create(&path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        f.write_all(combined.as_bytes())
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("[wrote {path}]");
    }
}

fn run_one(cmd: &str, cfg: &ExpConfig) -> (String, Option<String>) {
    match cmd {
        "table1" => (structure::table1(), None),
        "table2" => {
            let r = table::table2(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "table3" => {
            let r = table::table3(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "fig8" => {
            let r = speedup::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "fig9" => {
            let r = transfer::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "fig10" => (structure::fig10(cfg), None),
        "fig11" => {
            let r = loss::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "overhead" => {
            let r = overhead::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "labels" => {
            let r = labels::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        "sweep" => {
            let r = sweep::run(cfg);
            let j = serde_json::to_string(&r).expect("serialisable");
            (r.render(), Some(j))
        }
        other => die(&format!("unknown command '{other}'")),
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a numeric argument")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
