//! `bench_spmv` — kernel-throughput sweep across the widened format
//! set; writes `BENCH_spmv.json`.
//!
//! ```text
//! bench_spmv [--json FILE] [--quick] [--dim N] [--trials N]
//!            [--min-merge-ratio X] [--min-sell-ratio X]
//! ```
//!
//! See [`dnnspmv_bench::spmv_sweep`] for the wall-clock-vs-makespan
//! methodology. `--quick` is the CI smoke: small matrices, few trials,
//! and the run exits nonzero unless merge-path CSR's simulated
//! makespan at 4 workers is at least `--min-merge-ratio` (default 1.0)
//! times row-chunked CSR's on the power-law case. `--min-sell-ratio`
//! adds the same kind of gate on the ELL/SELL single-thread wall-clock
//! ratio for the varied-band case.

use dnnspmv_bench::spmv_sweep::{run_spmv_bench, SpmvBenchConfig};
use std::io::Write;

fn die(msg: &str) -> ! {
    eprintln!("bench_spmv: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_spmv.json");
    let mut cfg = SpmvBenchConfig::full();
    let mut min_merge_ratio: Option<f64> = None;
    let mut min_sell_ratio: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        let float = |args: &[String], i: usize, flag: &str| -> f64 {
            args.get(i)
                .unwrap_or_else(|| die(&format!("{flag} needs a number")))
                .parse()
                .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
        };
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args
                    .get(i)
                    .unwrap_or_else(|| die("--json needs a path"))
                    .clone();
            }
            "--quick" => {
                cfg = SpmvBenchConfig::quick();
                min_merge_ratio.get_or_insert(1.0);
            }
            "--dim" => {
                i += 1;
                cfg.dim = float(&args, i, "--dim") as usize;
            }
            "--trials" => {
                i += 1;
                cfg.trials = (float(&args, i, "--trials") as usize).max(1);
            }
            "--min-merge-ratio" => {
                i += 1;
                min_merge_ratio = Some(float(&args, i, "--min-merge-ratio"));
            }
            "--min-sell-ratio" => {
                i += 1;
                min_sell_ratio = Some(float(&args, i, "--min-sell-ratio"));
            }
            other => {
                eprintln!(
                    "usage: bench_spmv [--json FILE] [--quick] [--dim N] [--trials N] \
                     [--min-merge-ratio X] [--min-sell-ratio X]"
                );
                die(&format!("unknown flag '{other}'"));
            }
        }
        i += 1;
    }

    let report = run_spmv_bench(&cfg);
    eprint!("{}", report.render());
    let json = report.to_json();
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&json_path)?;
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")
    };
    if let Err(e) = write() {
        eprintln!("bench_spmv: writing {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");

    let mut failed = false;
    if let Some(min) = min_merge_ratio {
        let got = report.gates.mcsr_over_csr_makespan_at4;
        if got < min {
            eprintln!("merge gate FAILED: makespan ratio {got:.2} < {min:.2} at 4 workers");
            failed = true;
        } else {
            eprintln!("merge gate passed: makespan ratio {got:.2} >= {min:.2}");
        }
    }
    if let Some(min) = min_sell_ratio {
        let got = report.gates.sell_over_ell_wall;
        if got < min {
            eprintln!("sell gate FAILED: wall ratio {got:.2} < {min:.2}");
            failed = true;
        } else {
            eprintln!("sell gate passed: wall ratio {got:.2} >= {min:.2}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
