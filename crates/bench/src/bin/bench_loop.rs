//! Closed-loop soak runner (see [`dnnspmv_bench::closed_loop`]).
//!
//! ```text
//! bench_loop [--quick] [--json FILE] [--matrices N] [--rounds N]
//!            [--evolve-epochs N] [--max-ratio X] [--skip-overhead]
//! ```
//!
//! Exits nonzero unless every closed-loop gate holds: the drift
//! detector trips on the simulated environment change, the shadow gate
//! promotes the honest candidate and rejects the poisoned one,
//! post-promotion accuracy recovers, the forced bad promotion rolls
//! back, and the sampling tap stays within the p50 overhead budget.

use dnnspmv_bench::closed_loop::{run_closed_loop, ClosedLoopConfig};

fn need(args: &[String], i: usize, flag: &str) -> String {
    args.get(i)
        .unwrap_or_else(|| die(&format!("{flag} needs an argument")))
        .clone()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ClosedLoopConfig::default();
    let mut json_path = String::from("BENCH_loop.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ClosedLoopConfig::quick(),
            "--skip-overhead" => cfg.skip_overhead = true,
            "--json" => {
                i += 1;
                json_path = need(&args, i, "--json");
            }
            "--matrices" => {
                i += 1;
                cfg.matrices = need(&args, i, "--matrices")
                    .parse()
                    .unwrap_or_else(|_| die("--matrices needs a number"));
            }
            "--rounds" => {
                i += 1;
                cfg.rounds_per_phase = need(&args, i, "--rounds")
                    .parse()
                    .unwrap_or_else(|_| die("--rounds needs a number"));
            }
            "--evolve-epochs" => {
                i += 1;
                cfg.evolve_epochs = need(&args, i, "--evolve-epochs")
                    .parse()
                    .unwrap_or_else(|_| die("--evolve-epochs needs a number"));
            }
            "--max-ratio" => {
                i += 1;
                cfg.max_overhead_ratio = need(&args, i, "--max-ratio")
                    .parse()
                    .unwrap_or_else(|_| die("--max-ratio needs a number"));
            }
            other => die(&format!("unknown bench_loop flag '{other}'")),
        }
        i += 1;
    }
    let report = run_closed_loop(&cfg);
    eprint!("{}", report.render());
    println!("{}", report.to_json());
    report
        .write_json(&json_path)
        .unwrap_or_else(|e| die(&format!("writing {json_path}: {e}")));
    eprintln!("wrote {json_path}");
    if !report.gates_passed() {
        eprintln!("closed-loop gates FAILED");
        std::process::exit(1);
    }
    eprintln!("closed-loop gates passed");
}
