//! `bench_train` — measures the batched GEMM training path against the
//! per-sample reference and writes a machine-readable summary.
//!
//! ```text
//! bench_train [--json FILE] [--steps N] [--batch N] [--ckpt-dir DIR]
//!             [--min-speedup-4t RATIO]
//! ```
//!
//! Runs `N` optimisation steps (default 30) at the given batch size
//! (default 32) through both [`dnnspmv_nn::train_step`] and
//! [`dnnspmv_nn::train_step_reference`] on identically initialised
//! networks, then trains both paths end-to-end under the same seed to
//! bound their loss-history divergence. A final section measures the
//! cost of per-epoch checkpointing and verifies kill-and-resume
//! reproduces the uninterrupted loss history. A thread sweep times the
//! batched step at 1, 2, 4 and all host threads through the GEMM
//! threading policy; `--min-speedup-4t` turns the 4-thread ratio into
//! a hard gate (enforced only on hosts with ≥ 4 threads — smaller
//! runners record `gate_enforced: false` instead of a vacuous pass).
//! Results go to stdout and to `BENCH_train.json` (or `--json FILE`).

use dnnspmv_nn::{
    build_cnn, checkpoint_path, train, train_reference, train_step, train_step_reference,
    train_with_hooks, with_gemm_threading, BatchTrainState, CnnConfig, GemmThreading, Merging,
    Optimizer, OptimizerKind, Sample, Tensor, TrainConfig, TrainHooks,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

#[derive(Serialize)]
struct PathStats {
    steps: usize,
    batch: usize,
    samples_per_sec: f64,
    mean_step_ms: f64,
    min_step_ms: f64,
    max_step_ms: f64,
}

#[derive(Serialize)]
struct CheckpointStats {
    epochs: usize,
    /// Wall time of the run with checkpointing disabled.
    plain_s: f64,
    /// Wall time of the same-seed run writing a checkpoint every epoch.
    checkpointed_s: f64,
    /// Extra wall time per checkpoint write.
    overhead_ms_per_epoch: f64,
    /// Overhead as a fraction of the plain run (can be negative under
    /// timer noise on fast runs).
    overhead_frac: f64,
    /// Largest |loss difference| between an uninterrupted run and a
    /// kill-at-half + resume run under the same seed (bound: 1e-4).
    resume_loss_max_abs_diff: f32,
}

#[derive(Serialize)]
struct ThreadSweepEntry {
    threads: usize,
    samples_per_sec: f64,
    mean_step_ms: f64,
    /// samples/sec over the 1-thread entry of the same sweep.
    speedup_vs_1t: f64,
}

#[derive(Serialize)]
struct ThreadSweep {
    /// Hardware threads the host offers (`available_parallelism`).
    host_threads: usize,
    /// Batched `train_step` timed at each GEMM thread count.
    entries: Vec<ThreadSweepEntry>,
    /// Speedup of the 4-thread entry over 1 thread — the CI gate's
    /// subject.
    speedup_at_4t: f64,
    /// Floor this run was asked to hold (`--min-speedup-4t`), if any.
    min_speedup_4t: Option<f64>,
    /// Whether the floor was actually enforced. Requires the flag AND
    /// ≥ 4 host threads: a smaller runner cannot exhibit 4-way GEMM
    /// speedup, and recording `false` keeps the artefact honest
    /// instead of green-washing an unenforceable gate.
    gate_enforced: bool,
}

#[derive(Serialize)]
struct Report {
    /// Per-sample loop with a single preallocated gradient accumulator
    /// — the "before" this PR measures against.
    reference: PathStats,
    /// Batched path: one GEMM per layer forward and backward, fused
    /// batch loss, one optimiser update.
    batched: PathStats,
    /// batched samples/sec over reference samples/sec.
    speedup: f64,
    /// Batched-path scaling over GEMM thread counts (PR 10).
    thread_sweep: ThreadSweep,
    /// Largest per-step |loss difference| between the two paths over a
    /// full same-seed training run (acceptance bound: 1e-3).
    loss_max_abs_diff: f32,
    /// Cost and exactness of per-epoch checkpointing (PR 3).
    checkpoint: CheckpointStats,
}

fn sample_set(n: usize, channels: usize, hw: usize, classes: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Sample {
            channels: (0..channels)
                .map(|_| {
                    Tensor::from_vec(
                        &[hw, hw],
                        (0..hw * hw).map(|_| rng.random::<f32>() - 0.5).collect(),
                    )
                })
                .collect(),
            label: i % classes,
        })
        .collect()
}

fn time_steps(steps: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let (mut total, mut min, mut max) = (0.0f64, f64::INFINITY, 0.0f64);
    for _ in 0..steps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
    }
    (total, min, max)
}

fn die(msg: &str) -> ! {
    eprintln!("bench_train: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_train.json");
    let mut steps = 30usize;
    let mut batch = 32usize;
    let mut keep_ckpt_dir: Option<String> = None;
    let mut min_speedup_4t: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args
                    .get(i)
                    .unwrap_or_else(|| die("--json needs a path"))
                    .clone();
            }
            "--steps" => {
                i += 1;
                steps = args
                    .get(i)
                    .unwrap_or_else(|| die("--steps needs a number"))
                    .parse()
                    .unwrap_or_else(|_| die("--steps needs a number"));
            }
            "--batch" => {
                i += 1;
                batch = args
                    .get(i)
                    .unwrap_or_else(|| die("--batch needs a number"))
                    .parse()
                    .unwrap_or_else(|_| die("--batch needs a number"));
            }
            "--ckpt-dir" => {
                i += 1;
                keep_ckpt_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--ckpt-dir needs a path"))
                        .clone(),
                );
            }
            "--min-speedup-4t" => {
                i += 1;
                min_speedup_4t = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--min-speedup-4t needs a ratio"))
                        .parse()
                        .unwrap_or_else(|_| die("--min-speedup-4t needs a ratio")),
                );
            }
            other => {
                eprintln!(
                    "usage: bench_train [--json FILE] [--steps N] [--batch N] [--ckpt-dir DIR] \
                     [--min-speedup-4t RATIO]"
                );
                die(&format!("unknown flag '{other}'"));
            }
        }
        i += 1;
    }

    let classes = 4;
    let net0 = build_cnn(
        Merging::Late,
        2,
        (32, 32),
        classes,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 7,
        },
    );
    let samples = sample_set(batch, 2, 32, classes, 11);
    let idx: Vec<usize> = (0..batch).collect();

    // Reference path, one warm-up step before timing.
    let mut net = net0.clone();
    let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
    let mut accum = net.zero_grads();
    train_step_reference(&mut net, &samples, &idx, &mut opt, &mut accum);
    let (total, min, max) = time_steps(steps, || {
        train_step_reference(&mut net, &samples, &idx, &mut opt, &mut accum);
    });
    let reference = PathStats {
        steps,
        batch,
        samples_per_sec: (steps * batch) as f64 / total,
        mean_step_ms: 1e3 * total / steps as f64,
        min_step_ms: 1e3 * min,
        max_step_ms: 1e3 * max,
    };

    // Batched path, same warm-up protocol.
    let mut net = net0.clone();
    let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
    let mut state = BatchTrainState::new(&net);
    train_step(&mut net, &samples, &idx, &mut opt, &mut state);
    let (total, min, max) = time_steps(steps, || {
        train_step(&mut net, &samples, &idx, &mut opt, &mut state);
    });
    let batched = PathStats {
        steps,
        batch,
        samples_per_sec: (steps * batch) as f64 / total,
        mean_step_ms: 1e3 * total / steps as f64,
        min_step_ms: 1e3 * min,
        max_step_ms: 1e3 * max,
    };

    // Thread sweep: the batched step at 1, 2, 4 and all host threads.
    // Serial at t=1 (skips the pool entirely, like server workers);
    // Fixed(t) above — counts beyond the pool size still partition, so
    // the sweep is well-defined on any host.
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, host_threads];
    counts.sort_unstable();
    counts.dedup();
    let mut entries: Vec<ThreadSweepEntry> = Vec::new();
    for &t in &counts {
        let policy = if t == 1 {
            GemmThreading::Serial
        } else {
            GemmThreading::Fixed(t)
        };
        let mut net = net0.clone();
        let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
        let mut state = BatchTrainState::new(&net);
        let total = with_gemm_threading(policy, || {
            train_step(&mut net, &samples, &idx, &mut opt, &mut state);
            let (total, _, _) = time_steps(steps, || {
                train_step(&mut net, &samples, &idx, &mut opt, &mut state);
            });
            total
        });
        let base = entries.first().map_or(total, |e: &ThreadSweepEntry| {
            (steps * batch) as f64 / e.samples_per_sec
        });
        entries.push(ThreadSweepEntry {
            threads: t,
            samples_per_sec: (steps * batch) as f64 / total,
            mean_step_ms: 1e3 * total / steps as f64,
            speedup_vs_1t: base / total,
        });
    }
    let speedup_at_4t = entries
        .iter()
        .find(|e| e.threads == 4)
        .map(|e| e.speedup_vs_1t)
        .unwrap_or(1.0);
    let gate_enforced = min_speedup_4t.is_some() && host_threads >= 4;
    let thread_sweep = ThreadSweep {
        host_threads,
        entries,
        speedup_at_4t,
        min_speedup_4t,
        gate_enforced,
    };

    // Same-seed end-to-end agreement between the two paths.
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: batch.min(8),
        ..TrainConfig::default()
    };
    let train_set = sample_set(3 * cfg.batch_size + 2, 2, 32, classes, 13);
    let mut a = net0.clone();
    let mut b = net0.clone();
    let ra = train(&mut a, &train_set, &cfg);
    let rb = train_reference(&mut b, &train_set, &cfg);
    let loss_max_abs_diff = ra
        .loss_history
        .iter()
        .zip(&rb.loss_history)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);

    // Checkpointing cost + kill-and-resume exactness (same seed).
    let ckpt_epochs = 6usize;
    let ckpt_cfg = TrainConfig {
        epochs: ckpt_epochs,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    // --ckpt-dir keeps the checkpoints around for inspection / manual
    // resume experiments; the default is a throwaway temp directory.
    let ckpt_dir = match &keep_ckpt_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("bench_train_ckpt_{}", std::process::id())),
    };
    let ckpt_dir_s = ckpt_dir.to_string_lossy().into_owned();

    let mut plain_net = net0.clone();
    let t0 = Instant::now();
    let plain_report = train(&mut plain_net, &train_set, &ckpt_cfg);
    let plain_s = t0.elapsed().as_secs_f64();

    let mut ck_net = net0.clone();
    let t0 = Instant::now();
    let _ = train(
        &mut ck_net,
        &train_set,
        &TrainConfig {
            checkpoint_dir: Some(ckpt_dir_s.clone()),
            ..ckpt_cfg.clone()
        },
    );
    let checkpointed_s = t0.elapsed().as_secs_f64();

    // Kill at the halfway checkpoint, resume, and compare loss history
    // against the uninterrupted run.
    let mut killed = net0.clone();
    train_with_hooks(
        &mut killed,
        &train_set,
        &TrainConfig {
            checkpoint_dir: Some(ckpt_dir_s.clone()),
            ..ckpt_cfg.clone()
        },
        TrainHooks {
            abort_after_epoch: Some(ckpt_epochs / 2),
            ..TrainHooks::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("interrupted training run failed: {e}")));
    let mut resumed = net0.clone();
    let resumed_report = train_with_hooks(
        &mut resumed,
        &train_set,
        &TrainConfig {
            resume_from: Some(checkpoint_path(&ckpt_dir).to_string_lossy().into_owned()),
            ..ckpt_cfg.clone()
        },
        TrainHooks::default(),
    )
    .unwrap_or_else(|e| die(&format!("resumed training run failed: {e}")));
    let resume_loss_max_abs_diff = plain_report
        .loss_history
        .iter()
        .zip(&resumed_report.loss_history)
        .map(|(x, y)| (x - y).abs())
        .fold(
            if plain_report.loss_history.len() == resumed_report.loss_history.len() {
                0.0f32
            } else {
                f32::INFINITY
            },
            f32::max,
        );
    if keep_ckpt_dir.is_none() {
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    let checkpoint = CheckpointStats {
        epochs: ckpt_epochs,
        plain_s,
        checkpointed_s,
        overhead_ms_per_epoch: 1e3 * (checkpointed_s - plain_s) / ckpt_epochs as f64,
        overhead_frac: (checkpointed_s - plain_s) / plain_s,
        resume_loss_max_abs_diff,
    };

    let report = Report {
        speedup: batched.samples_per_sec / reference.samples_per_sec,
        thread_sweep,
        reference,
        batched,
        loss_max_abs_diff,
        checkpoint,
    };
    let json = serde_json::to_string(&report).expect("report structs serialise losslessly");
    println!("{json}");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&json_path)?;
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")
    };
    if let Err(e) = write() {
        eprintln!("bench_train: writing {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {json_path}: {:.1}x speedup at batch {batch} ({:.0} vs {:.0} samples/sec), max loss diff {:.2e}",
        report.speedup,
        report.batched.samples_per_sec,
        report.reference.samples_per_sec,
        report.loss_max_abs_diff
    );
    eprintln!(
        "checkpointing: {:+.2} ms/epoch ({:+.1}%) over {} epochs; kill-and-resume loss diff {:.2e}",
        report.checkpoint.overhead_ms_per_epoch,
        1e2 * report.checkpoint.overhead_frac,
        report.checkpoint.epochs,
        report.checkpoint.resume_loss_max_abs_diff
    );
    let sweep_line: Vec<String> = report
        .thread_sweep
        .entries
        .iter()
        .map(|e| format!("{}t={:.2}x", e.threads, e.speedup_vs_1t))
        .collect();
    eprintln!(
        "thread sweep ({} host threads): {}",
        report.thread_sweep.host_threads,
        sweep_line.join(" ")
    );
    if let Some(floor) = min_speedup_4t {
        if !report.thread_sweep.gate_enforced {
            eprintln!(
                "thread-sweep gate NOT enforced: host has {} threads (< 4); recorded honestly",
                report.thread_sweep.host_threads
            );
        } else if report.thread_sweep.speedup_at_4t < floor {
            eprintln!(
                "thread-sweep gate FAILED: {:.2}x at 4 threads < required {floor:.2}x",
                report.thread_sweep.speedup_at_4t
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "thread-sweep gate held: {:.2}x at 4 threads >= {floor:.2}x",
                report.thread_sweep.speedup_at_4t
            );
        }
    }
}
