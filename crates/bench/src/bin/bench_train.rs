//! `bench_train` — measures the batched GEMM training path against the
//! per-sample reference and writes a machine-readable summary.
//!
//! ```text
//! bench_train [--json FILE] [--steps N] [--batch N]
//! ```
//!
//! Runs `N` optimisation steps (default 30) at the given batch size
//! (default 32) through both [`dnnspmv_nn::train_step`] and
//! [`dnnspmv_nn::train_step_reference`] on identically initialised
//! networks, then trains both paths end-to-end under the same seed to
//! bound their loss-history divergence. Results go to stdout and to
//! `BENCH_train.json` (or `--json FILE`).

use dnnspmv_nn::{
    build_cnn, train, train_reference, train_step, train_step_reference, BatchTrainState,
    CnnConfig, Merging, Optimizer, OptimizerKind, Sample, Tensor, TrainConfig,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

#[derive(Serialize)]
struct PathStats {
    steps: usize,
    batch: usize,
    samples_per_sec: f64,
    mean_step_ms: f64,
    min_step_ms: f64,
    max_step_ms: f64,
}

#[derive(Serialize)]
struct Report {
    /// Per-sample loop with a single preallocated gradient accumulator
    /// — the "before" this PR measures against.
    reference: PathStats,
    /// Batched path: one GEMM per layer forward and backward, fused
    /// batch loss, one optimiser update.
    batched: PathStats,
    /// batched samples/sec over reference samples/sec.
    speedup: f64,
    /// Largest per-step |loss difference| between the two paths over a
    /// full same-seed training run (acceptance bound: 1e-3).
    loss_max_abs_diff: f32,
}

fn sample_set(n: usize, channels: usize, hw: usize, classes: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Sample {
            channels: (0..channels)
                .map(|_| {
                    Tensor::from_vec(
                        &[hw, hw],
                        (0..hw * hw).map(|_| rng.random::<f32>() - 0.5).collect(),
                    )
                })
                .collect(),
            label: i % classes,
        })
        .collect()
}

fn time_steps(steps: usize, mut f: impl FnMut()) -> (f64, f64, f64) {
    let (mut total, mut min, mut max) = (0.0f64, f64::INFINITY, 0.0f64);
    for _ in 0..steps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
    }
    (total, min, max)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_train.json");
    let mut steps = 30usize;
    let mut batch = 32usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            "--steps" => {
                i += 1;
                steps = args
                    .get(i)
                    .expect("--steps needs a number")
                    .parse()
                    .unwrap();
            }
            "--batch" => {
                i += 1;
                batch = args
                    .get(i)
                    .expect("--batch needs a number")
                    .parse()
                    .unwrap();
            }
            other => {
                eprintln!("usage: bench_train [--json FILE] [--steps N] [--batch N]");
                panic!("unknown flag '{other}'");
            }
        }
        i += 1;
    }

    let classes = 4;
    let net0 = build_cnn(
        Merging::Late,
        2,
        (32, 32),
        classes,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 7,
        },
    );
    let samples = sample_set(batch, 2, 32, classes, 11);
    let idx: Vec<usize> = (0..batch).collect();

    // Reference path, one warm-up step before timing.
    let mut net = net0.clone();
    let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
    let mut accum = net.zero_grads();
    train_step_reference(&mut net, &samples, &idx, &mut opt, &mut accum);
    let (total, min, max) = time_steps(steps, || {
        train_step_reference(&mut net, &samples, &idx, &mut opt, &mut accum);
    });
    let reference = PathStats {
        steps,
        batch,
        samples_per_sec: (steps * batch) as f64 / total,
        mean_step_ms: 1e3 * total / steps as f64,
        min_step_ms: 1e3 * min,
        max_step_ms: 1e3 * max,
    };

    // Batched path, same warm-up protocol.
    let mut net = net0.clone();
    let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
    let mut state = BatchTrainState::new(&net);
    train_step(&mut net, &samples, &idx, &mut opt, &mut state);
    let (total, min, max) = time_steps(steps, || {
        train_step(&mut net, &samples, &idx, &mut opt, &mut state);
    });
    let batched = PathStats {
        steps,
        batch,
        samples_per_sec: (steps * batch) as f64 / total,
        mean_step_ms: 1e3 * total / steps as f64,
        min_step_ms: 1e3 * min,
        max_step_ms: 1e3 * max,
    };

    // Same-seed end-to-end agreement between the two paths.
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: batch.min(8),
        ..TrainConfig::default()
    };
    let train_set = sample_set(3 * cfg.batch_size + 2, 2, 32, classes, 13);
    let mut a = net0.clone();
    let mut b = net0.clone();
    let ra = train(&mut a, &train_set, &cfg);
    let rb = train_reference(&mut b, &train_set, &cfg);
    let loss_max_abs_diff = ra
        .loss_history
        .iter()
        .zip(&rb.loss_history)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);

    let report = Report {
        speedup: batched.samples_per_sec / reference.samples_per_sec,
        reference,
        batched,
        loss_max_abs_diff,
    };
    let json = serde_json::to_string(&report).expect("serialisable report");
    println!("{json}");
    let mut f = std::fs::File::create(&json_path).expect("writable json path");
    f.write_all(json.as_bytes()).expect("write json");
    f.write_all(b"\n").expect("write json");
    eprintln!(
        "wrote {json_path}: {:.1}x speedup at batch {batch} ({:.0} vs {:.0} samples/sec), max loss diff {:.2e}",
        report.speedup,
        report.batched.samples_per_sec,
        report.reference.samples_per_sec,
        report.loss_max_abs_diff
    );
}
