//! Chaos-soak driver: seeded failpoint episodes over the full closed
//! loop, judged by standing invariants (see
//! [`dnnspmv_bench::chaos_soak`]).
//!
//! ```text
//! bench_chaos [--quick] [--episodes N] [--seed S] [--max-rules K]
//!             [--json PATH] [--replay SEED "SCHEDULE"]
//! ```
//!
//! Requires the `chaos` feature — a disabled failpoint registry cannot
//! soak anything, and the driver refuses rather than vacuously pass.
//! `--replay` reruns one captured `(seed, schedule)` episode and prints
//! its fire trace, exiting non-zero if it still violates an invariant.

use dnnspmv_bench::chaos_soak::{replay_episode, run_chaos_soak, ChaosSoakConfig};

fn die(msg: &str) -> ! {
    eprintln!("bench_chaos: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ChaosSoakConfig::default();
    let mut json: Option<String> = None;
    let mut replay: Option<(u64, String)> = None;
    let mut i = 0;
    let need = |i: &mut usize, args: &[String], flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                let (base_seed, max_rules) = (cfg.base_seed, cfg.max_rules);
                cfg = ChaosSoakConfig {
                    base_seed,
                    max_rules,
                    ..ChaosSoakConfig::quick()
                };
            }
            "--episodes" => {
                cfg.episodes = need(&mut i, &args, "--episodes")
                    .parse()
                    .unwrap_or_else(|_| die("--episodes needs an integer"));
            }
            "--seed" => {
                cfg.base_seed = need(&mut i, &args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--max-rules" => {
                cfg.max_rules = need(&mut i, &args, "--max-rules")
                    .parse()
                    .unwrap_or_else(|_| die("--max-rules needs an integer"));
            }
            "--json" => json = Some(need(&mut i, &args, "--json")),
            "--replay" => {
                let seed: u64 = need(&mut i, &args, "--replay")
                    .parse()
                    .unwrap_or_else(|_| die("--replay needs a seed then a schedule"));
                let schedule = need(&mut i, &args, "--replay");
                replay = Some((seed, schedule));
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if !dnnspmv_chaos::ENABLED {
        die("built without the `chaos` feature; rerun with --features chaos");
    }
    if let Some((seed, schedule)) = replay {
        let schedule = schedule
            .parse()
            .unwrap_or_else(|e| die(&format!("bad schedule: {e}")));
        let (violations, trace) = replay_episode(seed, &schedule, &cfg);
        println!("replay seed={seed} schedule=\"{schedule}\"");
        for t in &trace {
            println!("  fire: {t}");
        }
        if violations.is_empty() {
            println!("replay clean: every invariant held");
            return;
        }
        for v in &violations {
            println!("  violation: {v}");
        }
        std::process::exit(1);
    }
    let report = run_chaos_soak(&cfg);
    print!("{}", report.render());
    if let Some(path) = json {
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("bench_chaos: writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    if !report.gates_passed() {
        std::process::exit(1);
    }
}
