//! `bench_serve` — soak the admission-controlled selector server and
//! write p50/p99 latency, shed rate, and breaker transitions to JSON.
//!
//! ```text
//! bench_serve [--json FILE] [--clients N] [--requests N] [--workers N]
//!             [--queue N] [--matrices N] [--epochs N]
//! ```
//!
//! See [`dnnspmv_bench::serve`] for the phase structure. The default
//! output file is `BENCH_serve.json`.

use dnnspmv_bench::serve::{run_serve_bench, ServeBenchConfig};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_serve.json");
    let mut cfg = ServeBenchConfig::default();
    let mut i = 0;
    while i < args.len() {
        let numeric = |args: &[String], i: usize, flag: &str| -> usize {
            args.get(i)
                .unwrap_or_else(|| panic!("{flag} needs a number"))
                .parse()
                .unwrap_or_else(|_| panic!("{flag} needs a number"))
        };
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            "--clients" => {
                i += 1;
                cfg.clients = numeric(&args, i, "--clients");
            }
            "--requests" => {
                i += 1;
                cfg.requests_per_client = numeric(&args, i, "--requests");
            }
            "--workers" => {
                i += 1;
                cfg.workers = numeric(&args, i, "--workers");
            }
            "--queue" => {
                i += 1;
                cfg.queue_capacity = numeric(&args, i, "--queue");
            }
            "--matrices" => {
                i += 1;
                cfg.matrices = numeric(&args, i, "--matrices");
            }
            "--epochs" => {
                i += 1;
                cfg.epochs = numeric(&args, i, "--epochs");
            }
            other => {
                eprintln!(
                    "usage: bench_serve [--json FILE] [--clients N] [--requests N] \
                     [--workers N] [--queue N] [--matrices N] [--epochs N]"
                );
                panic!("unknown flag '{other}'");
            }
        }
        i += 1;
    }

    let report = run_serve_bench(&cfg);
    eprint!("{}", report.render());
    let json = serde_json::to_string(&report).expect("serialisable report");
    println!("{json}");
    let mut f = std::fs::File::create(&json_path).expect("writable json path");
    f.write_all(json.as_bytes()).expect("write json");
    f.write_all(b"\n").expect("write json");
    eprintln!("wrote {json_path}");
}
