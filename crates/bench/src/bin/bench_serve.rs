//! `bench_serve` — soak the admission-controlled selector server and
//! write p50/p99 latency, shed rate, and breaker transitions to JSON.
//!
//! ```text
//! bench_serve [--json FILE] [--clients N] [--requests N] [--workers N]
//!             [--queue N] [--matrices N] [--epochs N]
//!             [--min-batched-ratio X]
//! ```
//!
//! See [`dnnspmv_bench::serve`] for the phase structure. The default
//! output file is `BENCH_serve.json`. With `--min-batched-ratio X` the
//! run exits nonzero unless the hot-path (cache + micro-batching)
//! server's overload throughput is at least `X`× the plain server's —
//! the CI throughput gate.

use dnnspmv_bench::serve::{run_serve_bench, ServeBenchConfig};
use std::io::Write;

fn die(msg: &str) -> ! {
    eprintln!("bench_serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_serve.json");
    let mut cfg = ServeBenchConfig::default();
    let mut min_batched_ratio: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        let numeric = |args: &[String], i: usize, flag: &str| -> usize {
            args.get(i)
                .unwrap_or_else(|| die(&format!("{flag} needs a number")))
                .parse()
                .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
        };
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args
                    .get(i)
                    .unwrap_or_else(|| die("--json needs a path"))
                    .clone();
            }
            "--clients" => {
                i += 1;
                cfg.clients = numeric(&args, i, "--clients");
            }
            "--requests" => {
                i += 1;
                cfg.requests_per_client = numeric(&args, i, "--requests");
            }
            "--workers" => {
                i += 1;
                cfg.workers = numeric(&args, i, "--workers");
            }
            "--queue" => {
                i += 1;
                cfg.queue_capacity = numeric(&args, i, "--queue");
            }
            "--matrices" => {
                i += 1;
                cfg.matrices = numeric(&args, i, "--matrices");
            }
            "--epochs" => {
                i += 1;
                cfg.epochs = numeric(&args, i, "--epochs");
            }
            "--min-batched-ratio" => {
                i += 1;
                min_batched_ratio = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--min-batched-ratio needs a number"))
                        .parse()
                        .unwrap_or_else(|_| die("--min-batched-ratio needs a number")),
                );
            }
            other => {
                eprintln!(
                    "usage: bench_serve [--json FILE] [--clients N] [--requests N] \
                     [--workers N] [--queue N] [--matrices N] [--epochs N] \
                     [--min-batched-ratio X]"
                );
                die(&format!("unknown flag '{other}'"));
            }
        }
        i += 1;
    }

    let report = run_serve_bench(&cfg);
    eprint!("{}", report.render());
    let json = serde_json::to_string(&report).expect("report structs serialise losslessly");
    println!("{json}");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&json_path)?;
        f.write_all(json.as_bytes())?;
        f.write_all(b"\n")
    };
    if let Err(e) = write() {
        eprintln!("bench_serve: writing {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
    if let Some(min) = min_batched_ratio {
        if report.hot_path.throughput_ratio < min {
            eprintln!(
                "throughput gate FAILED: batched/unbatched ratio {:.2} < {min:.2}",
                report.hot_path.throughput_ratio
            );
            std::process::exit(1);
        }
        eprintln!(
            "throughput gate passed: ratio {:.2} >= {min:.2}",
            report.hot_path.throughput_ratio
        );
    }
}
