//! `bench_chaos` / `dnnspmv chaos-soak` — whole-system chaos soak.
//!
//! Each *episode* runs the full closed loop (serve → tap → journal →
//! drift → evolve → promote) under concurrent client load while a
//! seeded adversary fires a randomized multi-site failpoint schedule
//! drawn from [`dnnspmv_chaos::sites::CATALOG`]. After every episode
//! the driver disarms the registry and checks the system's standing
//! invariants — the ones that must hold *no matter what was injected*:
//!
//! * **accounting exact** — every submitted request lands in exactly
//!   one terminal bucket ([`ServerReport::accounted`] equals
//!   `submitted`, and the count matches the driver's own tally), and
//!   every served answer travelled exactly one hot-path route
//!   ([`ServerReport::path_accounted`]);
//! * **no panic escapes a worker** — injected panics are confined to
//!   sites with an unwind boundary, so no client ever observes
//!   [`ServeError::WorkerLost`] and no client thread dies;
//! * **journal replayable** — whatever subset of appends survived the
//!   injected write failures replays cleanly: zero corrupt records,
//!   zero torn segments, and a record count bracketed by the sampler's
//!   own success/error counters;
//! * **reload/promotion consistency** — a successful reload's returned
//!   generation is live, a failed one leaves the generation untouched,
//!   and the final generation equals the number of successful reloads;
//! * **breaker transitions legal** — probes only follow opens, closes
//!   only follow probes;
//! * **drained exit** — after shutdown the queue-depth and in-flight
//!   gauges return to zero.
//!
//! Every episode is a pure function of `(seed, schedule)`: a failing
//! episode prints both plus the ordered fire trace, and
//! `--replay <seed> <schedule>` reruns exactly that episode.

use dnnspmv_chaos::{sites, Schedule};
use dnnspmv_core::{
    CacheConfig, FormatSelector, SelectorServer, SelectorService, ServeError, ServerConfig,
    ServerReport,
};
use dnnspmv_feedback::{
    evolve, replay, usable_samples, DriftConfig, DriftDetector, EvolveConfig, FeedbackSampler,
    GuardVerdict, JournalConfig, JournalWriter, ModelTimer, PromotionConfig, PromotionGuard,
    SamplerConfig,
};
use dnnspmv_gen::{Dataset, DatasetSpec};
use dnnspmv_nn::TrainConfig;
use dnnspmv_platform::{label_dataset, PlatformModel};
use dnnspmv_sparse::CooMatrix;
use serde::Serialize;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Chaos-soak parameters.
#[derive(Debug, Clone)]
pub struct ChaosSoakConfig {
    /// Episodes to run (each gets `base_seed + index`).
    pub episodes: usize,
    /// Seed of the first episode.
    pub base_seed: u64,
    /// Most rules a random schedule may carry.
    pub max_rules: usize,
    /// Concurrent client threads per episode.
    pub clients: usize,
    /// Requests each client submits per episode.
    pub requests_per_client: usize,
    /// Matrices in the shared fixture pool.
    pub matrices: usize,
    /// Epochs for the fixture selector's one-time training.
    pub train_epochs: usize,
    /// Epochs for each episode's evolve pass.
    pub evolve_epochs: usize,
    /// Distinct sites that must fire across the whole run for the
    /// coverage gate to pass.
    pub min_distinct_sites: usize,
}

impl Default for ChaosSoakConfig {
    fn default() -> Self {
        Self {
            episodes: 120,
            base_seed: 0xC4A0_5000,
            max_rules: 4,
            clients: 3,
            requests_per_client: 40,
            matrices: 48,
            train_epochs: 3,
            evolve_epochs: 2,
            min_distinct_sites: 12,
        }
    }
}

impl ChaosSoakConfig {
    /// CI-scale run: same invariants, fewer episodes.
    pub fn quick() -> Self {
        Self {
            episodes: 60,
            requests_per_client: 30,
            ..Self::default()
        }
    }
}

/// One episode that violated an invariant, with everything needed to
/// replay it bit-identically.
#[derive(Debug, Clone, Serialize)]
pub struct EpisodeFailure {
    /// The episode's seed.
    pub seed: u64,
    /// The schedule, in its round-trippable text form.
    pub schedule: String,
    /// Human-readable invariant violations.
    pub violations: Vec<String>,
    /// The ordered fire trace (rendered [`dnnspmv_chaos::FireEvent`]s).
    pub trace: Vec<String>,
}

/// Aggregated per-site injection counters across the whole run.
#[derive(Debug, Clone, Serialize)]
pub struct SiteFireReport {
    /// Failpoint site name.
    pub site: String,
    /// Evaluations while scheduled, summed over episodes.
    pub calls: u64,
    /// Fires, summed over episodes.
    pub fires: u64,
}

/// Machine-readable soak result (`BENCH_chaos.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ChaosSoakReport {
    /// The chaos feature was compiled in (a disabled registry cannot
    /// soak anything).
    pub enabled: bool,
    /// Episodes run.
    pub episodes: usize,
    /// Requests submitted across all episodes.
    pub requests: u64,
    /// Total failpoint fires across all episodes.
    pub total_fires: u64,
    /// Distinct sites that fired at least once.
    pub distinct_sites_fired: usize,
    /// Coverage floor the run was judged against.
    pub min_distinct_sites: usize,
    /// Per-site aggregate counters (sites that were ever scheduled).
    pub site_fires: Vec<SiteFireReport>,
    /// Episodes that violated an invariant (empty on a clean run).
    pub failures: Vec<EpisodeFailure>,
    /// Whole-run wall clock, seconds.
    pub elapsed_s: f64,
}

impl ChaosSoakReport {
    /// The CI verdict: registry armed, every invariant held in every
    /// episode, and the adversary exercised enough distinct sites.
    pub fn gates_passed(&self) -> bool {
        self.enabled
            && self.failures.is_empty()
            && self.distinct_sites_fired >= self.min_distinct_sites
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let gate = |ok: bool| if ok { "ok" } else { "FAILED" };
        let mut out = format!(
            "chaos soak ({:.1}s):\n\
             \x20 episodes          {}\n\
             \x20 requests          {}\n\
             \x20 fires             {} across {} distinct sites (floor {}) {}\n\
             \x20 violations        {} {}\n",
            self.elapsed_s,
            self.episodes,
            self.requests,
            self.total_fires,
            self.distinct_sites_fired,
            self.min_distinct_sites,
            gate(self.distinct_sites_fired >= self.min_distinct_sites),
            self.failures.len(),
            gate(self.failures.is_empty()),
        );
        for s in &self.site_fires {
            out.push_str(&format!(
                "  site {:<32} {:>6} calls {:>5} fires\n",
                s.site, s.calls, s.fires
            ));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "  episode FAILED seed={} schedule=\"{}\"\n",
                f.seed, f.schedule
            ));
            for v in &f.violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
            for t in &f.trace {
                out.push_str(&format!("    fire: {t}\n"));
            }
        }
        out
    }

    /// Serializes the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Writes the report to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The trained fixture every episode reuses: training it once keeps
/// per-episode cost down, and sharing it is sound because episodes
/// never mutate the incumbent — they evolve *copies* from their own
/// journals.
struct Fixture {
    matrices: Vec<CooMatrix<f32>>,
    incumbent: FormatSelector,
    incumbent_path: PathBuf,
    platform: PlatformModel,
    dir: PathBuf,
}

impl Fixture {
    fn build(cfg: &ChaosSoakConfig) -> Self {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("dnnspmv-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("chaos temp dir");
        let data = Dataset::generate(&DatasetSpec {
            n_base: (cfg.matrices * 8) / 10,
            n_augmented: cfg.matrices - (cfg.matrices * 8) / 10,
            dim_min: 32,
            dim_max: 96,
            seed: cfg.base_seed ^ 0xF1C5,
            ..DatasetSpec::default()
        });
        let platform = PlatformModel::intel_cpu();
        let labels = label_dataset(&data.matrices, &platform);
        let sel_cfg = crate::ExpConfig::quick().selector_config(dnnspmv_repr::ReprKind::Histogram);
        let sel_cfg = dnnspmv_core::SelectorConfig {
            train: TrainConfig {
                epochs: cfg.train_epochs,
                ..sel_cfg.train
            },
            ..sel_cfg
        };
        let (incumbent, _) = FormatSelector::train_with_labels(
            &data.matrices,
            &labels,
            platform.formats().to_vec(),
            &sel_cfg,
        );
        let incumbent_path = dir.join("incumbent.json");
        incumbent
            .save(incumbent_path.to_string_lossy().as_ref())
            .expect("save fixture incumbent");
        Self {
            matrices: data.matrices,
            incumbent,
            incumbent_path,
            platform,
            dir,
        }
    }
}

/// What one episode observed, before invariant checking.
struct EpisodeRun {
    report: ServerReport,
    /// Requests the driver itself submitted (must equal
    /// `report.submitted`).
    attempts: u64,
    /// `WorkerLost` replies clients received (must be zero).
    worker_lost: u64,
    /// Client threads that died (must be zero).
    client_panics: u64,
    /// Mid-episode consistency violations (reload/promotion checks run
    /// while chaos is still armed).
    inline_violations: Vec<String>,
    /// Journal replay outcome (`None`: replay itself errored).
    journal: Option<(usize, dnnspmv_feedback::ReplayReport)>,
    journal_error: Option<String>,
    /// Sampler counters at the end of the episode.
    appended_ok: u64,
    append_errors: u64,
    /// Queue-depth / in-flight gauges after shutdown (must be 0/0).
    queue_depth: i64,
    in_flight: i64,
}

fn gauge(server: &SelectorServer<f32>, name: &str) -> i64 {
    server.metrics_snapshot().gauge(name, &[]).unwrap_or(0)
}

fn counter(server: &SelectorServer<f32>, name: &str) -> u64 {
    server.metrics_snapshot().counter(name, &[]).unwrap_or(0)
}

/// Runs the closed loop once under the armed registry. Everything this
/// function does happens *under chaos*; the caller disarms and judges.
fn run_episode_body(fixture: &Fixture, cfg: &ChaosSoakConfig, dir: &Path) -> EpisodeRun {
    let service = SelectorService::new(Some(fixture.incumbent.clone()), None)
        .expect("fixture selector validates")
        .with_confidence_threshold(0.0);
    let server = SelectorServer::new(
        service,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache: CacheConfig::enabled(512),
            max_batch: 4,
            reload_attempts: 2,
            reload_backoff: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    );
    let drift = Arc::new(DriftDetector::new(
        DriftConfig {
            window: 64,
            min_samples: 8,
            threshold: 0.7,
        },
        server.registry(),
    ));
    let journal_dir = dir.join("journal");
    let sampler = FeedbackSampler::new(
        SamplerConfig {
            sample_every: 1,
            queue_capacity: 256,
            repr: fixture.incumbent.config.repr,
            repr_config: fixture.incumbent.config.repr_config,
        },
        JournalWriter::open(
            &journal_dir,
            JournalConfig {
                // Small segments force rotations, so the rotate
                // failpoint sees real traffic.
                max_segment_bytes: 64 * 1024,
                sync_each_append: false,
            },
        )
        .expect("open episode journal"),
        Arc::clone(&drift),
        Arc::new(ModelTimer::new(fixture.platform.clone())),
        server.registry(),
    );
    assert!(server.set_serve_tap(sampler.tap()), "tap attaches once");

    let attempts = AtomicU64::new(0);
    let worker_lost = AtomicU64::new(0);
    let mut client_panics = 0u64;
    let inline_violations: Mutex<Vec<String>> = Mutex::new(Vec::new());

    // A tiny deterministic helper: submit one request and classify the
    // outcome. Shed / shutdown / deadline / overload are all *expected*
    // under chaos; only WorkerLost is a violation.
    let one_request = |i: usize, tid: usize| {
        let m = &fixture.matrices[(i * 7 + tid * 13) % fixture.matrices.len()];
        attempts.fetch_add(1, Ordering::Relaxed);
        let outcome = if i % 7 == 3 {
            server
                .submit(Arc::new(m.clone()), Some(Duration::from_millis(250)))
                .and_then(|p| p.wait())
        } else {
            server.select(m)
        };
        if let Err(ServeError::WorkerLost) = outcome {
            worker_lost.fetch_add(1, Ordering::Relaxed);
        }
    };

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..cfg.clients {
            let one_request = &one_request;
            handles.push(s.spawn(move || {
                for i in 0..cfg.requests_per_client {
                    one_request(i, tid);
                }
            }));
        }
        // The ops thread exercises hot reload concurrently with client
        // load and checks the generation contract inline.
        let server_ref = &server;
        let violations_ref = &inline_violations;
        let incumbent_path = &fixture.incumbent_path;
        handles.push(s.spawn(move || {
            for _ in 0..2 {
                let before = server_ref.model_generation();
                match server_ref.reload_model(incumbent_path) {
                    Ok(g) => {
                        if server_ref.model_generation() != g {
                            violations_ref
                                .lock()
                                .expect("violations lock")
                                .push(format!(
                                    "reload returned generation {g} but {} is live",
                                    server_ref.model_generation()
                                ));
                        }
                    }
                    Err(_) => {
                        if server_ref.model_generation() != before {
                            violations_ref
                                .lock()
                                .expect("violations lock")
                                .push(format!(
                                    "failed reload moved generation {before} -> {}",
                                    server_ref.model_generation()
                                ));
                        }
                    }
                }
            }
        }));
        for h in handles {
            if h.join().is_err() {
                client_panics += 1;
            }
        }
    });

    // Saving an artefact under chaos exercises the envelope sites; the
    // write is atomic, so a failure must leave no file behind.
    let copy_path = dir.join("incumbent-copy.json");
    match fixture.incumbent.save(copy_path.to_string_lossy().as_ref()) {
        Ok(()) => {}
        Err(_) => {
            if copy_path.exists() {
                inline_violations
                    .lock()
                    .expect("violations lock")
                    .push("failed artefact save left a final file behind".into());
            }
        }
    }

    // Evolve from whatever the journal managed to capture, then attempt
    // a guarded promotion of the candidate. Every failure here is a
    // legal degraded outcome; only consistency violations count. The
    // block gets its own unwind boundary because that is the production
    // shape — the evolve lane runs out-of-process (`dnnspmv evolve`),
    // so even a terminal training panic (injected step poisoning
    // exhausting the rollback budget) must not disturb serving.
    sampler.flush();
    let _ = sampler.sync(); // may carry an injected fsync failure
    let evolve_ctx = EvolveCtx {
        fixture,
        cfg,
        dir,
        journal_dir: &journal_dir,
        server: &server,
        drift: &drift,
        sampler: &sampler,
        attempts: &attempts,
        worker_lost: &worker_lost,
        violations: &inline_violations,
    };
    let _ = catch_unwind(AssertUnwindSafe(|| evolve_and_promote(&evolve_ctx)));

    // Shutdown: one straggler must be rejected-and-counted, then the
    // queue drains and the gauges return to zero.
    server.shutdown();
    attempts.fetch_add(1, Ordering::Relaxed);
    let _ = server.select(&fixture.matrices[0]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (q, f) = (
            gauge(&server, "serve_queue_depth"),
            gauge(&server, "serve_in_flight"),
        );
        if (q == 0 && f == 0) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    sampler.flush();
    drop(sampler); // joins the sampler worker; all appends are final
    let appended_ok = counter(&server, "feedback_appended_total");
    let append_errors = counter(&server, "feedback_sample_errors_total");
    let queue_depth = gauge(&server, "serve_queue_depth");
    let in_flight = gauge(&server, "serve_in_flight");
    let report = server.report();
    drop(server); // joins workers

    let (journal, journal_error) = match replay(&journal_dir) {
        Ok((records, rr)) => (Some((records.len(), rr)), None),
        Err(e) => (None, Some(e.to_string())),
    };
    EpisodeRun {
        report,
        attempts: attempts.load(Ordering::Relaxed),
        worker_lost: worker_lost.load(Ordering::Relaxed),
        client_panics,
        inline_violations: inline_violations.into_inner().expect("violations lock"),
        journal,
        journal_error,
        appended_ok,
        append_errors,
        queue_depth,
        in_flight,
    }
}

/// Everything the crash-isolated evolve/promotion lane of one episode
/// needs by reference.
struct EvolveCtx<'a> {
    fixture: &'a Fixture,
    cfg: &'a ChaosSoakConfig,
    dir: &'a Path,
    journal_dir: &'a Path,
    server: &'a SelectorServer<f32>,
    drift: &'a Arc<DriftDetector>,
    sampler: &'a FeedbackSampler<f32>,
    attempts: &'a AtomicU64,
    worker_lost: &'a AtomicU64,
    violations: &'a Mutex<Vec<String>>,
}

/// The episode's evolve lane: journal replay → fine-tune → guarded
/// promotion → guard verdict. Every stage may fail under chaos — every
/// failure is a legal degraded outcome; only *consistency* violations
/// (a generation that moved on a failed reload, a rollback that
/// restored nothing) are recorded.
fn evolve_and_promote(ctx: &EvolveCtx<'_>) {
    let Ok((records, _)) = replay(ctx.journal_dir) else {
        return;
    };
    let ckpt_dir = ctx.dir.join("ckpt");
    let evolve_cfg = EvolveConfig {
        train: TrainConfig {
            epochs: ctx.cfg.evolve_epochs,
            batch_size: 16,
            checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
            ..ctx.fixture.incumbent.config.train.clone()
        },
        holdout_frac: 0.25,
        min_records: 8,
        margin: 0.0,
        ..EvolveConfig::default()
    };
    let Ok((candidate, _shadow, _)) = evolve(&ctx.fixture.incumbent, &records, &evolve_cfg) else {
        return;
    };
    // A checkpoint from the evolve pass feeds a one-epoch resumed
    // fine-tune, so the resume-read failpoint sees traffic. The typed
    // entry point is used deliberately: an injected resume failure is
    // an error, not a panic.
    let ckpt_file = dnnspmv_nn::checkpoint_path(&ckpt_dir);
    if ckpt_file.exists() {
        let samples = usable_samples(&ctx.fixture.incumbent, &records);
        if !samples.is_empty() {
            let resume_cfg = TrainConfig {
                epochs: ctx.cfg.evolve_epochs,
                batch_size: 16,
                checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
                resume_from: Some(ckpt_file.to_string_lossy().into_owned()),
                ..ctx.fixture.incumbent.config.train.clone()
            };
            let mut net = ctx.fixture.incumbent.net.clone();
            let _ = dnnspmv_nn::train_with_hooks(
                &mut net,
                &samples,
                &resume_cfg,
                dnnspmv_nn::TrainHooks::default(),
            );
        }
    }
    let candidate_path = ctx.dir.join("candidate.json");
    if candidate
        .save(candidate_path.to_string_lossy().as_ref())
        .is_err()
    {
        return;
    }
    let before = ctx.server.model_generation();
    match PromotionGuard::promote(
        ctx.server,
        ctx.drift,
        &candidate_path,
        &ctx.fixture.incumbent_path,
        PromotionConfig {
            margin: 0.1,
            min_samples: 4,
        },
    ) {
        Ok((mut guard, g)) => {
            if ctx.server.model_generation() != g {
                ctx.violations
                    .lock()
                    .expect("violations lock")
                    .push(format!(
                        "promotion installed generation {g} but {} is live",
                        ctx.server.model_generation()
                    ));
            }
            // Fresh post-promotion evidence, then the guard verdict; a
            // rollback must actually restore a previous artefact (the
            // generation bumps again).
            for i in 0..12 {
                let m = &ctx.fixture.matrices[i % ctx.fixture.matrices.len()];
                ctx.attempts.fetch_add(1, Ordering::Relaxed);
                if let Err(ServeError::WorkerLost) = ctx.server.select(m) {
                    ctx.worker_lost.fetch_add(1, Ordering::Relaxed);
                }
            }
            ctx.sampler.flush();
            if let Ok(GuardVerdict::RolledBack { .. }) = guard.check(ctx.server, ctx.drift) {
                if ctx.server.model_generation() != g + 1 {
                    ctx.violations
                        .lock()
                        .expect("violations lock")
                        .push("rollback did not install a new generation".into());
                }
                if !guard.rolled_back() {
                    ctx.violations
                        .lock()
                        .expect("violations lock")
                        .push("guard verdict and rolled_back() disagree".into());
                }
            }
        }
        Err(_) => {
            if ctx.server.model_generation() != before {
                ctx.violations
                    .lock()
                    .expect("violations lock")
                    .push(format!(
                        "failed promotion moved generation {before} -> {}",
                        ctx.server.model_generation()
                    ));
            }
        }
    }
}

/// Judges one finished episode against the standing invariants.
fn check_invariants(run: &EpisodeRun) -> Vec<String> {
    let mut v = run.inline_violations.clone();
    let r = &run.report;
    if r.accounted() != r.submitted {
        v.push(format!(
            "accounting leak: submitted {} but accounted {}",
            r.submitted,
            r.accounted()
        ));
    }
    if r.submitted != run.attempts {
        v.push(format!(
            "driver submitted {} requests but the server counted {}",
            run.attempts, r.submitted
        ));
    }
    if !r.path_accounted() {
        v.push(format!(
            "path accounting broken: served {} != cache {} + batched {} + single {}",
            r.served, r.served_cache, r.batched_served, r.single_served
        ));
    }
    if run.worker_lost > 0 {
        v.push(format!(
            "{} requests lost their worker (panic escaped the unwind boundary)",
            run.worker_lost
        ));
    }
    if run.client_panics > 0 {
        v.push(format!("{} client threads panicked", run.client_panics));
    }
    match (&run.journal, &run.journal_error) {
        (Some((records, rr)), _) => {
            if rr.corrupt_records != 0 {
                v.push(format!("{} corrupt journal records", rr.corrupt_records));
            }
            if rr.torn_segments != 0 {
                v.push(format!("{} torn journal segments", rr.torn_segments));
            }
            let lo = run.appended_ok;
            let hi = run.appended_ok + run.append_errors;
            if !(lo..=hi).contains(&(*records as u64)) {
                v.push(format!(
                    "journal replayed {records} records, outside [{lo}, {hi}] \
                     (appended {} ok, {} errored)",
                    run.appended_ok, run.append_errors
                ));
            }
        }
        (None, Some(e)) => v.push(format!("journal replay failed: {e}")),
        (None, None) => v.push("journal replay missing".into()),
    }
    if r.model_generation != r.reloads_ok {
        v.push(format!(
            "generation {} != successful reloads {}",
            r.model_generation, r.reloads_ok
        ));
    }
    let b = &r.breaker;
    if b.to_half_open > b.to_open {
        v.push(format!(
            "breaker probed ({}) more often than it opened ({})",
            b.to_half_open, b.to_open
        ));
    }
    if b.to_closed > b.to_half_open {
        v.push(format!(
            "breaker closed ({}) more often than it probed ({})",
            b.to_closed, b.to_half_open
        ));
    }
    if run.queue_depth != 0 || run.in_flight != 0 {
        v.push(format!(
            "did not drain: queue depth {} in flight {}",
            run.queue_depth, run.in_flight
        ));
    }
    v
}

/// Runs one `(seed, schedule)` episode end to end: arm, run, disarm,
/// judge. This is also the `--replay` entry point — the episode is a
/// pure function of its arguments plus the shared fixture.
fn run_episode(
    fixture: &Fixture,
    seed: u64,
    schedule: &Schedule,
    cfg: &ChaosSoakConfig,
) -> (Vec<String>, Vec<dnnspmv_chaos::SiteStats>, Vec<String>, u64) {
    let dir = fixture.dir.join(format!("ep-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("episode dir");
    dnnspmv_chaos::configure(seed, schedule);
    let outcome = catch_unwind(AssertUnwindSafe(|| run_episode_body(fixture, cfg, &dir)));
    dnnspmv_chaos::deactivate();
    let stats = dnnspmv_chaos::site_stats();
    let trace: Vec<String> = dnnspmv_chaos::trace()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let (violations, attempts) = match outcome {
        Ok(run) => (check_invariants(&run), run.attempts),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".into());
            (vec![format!("episode body panicked: {msg}")], 0)
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    (violations, stats, trace, attempts)
}

/// Replays one captured `(seed, schedule)` episode and returns its
/// violations (empty: the episode is clean under the current build).
pub fn replay_episode(
    seed: u64,
    schedule: &Schedule,
    cfg: &ChaosSoakConfig,
) -> (Vec<String>, Vec<String>) {
    let fixture = Fixture::build(cfg);
    let (violations, _, trace, _) = run_episode(&fixture, seed, schedule, cfg);
    let _ = std::fs::remove_dir_all(&fixture.dir);
    (violations, trace)
}

/// Runs the soak: `cfg.episodes` seeded episodes, each with a fresh
/// random schedule, each judged against every standing invariant.
pub fn run_chaos_soak(cfg: &ChaosSoakConfig) -> ChaosSoakReport {
    let t_start = Instant::now();
    if !dnnspmv_chaos::ENABLED {
        return ChaosSoakReport {
            enabled: false,
            episodes: 0,
            requests: 0,
            total_fires: 0,
            distinct_sites_fired: 0,
            min_distinct_sites: cfg.min_distinct_sites,
            site_fires: Vec::new(),
            failures: Vec::new(),
            elapsed_s: t_start.elapsed().as_secs_f64(),
        };
    }
    let fixture = Fixture::build(cfg);
    let mut site_totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut failures = Vec::new();
    let mut requests = 0u64;
    // Injected panics are routine here and every one is caught and
    // judged by invariant; the default hook's backtrace spam would
    // drown the report. `--replay` keeps the default hook, so a single
    // episode under diagnosis stays verbose.
    let quiet_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for e in 0..cfg.episodes {
        let seed = cfg.base_seed.wrapping_add(e as u64);
        let schedule = Schedule::random(seed, sites::CATALOG, cfg.max_rules);
        let (violations, stats, trace, attempts) = run_episode(&fixture, seed, &schedule, cfg);
        requests += attempts;
        for s in &stats {
            let t = site_totals.entry(s.site.clone()).or_insert((0, 0));
            t.0 += s.calls;
            t.1 += s.fires;
        }
        if !violations.is_empty() {
            eprintln!("episode FAILED seed={seed} schedule=\"{schedule}\"");
            for v in &violations {
                eprintln!("  violation: {v}");
            }
            failures.push(EpisodeFailure {
                seed,
                schedule: schedule.to_string(),
                violations,
                trace,
            });
        }
    }
    std::panic::set_hook(quiet_hook);
    let _ = std::fs::remove_dir_all(&fixture.dir);
    let site_fires: Vec<SiteFireReport> = site_totals
        .into_iter()
        .map(|(site, (calls, fires))| SiteFireReport { site, calls, fires })
        .collect();
    ChaosSoakReport {
        enabled: true,
        episodes: cfg.episodes,
        requests,
        total_fires: site_fires.iter().map(|s| s.fires).sum(),
        distinct_sites_fired: site_fires.iter().filter(|s| s.fires > 0).count(),
        min_distinct_sites: cfg.min_distinct_sites,
        site_fires,
        failures,
        elapsed_s: t_start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_refuses_to_soak() {
        if dnnspmv_chaos::ENABLED {
            return; // this test pins the *disabled* behaviour
        }
        let report = run_chaos_soak(&ChaosSoakConfig::quick());
        assert!(!report.enabled);
        assert!(!report.gates_passed());
        assert_eq!(report.episodes, 0);
    }

    // The enabled-build soak itself is exercised by `bench_chaos` and
    // the root crate's chaos regression test; a couple of episodes
    // here keep the driver honest under `--features chaos` test runs.
    #[test]
    fn two_episodes_hold_invariants_when_enabled() {
        if !dnnspmv_chaos::ENABLED {
            return;
        }
        let cfg = ChaosSoakConfig {
            episodes: 2,
            matrices: 24,
            train_epochs: 1,
            evolve_epochs: 1,
            requests_per_client: 10,
            min_distinct_sites: 0,
            ..ChaosSoakConfig::quick()
        };
        let report = run_chaos_soak(&cfg);
        assert!(report.enabled);
        assert!(
            report.failures.is_empty(),
            "chaos episodes violated invariants: {:?}",
            report.failures
        );
    }
}
