//! `bench_spmv` — kernel-throughput sweep for the widened format set:
//! row-chunked CSR vs merge-path CSR, and ELL vs SELL-C-σ, across
//! structured and power-law matrices.
//!
//! ## Methodology: wall-clock *and* simulated makespan
//!
//! The merge-path kernel's whole value proposition is load balance:
//! every worker gets an equal `(rows + nnz)` share of the merge path,
//! so a power-law matrix's mega-rows cannot serialise the sweep. This
//! repo's build container has one core — and the vendored `rayon` is a
//! sequential stand-in — so that win is structurally invisible in
//! wall-clock time: every schedule degenerates to the serial sum of
//! all work. The sweep therefore reports two kinds of numbers:
//!
//! * **wall** — median wall-clock of the real `spmv_par` entry point.
//!   Honest on this host, and the right scoreboard for SELL-vs-ELL:
//!   SELL-C-σ wins by *doing less work* (chunk-local padding instead
//!   of matrix-wide), which shows up even single-threaded.
//! * **makespan** — each kernel's parallel decomposition is broken
//!   into its actual scheduling units (CSR: the row chunks its rayon
//!   kernel creates for a `T`-thread pool; merge CSR: the
//!   `T × PARTITIONS_PER_THREAD` merge-path partitions), each unit is
//!   timed sequentially (best of 3), and the units are greedily
//!   list-scheduled onto `T` simulated workers. The makespan is the
//!   busiest worker's total — what a `T`-core machine would wait for,
//!   modulo memory contention. Greedy list scheduling is the same
//!   2-approximation discipline rayon's work stealing follows, so
//!   this is the merge-vs-CSR scoreboard.
//!
//! The `--quick` mode is the CI smoke: small matrices, few trials, and
//! a hard gate that merge-path CSR's makespan at 4 workers is at least
//! `--min-merge-ratio`× row-chunked CSR's on the power-law case.

use dnnspmv_gen::{generate, varied_band_rows, MatrixClass};
use dnnspmv_sparse::merge_csr::PARTITIONS_PER_THREAD;
use dnnspmv_sparse::{
    CooMatrix, CsrMatrix, EllMatrix, MatrixStats, MergeCsrMatrix, SellMatrix, Spmv,
};
use serde::Serialize;
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SpmvBenchConfig {
    /// Matrix dimension for every case.
    pub dim: usize,
    /// Timed repetitions per measurement (median is reported).
    pub trials: usize,
    /// Simulated worker counts for the makespan sweep.
    pub workers: Vec<usize>,
    /// Generator seed.
    pub seed: u64,
}

impl SpmvBenchConfig {
    /// CI smoke configuration: finishes in a few seconds.
    pub fn quick() -> Self {
        Self {
            dim: 4096,
            trials: 5,
            workers: vec![1, 4],
            seed: 0x5E11,
        }
    }

    /// Full sweep for `BENCH_spmv.json`.
    pub fn full() -> Self {
        Self {
            dim: 16384,
            trials: 9,
            workers: vec![1, 2, 4, 8],
            seed: 0x5E11,
        }
    }
}

/// Simulated makespans at one worker count, in nanoseconds.
#[derive(Debug, Clone, Serialize)]
pub struct MakespanPoint {
    /// Simulated worker count.
    pub workers: usize,
    /// Median makespan of CSR's row chunks list-scheduled on `workers`.
    pub makespan_csr_ns: f64,
    /// Median makespan of merge-path partitions on `workers`.
    pub makespan_mcsr_ns: f64,
}

/// One matrix case: single-thread wall-clocks plus the makespan sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CaseReport {
    /// Case name (`power_law`, `varied_band`, `uniform_rows`).
    pub name: String,
    /// Dimension.
    pub dim: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Row-length coefficient of variation (the model's skew feature).
    pub row_cv: f64,
    /// ELL fill ratio — how much padding ELL pays on this case.
    pub ell_fill: f64,
    /// SELL-C-σ fill ratio on the same case.
    pub sell_fill: f64,
    /// Median `spmv_par` wall-clock, row-chunked CSR.
    pub wall_csr_ns: f64,
    /// Median `spmv_par` wall-clock, merge-path CSR.
    pub wall_mcsr_ns: f64,
    /// Median `spmv_par` wall-clock, ELL (infinite when infeasible).
    pub wall_ell_ns: f64,
    /// Median `spmv_par` wall-clock, SELL-C-σ.
    pub wall_sell_ns: f64,
    /// Makespans per simulated worker count.
    pub points: Vec<MakespanPoint>,
}

/// Headline ratios the acceptance criteria read.
#[derive(Debug, Clone, Serialize)]
pub struct Gates {
    /// Power-law case: CSR makespan / merge makespan at 4 workers.
    /// > 1 means merge-path wins once real cores exist.
    pub mcsr_over_csr_makespan_at4: f64,
    /// Varied-band case: ELL wall / SELL wall — a pure less-work win,
    /// no simulation involved.
    pub sell_over_ell_wall: f64,
}

/// Full sweep output, serialised to `BENCH_spmv.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SpmvBenchReport {
    /// Physical threads the benchmarking host exposes.
    pub host_threads: usize,
    /// One-line record of the measurement discipline.
    pub methodology: String,
    /// Per-case results.
    pub cases: Vec<CaseReport>,
    /// Headline ratios.
    pub gates: Gates,
}

impl SpmvBenchReport {
    /// JSON for `BENCH_spmv.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialises")
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "bench_spmv (host threads: {})", self.host_threads);
        for c in &self.cases {
            let _ = writeln!(
                s,
                "\n{} (n={}, nnz={}, row_cv={:.2}, ell_fill={:.2}, sell_fill={:.2})",
                c.name, c.dim, c.nnz, c.row_cv, c.ell_fill, c.sell_fill
            );
            let _ = writeln!(
                s,
                "  wall ns: csr={:.0} mcsr={:.0} ell={:.0} sell={:.0}",
                c.wall_csr_ns, c.wall_mcsr_ns, c.wall_ell_ns, c.wall_sell_ns
            );
            let _ = writeln!(
                s,
                "  {:>3}  {:>14} {:>14}",
                "T", "mkspan CSR", "mkspan MCSR"
            );
            for p in &c.points {
                let _ = writeln!(
                    s,
                    "  {:>3}  {:>14.0} {:>14.0}",
                    p.workers, p.makespan_csr_ns, p.makespan_mcsr_ns
                );
            }
        }
        let _ = writeln!(
            s,
            "\ngates: mcsr/csr makespan @4 = {:.2}x, ell/sell wall = {:.2}x",
            self.gates.mcsr_over_csr_makespan_at4, self.gates.sell_over_ell_wall
        );
        s
    }
}

/// Median of a sample (destructive; NaN-free inputs).
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    v[v.len() / 2]
}

/// Times `f` once, in nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64
}

/// Best-of-3 timing of one scheduling unit: per-unit costs feed the
/// makespan simulation, so clock jitter on sub-microsecond units must
/// not masquerade as load imbalance.
fn unit_ns<F: FnMut()>(mut f: F) -> f64 {
    (0..3)
        .map(|_| time_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Greedy list scheduling of `units` (ns each, in submission order)
/// onto `workers`: each unit goes to the least-loaded worker. Returns
/// the busiest worker's total.
pub fn list_schedule_makespan(units: &[f64], workers: usize) -> f64 {
    let mut load = vec![0.0f64; workers.max(1)];
    for &u in units {
        let argmin = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .expect("at least one worker")
            .0;
        load[argmin] += u;
    }
    load.iter().cloned().fold(0.0, f64::max)
}

/// Per-unit busy times for row-chunked CSR on a `workers`-thread pool:
/// the same `(n / (T*8)).max(64)` row chunks the rayon kernel would
/// create, each timed as a sequential sweep of its rows.
fn csr_unit_times(csr: &CsrMatrix<f32>, x: &[f32], workers: usize) -> Vec<f64> {
    let n = csr.nrows();
    let chunk = (n / (workers.max(1) * 8)).max(64);
    let mut scratch = vec![0.0f32; chunk];
    (0..n.div_ceil(chunk))
        .map(|c| {
            let r0 = c * chunk;
            let r1 = (r0 + chunk).min(n);
            unit_ns(|| {
                for (r, slot) in (r0..r1).zip(scratch.iter_mut()) {
                    let (cols, vals) = csr.row(r);
                    let mut acc = 0.0f32;
                    for (j, v) in cols.iter().zip(vals) {
                        acc += v * x[*j as usize];
                    }
                    *slot = acc;
                }
            })
        })
        .collect()
}

/// Per-unit busy times for merge-path CSR: its actual
/// `workers × PARTITIONS_PER_THREAD` partitions, each timed via
/// [`MergeCsrMatrix::partition_spmv`] into a scratch slice.
fn merge_unit_times(m: &MergeCsrMatrix<f32>, x: &[f32], workers: usize) -> Vec<f64> {
    let bounds = m.partition_points(workers.max(1) * PARTITIONS_PER_THREAD);
    let mut scratch = vec![0.0f32; m.nrows()];
    bounds
        .windows(2)
        .map(|w| {
            let (lo, hi) = (w[0], w[1]);
            let out = &mut scratch[lo.0..hi.0];
            unit_ns(|| {
                std::hint::black_box(m.partition_spmv(lo, hi, x, out));
            })
        })
        .collect()
}

/// Runs one case: builds every format once, then measures.
fn run_case(name: &str, coo: &CooMatrix<f32>, cfg: &SpmvBenchConfig) -> CaseReport {
    let stats = MatrixStats::compute(coo);
    let csr = CsrMatrix::from_coo(coo);
    let mcsr = MergeCsrMatrix::from_coo(coo);
    let ell = EllMatrix::from_coo(coo).ok();
    let sell = SellMatrix::from_coo(coo);
    let x: Vec<f32> = (0..coo.ncols())
        .map(|i| 1.0 + (i % 7) as f32 * 0.125)
        .collect();
    let mut y = vec![0.0f32; coo.nrows()];

    let wall = |kernel: &dyn Spmv<f32>, y: &mut [f32]| {
        kernel.spmv_par(&x, y); // warm-up
        median(
            (0..cfg.trials)
                .map(|_| time_ns(|| kernel.spmv_par(&x, y)))
                .collect(),
        )
    };
    let wall_csr_ns = wall(&csr, &mut y);
    let wall_mcsr_ns = wall(&mcsr, &mut y);
    let wall_ell_ns = ell.as_ref().map_or(f64::INFINITY, |e| wall(e, &mut y));
    let wall_sell_ns = wall(&sell, &mut y);

    let points = cfg
        .workers
        .iter()
        .map(|&t| MakespanPoint {
            workers: t,
            makespan_csr_ns: median(
                (0..cfg.trials)
                    .map(|_| list_schedule_makespan(&csr_unit_times(&csr, &x, t), t))
                    .collect(),
            ),
            makespan_mcsr_ns: median(
                (0..cfg.trials)
                    .map(|_| list_schedule_makespan(&merge_unit_times(&mcsr, &x, t), t))
                    .collect(),
            ),
        })
        .collect();

    CaseReport {
        name: name.into(),
        dim: coo.nrows(),
        nnz: coo.nnz(),
        row_cv: stats.row_cv,
        ell_fill: ell.as_ref().map_or(0.0, |e| e.fill_ratio()),
        sell_fill: sell.fill_ratio(),
        wall_csr_ns,
        wall_mcsr_ns,
        wall_ell_ns,
        wall_sell_ns,
        points,
    }
}

/// Scale-free matrix with harmonic row degrees (`~n/(r+1)` entries in
/// row `r`): the adversarial case for row-chunked CSR, whose leading
/// chunk holds almost all the work.
fn harmonic_power_law(n: usize) -> CooMatrix<f32> {
    let mut t = Vec::new();
    for r in 0..n {
        let deg = (n / (r + 1)).clamp(1, n / 2);
        for k in 0..deg {
            t.push((r, (r + k * 3 + 1) % n, 1.0 + (k % 7) as f32 * 0.25));
        }
    }
    CooMatrix::from_triplets(n, n, &t).expect("indices in range")
}

/// Runs the full sweep.
pub fn run_spmv_bench(cfg: &SpmvBenchConfig) -> SpmvBenchReport {
    let cases = vec![
        run_case("power_law", &harmonic_power_law(cfg.dim), cfg),
        run_case("varied_band", &varied_band_rows(cfg.dim, cfg.seed), cfg),
        run_case(
            "uniform_rows",
            &generate(MatrixClass::UniformRows, cfg.dim, cfg.seed),
            cfg,
        ),
    ];

    let case = |name: &str| -> &CaseReport {
        cases.iter().find(|c| c.name == name).expect("case present")
    };
    let pl4 = case("power_law")
        .points
        .iter()
        .find(|p| p.workers == 4)
        .expect("worker count 4 is always swept");
    let vb = case("varied_band");
    let gates = Gates {
        mcsr_over_csr_makespan_at4: pl4.makespan_csr_ns / pl4.makespan_mcsr_ns,
        sell_over_ell_wall: vb.wall_ell_ns / vb.wall_sell_ns,
    };

    SpmvBenchReport {
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        methodology: "wall = median spmv_par wall-clock (single-core host, sequential \
                      rayon stand-in); makespan = each kernel's own scheduling units \
                      timed sequentially (best of 3) and greedily list-scheduled onto \
                      T simulated workers — 1-core hosts cannot show load-balance wins \
                      in wall-clock, so merge-vs-CSR is judged on makespan"
            .into(),
        cases,
        gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_scheduling_balances_equal_units() {
        // 8 equal units on 4 workers: two each.
        let units = [1.0; 8];
        assert_eq!(list_schedule_makespan(&units, 4), 2.0);
        // One mega-unit dominates no matter the worker count.
        let skewed = [10.0, 1.0, 1.0, 1.0];
        assert_eq!(list_schedule_makespan(&skewed, 4), 10.0);
        // Degenerate worker counts serialise.
        assert_eq!(list_schedule_makespan(&units, 1), 8.0);
    }

    #[test]
    fn merge_units_are_even_where_csr_units_are_not() {
        // On a harmonic power-law matrix the CSR row chunks differ by
        // orders of magnitude in nnz while merge partitions are equal
        // by construction — check the *structural* shares, not timings.
        let coo = harmonic_power_law(2048);
        let csr = CsrMatrix::from_coo(&coo);
        let m = MergeCsrMatrix::from_coo(&coo);
        let t = 4;
        let chunk = (csr.nrows() / (t * 8)).max(64);
        let row_ptr = csr.row_ptr();
        let chunk_nnz: Vec<usize> = (0..csr.nrows().div_ceil(chunk))
            .map(|c| {
                let r0 = c * chunk;
                let r1 = (r0 + chunk).min(csr.nrows());
                row_ptr[r1] - row_ptr[r0]
            })
            .collect();
        let max = *chunk_nnz.iter().max().unwrap() as f64;
        let mean = coo.nnz() as f64 / chunk_nnz.len() as f64;
        assert!(max > 4.0 * mean, "CSR chunks should be badly skewed");

        let bounds = m.partition_points(t * PARTITIONS_PER_THREAD);
        let total = m.nrows() + m.nnz();
        for w in bounds.windows(2) {
            let share = (w[1].0 - w[0].0) + (w[1].1 - w[0].1);
            let ideal = total / (t * PARTITIONS_PER_THREAD);
            assert!(share <= ideal + 1, "merge shares stay equal");
        }
    }

    #[test]
    fn quick_sweep_produces_finite_numbers_and_gates() {
        let cfg = SpmvBenchConfig {
            dim: 1024,
            trials: 1,
            workers: vec![1, 4],
            seed: 7,
        };
        let r = run_spmv_bench(&cfg);
        assert_eq!(r.cases.len(), 3);
        for c in &r.cases {
            assert!(c.wall_csr_ns > 0.0 && c.wall_csr_ns.is_finite());
            assert!(c.wall_sell_ns > 0.0 && c.wall_sell_ns.is_finite());
            for p in &c.points {
                assert!(p.makespan_csr_ns > 0.0 && p.makespan_csr_ns.is_finite());
                assert!(p.makespan_mcsr_ns > 0.0 && p.makespan_mcsr_ns.is_finite());
            }
        }
        assert!(r.gates.mcsr_over_csr_makespan_at4.is_finite());
        assert!(r.gates.sell_over_ell_wall > 0.0);
        let json = r.to_json();
        assert!(json.contains("mcsr_over_csr_makespan_at4"));
        assert!(!r.render().is_empty());
    }
}
