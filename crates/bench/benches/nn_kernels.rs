//! Criterion benches for the GEMM compute core: naive vs GEMM-backed
//! convolution at the paper's 128x128 input size, single-sample vs
//! batched CNN prediction, and per-sample vs batched training steps.
//! Run with `CRITERION_FULL=1 cargo bench -p dnnspmv-bench --bench
//! nn_kernels` when citing numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnnspmv_nn::layers::{Conv2d, Dense};
use dnnspmv_nn::{
    build_cnn, train_step, train_step_reference, BatchTrainState, CnnConfig, Merging, Optimizer,
    OptimizerKind, Sample, Tensor,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let vol: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..vol).map(|_| rng.random::<f32>() - 0.5).collect())
}

/// Figure 10's first tower layer on the paper-sized input: a 3x3x16
/// convolution over one 128x128 channel. The headline perf claim of
/// the GEMM rewrite is measured here.
fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let conv = Conv2d::new(1, 16, 3, 1, &mut rng);
    let x = rand_tensor(&[1, 128, 128], &mut rng);
    let mut group = c.benchmark_group("conv2d_forward_128x128_3x3x16");
    group.bench_function("naive", |b| {
        b.iter(|| black_box(conv.forward_reference(black_box(&x))))
    });
    group.bench_function("gemm", |b| {
        b.iter(|| black_box(conv.forward(black_box(&x))))
    });
    group.finish();

    // Deeper mid-network layer: many input channels, strided.
    let conv2 = Conv2d::new(16, 32, 3, 2, &mut rng);
    let x2 = rand_tensor(&[16, 64, 64], &mut rng);
    let mut group = c.benchmark_group("conv2d_forward_64x64_3x3x16to32_s2");
    group.bench_function("naive", |b| {
        b.iter(|| black_box(conv2.forward_reference(black_box(&x2))))
    });
    group.bench_function("gemm", |b| {
        b.iter(|| black_box(conv2.forward(black_box(&x2))))
    });
    group.finish();
}

/// Dense layer at the head's width: single-vector matvec vs the naive
/// loop, and a batch pushed through one GEMM.
fn bench_dense_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dense = Dense::new(1024, 32, &mut rng);
    let x = rand_tensor(&[1024], &mut rng);
    let batch: Vec<Tensor> = (0..32).map(|_| rand_tensor(&[1024], &mut rng)).collect();
    let mut group = c.benchmark_group("dense_forward_1024x32");
    group.bench_function("naive", |b| {
        b.iter(|| black_box(dense.forward_reference(black_box(&x))))
    });
    group.bench_function("gemm", |b| {
        b.iter(|| black_box(dense.forward(black_box(&x))))
    });
    group.bench_function("gemm_batch32", |b| {
        b.iter(|| black_box(dense.forward_batch(black_box(&batch))))
    });
    group.finish();
}

/// Whole-network inference: N sequential `predict` calls vs one
/// `predict_batch` over the same N samples (the acceptance target is
/// batched <= N singles from N = 8 up).
fn bench_predict_batched(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let net = build_cnn(
        Merging::Late,
        2,
        (32, 32),
        4,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 7,
        },
    );
    let samples: Vec<Vec<Tensor>> = (0..32)
        .map(|_| (0..2).map(|_| rand_tensor(&[32, 32], &mut rng)).collect())
        .collect();
    let mut group = c.benchmark_group("cnn_predict");
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("single_x", n), &n, |b, &n| {
            b.iter(|| {
                for s in &samples[..n] {
                    black_box(net.predict(black_box(s)));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            let refs: Vec<&[Tensor]> = samples[..n].iter().map(|s| s.as_slice()).collect();
            b.iter(|| black_box(net.predict_batch(black_box(&refs))))
        });
    }
    group.finish();
}

/// Whole training step: the per-sample reference loop vs the batched
/// GEMM path (one forward/backward per batch, single optimiser
/// update). The acceptance target is batched >= 2x at batch 32.
fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let net0 = build_cnn(
        Merging::Late,
        2,
        (32, 32),
        4,
        &CnnConfig {
            conv_channels: [4, 8, 8],
            hidden: 16,
            seed: 7,
        },
    );
    let samples: Vec<Sample> = (0..32)
        .map(|i| Sample {
            channels: (0..2).map(|_| rand_tensor(&[32, 32], &mut rng)).collect(),
            label: i % 4,
        })
        .collect();
    let mut group = c.benchmark_group("cnn_train_step");
    for &n in &[8usize, 32] {
        let batch: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            let mut net = net0.clone();
            let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
            let mut accum = net.zero_grads();
            b.iter(|| {
                black_box(train_step_reference(
                    &mut net, &samples, &batch, &mut opt, &mut accum,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            let mut net = net0.clone();
            let mut opt = Optimizer::new(&mut net, OptimizerKind::adam(), 1e-3, false);
            let mut state = BatchTrainState::new(&net);
            b.iter(|| black_box(train_step(&mut net, &samples, &batch, &mut opt, &mut state)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_conv_forward, bench_dense_forward, bench_predict_batched, bench_train_step
}
criterion_main!(benches);
