//! Criterion benches: real SpMV kernel timings per format on
//! representative matrix structures.
//!
//! These ground the analytic cost model: the *winner* the model picks
//! for each structural family should usually win in real wall-clock on
//! the host too (banded -> DIA, uniform-row -> ELL, scattered -> CSR,
//! hypersparse -> COO). Criterion prints per-format times; compare
//! with `repro table1`'s model rankings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dnnspmv_gen::{generate, MatrixClass};
use dnnspmv_sparse::{AnyMatrix, SparseFormat, Spmv};
use std::hint::black_box;

fn bench_formats(c: &mut Criterion) {
    let cases = [
        (MatrixClass::Banded, "banded"),
        (MatrixClass::UniformRows, "uniform_rows"),
        (MatrixClass::Random, "scattered"),
        (MatrixClass::PowerLaw, "power_law"),
        (MatrixClass::Block, "blocked"),
        (MatrixClass::Hypersparse, "hypersparse"),
    ];
    for (class, name) in cases {
        let coo = generate(class, 1024, 42);
        let x: Vec<f32> = (0..coo.ncols())
            .map(|i| 1.0 + (i % 7) as f32 * 0.1)
            .collect();
        let mut y = vec![0.0f32; coo.nrows()];
        let mut group = c.benchmark_group(format!("spmv/{name}"));
        for format in SparseFormat::ALL {
            let Ok(stored) = AnyMatrix::convert(&coo, format) else {
                continue;
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(format.name()),
                &stored,
                |b, m| {
                    b.iter(|| {
                        m.spmv(black_box(&x), black_box(&mut y));
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_parallel_kernels(c: &mut Criterion) {
    // Sequential vs rayon-parallel on a larger banded matrix (on a
    // multi-core host the parallel kernels win; on one core the
    // overhead is visible instead — both are informative).
    let coo = generate(MatrixClass::Banded, 4096, 7);
    let x: Vec<f32> = (0..coo.ncols()).map(|i| (i % 13) as f32).collect();
    let mut y = vec![0.0f32; coo.nrows()];
    let csr = AnyMatrix::convert(&coo, SparseFormat::Csr).expect("CSR always converts");
    let mut group = c.benchmark_group("spmv_parallel/csr_4096");
    group.bench_function("sequential", |b| {
        b.iter(|| csr.spmv(black_box(&x), black_box(&mut y)))
    });
    group.bench_function("rayon", |b| {
        b.iter(|| csr.spmv_par(black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn bench_conversions(c: &mut Criterion) {
    // Format conversion cost (the "format conversion overhead" the
    // paper discusses in §7.6) relative to one SpMV.
    let coo = generate(MatrixClass::Random, 1024, 11);
    let mut group = c.benchmark_group("convert/scattered_1024");
    for format in [
        SparseFormat::Csr,
        SparseFormat::Hyb,
        SparseFormat::Bsr,
        SparseFormat::Csr5,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format.name()),
            &format,
            |b, &f| b.iter(|| black_box(AnyMatrix::convert(black_box(&coo), f).expect("feasible"))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_formats, bench_parallel_kernels, bench_conversions
}
criterion_main!(benches);
