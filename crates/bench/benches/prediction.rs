//! Criterion benches for the §7.6 overhead story: representation
//! extraction, CNN inference, and DT feature extraction + prediction,
//! each relative to one CSR SpMV iteration (benched alongside).

use criterion::{criterion_group, criterion_main, Criterion};
use dnnspmv_core::{samples::make_channels, DtSelector, FormatSelector, SelectorConfig};
use dnnspmv_gen::{generate, Dataset, DatasetSpec, MatrixClass};
use dnnspmv_nn::TrainConfig;
use dnnspmv_platform::{label_dataset, PlatformModel};
use dnnspmv_repr::{MatrixRepr, ReprConfig, ReprKind};
use dnnspmv_sparse::{CsrMatrix, Spmv};
use dnnspmv_tree::features;
use std::hint::black_box;

fn bench_prediction_overhead(c: &mut Criterion) {
    let matrix = generate(MatrixClass::Random, 1024, 3);
    let repr_config = ReprConfig {
        image_size: 32,
        hist_rows: 32,
        hist_bins: 16,
    };

    // A minimally-trained selector: inference cost only depends on
    // structure.
    let data = Dataset::generate(&DatasetSpec {
        n_base: 40,
        n_augmented: 0,
        dim_min: 48,
        dim_max: 96,
        ..DatasetSpec::default()
    });
    let intel = PlatformModel::intel_cpu();
    let labels = label_dataset(&data.matrices, &intel);
    let cfg = SelectorConfig {
        repr_config,
        train: TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
        ..SelectorConfig::default()
    };
    let (cnn, _) =
        FormatSelector::train_with_labels(&data.matrices, &labels, intel.formats().to_vec(), &cfg);
    let dt = DtSelector::train(&data.matrices, &labels, intel.formats().to_vec());

    let csr = CsrMatrix::from_coo(&matrix);
    let x = vec![1.0f32; matrix.ncols()];
    let mut y = vec![0.0f32; matrix.nrows()];
    let channels = make_channels(&matrix, ReprKind::Histogram, &repr_config);

    let mut group = c.benchmark_group("overhead_1024");
    group.bench_function("csr_spmv_one_iteration", |b| {
        b.iter(|| csr.spmv(black_box(&x), black_box(&mut y)))
    });
    group.bench_function("histogram_extraction", |b| {
        b.iter(|| {
            black_box(MatrixRepr::extract(
                black_box(&matrix),
                ReprKind::Histogram,
                &repr_config,
            ))
        })
    });
    group.bench_function("cnn_inference", |b| {
        b.iter(|| black_box(cnn.net.forward(black_box(&channels))))
    });
    // Batched inference over 32 matrices: per-matrix overhead is this
    // time divided by 32 (compare against `cnn_inference` to see the
    // batching amortisation).
    let batch: Vec<&[dnnspmv_nn::Tensor]> = (0..32).map(|_| channels.as_slice()).collect();
    group.bench_function("cnn_inference_batched_32", |b| {
        b.iter(|| black_box(cnn.net.forward_batch(black_box(&batch))))
    });
    group.bench_function("dt_features", |b| {
        b.iter(|| black_box(features(black_box(&matrix))))
    });
    group.bench_function("dt_end_to_end_predict", |b| {
        b.iter(|| black_box(dt.predict_label(black_box(&matrix))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_prediction_overhead
}
criterion_main!(benches);
