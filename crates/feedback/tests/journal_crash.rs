//! Crash-safety proof for the feedback journal: every corruption a
//! crash or bit rot can produce must replay to the intact prefix with
//! an honest counter — never a panic, never silently absorbed.

use dnnspmv_core::SelectionSource;
use dnnspmv_feedback::journal::SEGMENT_MAGIC;
use dnnspmv_feedback::{replay, FeedbackRecord, JournalConfig, JournalWriter};
use dnnspmv_nn::Tensor;
use dnnspmv_sparse::SparseFormat;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dnnspmv-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn record(seq: u64) -> FeedbackRecord {
    FeedbackRecord {
        seq,
        fingerprint: 7 * seq + 1,
        generation: 2,
        chosen: SparseFormat::Csr,
        source: SelectionSource::Cnn,
        measured_best: SparseFormat::Ell,
        timings: vec![(SparseFormat::Csr, 3.0e-6), (SparseFormat::Ell, 2.0e-6)],
        channels: vec![Tensor::from_vec(&[2, 3], vec![0.5; 6])],
        nrows: 32,
        ncols: 32,
        nnz: 96,
    }
}

fn write_records(dir: &Path, n: u64) {
    let mut w = JournalWriter::open(dir, JournalConfig::default()).unwrap();
    for i in 0..n {
        w.append(&record(i)).unwrap();
    }
    w.sync().unwrap();
}

fn only_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "dnj"))
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1);
    segs.remove(0)
}

#[test]
fn torn_tail_from_a_crash_mid_append_recovers_the_prefix() {
    let dir = tmp_dir("torn");
    write_records(&dir, 5);
    let seg = only_segment(&dir);
    // Simulate the process dying partway through the 6th append: a
    // complete header promising more payload than ever hit the disk.
    let mut bytes = fs::read(&seg).unwrap();
    bytes.extend_from_slice(&500u32.to_le_bytes());
    bytes.extend_from_slice(&0xfeed_face_dead_beefu64.to_le_bytes());
    bytes.extend_from_slice(b"{\"seq\":99,\"trunc");
    fs::write(&seg, &bytes).unwrap();

    let (records, report) = replay(&dir).unwrap();
    assert_eq!(records.len(), 5, "every intact prefix record recovered");
    assert_eq!(report.corrupt_records, 0);
    assert_eq!(report.torn_tail_bytes, 12 + 16, "header + partial payload");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }

    // Reopening the writer repairs the tail, and appends land cleanly
    // after the surviving records — not behind garbage.
    let mut w = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
    assert_eq!(w.repaired_bytes(), 28);
    w.append(&record(5)).unwrap();
    drop(w);
    let (records, report) = replay(&dir).unwrap();
    assert_eq!(records.len(), 6);
    assert_eq!(report.torn_tail_bytes, 0, "the tail was repaired on open");
    assert_eq!(records[5].seq, 5);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_is_skipped_and_counted_not_fatal() {
    let dir = tmp_dir("flip");
    write_records(&dir, 4);
    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    // Flip one payload bit in the SECOND record: walk one frame past
    // the magic, then corrupt a byte inside the next frame's payload.
    let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let second_frame = SEGMENT_MAGIC.len() + 12 + first_len;
    let target = second_frame + 12 + 5;
    bytes[target] ^= 0x10;
    fs::write(&seg, &bytes).unwrap();

    let (records, report) = replay(&dir).unwrap();
    assert_eq!(report.corrupt_records, 1, "the flip is surfaced");
    assert_eq!(records.len(), 3, "records after the corrupt one survive");
    let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, vec![0, 2, 3], "exactly the flipped record is lost");
    assert_eq!(report.torn_tail_bytes, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_recovers_whole_records_before_the_cut() {
    let dir = tmp_dir("trunc");
    write_records(&dir, 5);
    let seg = only_segment(&dir);
    let bytes = fs::read(&seg).unwrap();
    // Cut the file mid-way through the 4th record's payload.
    let mut off = SEGMENT_MAGIC.len();
    for _ in 0..3 {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 12 + len;
    }
    let cut = off + 12 + 7;
    fs::write(&seg, &bytes[..cut]).unwrap();

    let (records, report) = replay(&dir).unwrap();
    assert_eq!(records.len(), 3);
    assert_eq!(report.torn_tail_bytes, (cut - off) as u64);
    assert_eq!(report.corrupt_records, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncation_inside_the_magic_marks_the_segment_torn() {
    let dir = tmp_dir("magic");
    write_records(&dir, 2);
    let seg = only_segment(&dir);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..4]).unwrap();
    let (records, report) = replay(&dir).unwrap();
    assert!(records.is_empty());
    assert_eq!(report.torn_segments, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn insane_declared_length_is_a_torn_tail_not_an_allocation() {
    let dir = tmp_dir("length");
    write_records(&dir, 2);
    let seg = only_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    // A "record" claiming 3 GiB: the length field itself is garbage,
    // so everything from here on is untrusted tail.
    bytes.extend_from_slice(&(3u32 << 30).to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    fs::write(&seg, &bytes).unwrap();
    let (records, report) = replay(&dir).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(report.torn_tail_bytes, 12);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_spanning_segments_only_loses_the_damaged_one() {
    let dir = tmp_dir("multi");
    {
        let mut w = JournalWriter::open(
            &dir,
            JournalConfig {
                max_segment_bytes: 1, // one record per segment
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..4 {
            w.append(&record(i)).unwrap();
        }
    }
    // Destroy the second segment's magic entirely.
    let mut segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    fs::write(&segs[1], b"garbage").unwrap();

    let (records, report) = replay(&dir).unwrap();
    assert_eq!(report.torn_segments, 1);
    assert_eq!(records.len(), 3, "other segments are unaffected");
    let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, vec![0, 2, 3]);
    let _ = fs::remove_dir_all(&dir);
}
