//! Failpoint-driven fault tests for the feedback lane: a full disk
//! sheds samples (counted, typed), the journal replays exactly the
//! successful appends, and dropped drift comparisons only slow the
//! accumulation of evidence. Compiled only with the `chaos` feature;
//! the registry is process-global, so tests serialise on a mutex.
#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex, MutexGuard};

use dnnspmv_core::{Selection, SelectionSource};
use dnnspmv_feedback::{
    replay, DriftConfig, DriftDetector, FeedbackError, FeedbackRecord, FeedbackSampler,
    JournalConfig, JournalWriter, ModelTimer, SamplerConfig,
};
use dnnspmv_nn::Tensor;
use dnnspmv_obs::Registry;
use dnnspmv_platform::PlatformModel;
use dnnspmv_sparse::{CooMatrix, SparseFormat};

static CHAOS: Mutex<()> = Mutex::new(());

fn armed(seed: u64, schedule: &str) -> MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    dnnspmv_chaos::configure_str(seed, schedule).expect("schedule parses");
    guard
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("dnnspmv-fb-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn record(seq: u64) -> FeedbackRecord {
    FeedbackRecord {
        seq,
        fingerprint: 0xF00D + seq,
        generation: 0,
        chosen: SparseFormat::Csr,
        source: SelectionSource::Cnn,
        measured_best: SparseFormat::Csr,
        timings: vec![(SparseFormat::Csr, 1e-6), (SparseFormat::Coo, 2e-6)],
        channels: vec![Tensor::from_vec(&[2, 2], vec![0.0, 1.0, 0.5, 0.25])],
        nrows: 8,
        ncols: 8,
        nnz: 8,
    }
}

fn tridiagonal(n: usize) -> CooMatrix<f32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0f32));
        if i + 1 < n {
            t.push((i, i + 1, -1.0));
        }
    }
    CooMatrix::from_triplets(n, n, &t).unwrap()
}

#[test]
fn journal_replays_exactly_the_successful_appends() {
    let guard = armed(41, "feedback.journal.append=err@every(2)");
    let dir = tmp_dir("append");
    let mut writer = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
    let mut ok = 0usize;
    for seq in 0..10 {
        match writer.append(&record(seq)) {
            Ok(()) => ok += 1,
            Err(FeedbackError::StorageFull(_)) => {}
            Err(other) => panic!("injected ENOSPC must stay typed, got {other:?}"),
        }
    }
    assert_eq!(ok, 5, "every(2) fails every second append");
    drop(writer);
    dnnspmv_chaos::deactivate();
    drop(guard);

    let (records, report) = replay(&dir).unwrap();
    assert_eq!(records.len(), ok, "replay recovers exactly the successes");
    assert_eq!(report.corrupt_records, 0);
    assert_eq!(report.torn_segments, 0);
}

#[test]
fn sampler_sheds_and_counts_when_the_disk_fills() {
    // The append failpoint fires on the sampler's worker thread — the
    // lane must shed the sample, bump the dedicated counter and keep
    // draining rather than treating ENOSPC as a structural failure.
    let guard = armed(43, "feedback.journal.append=err");
    let dir = tmp_dir("sampler-full");
    let reg = Registry::new();
    let drift = Arc::new(DriftDetector::new(Default::default(), &reg));
    let timer = Arc::new(ModelTimer::new(PlatformModel::intel_cpu()));
    let sampler: FeedbackSampler<f32> = FeedbackSampler::new(
        SamplerConfig {
            sample_every: 1,
            queue_capacity: 64,
            ..Default::default()
        },
        JournalWriter::open(&dir, JournalConfig::default()).unwrap(),
        drift,
        timer,
        &reg,
    );
    let tap = sampler.tap();
    let m = Arc::new(tridiagonal(48));
    let sel = Selection {
        format: SparseFormat::Csr,
        source: SelectionSource::Cnn,
        confidence: Some(0.9),
    };
    for _ in 0..6 {
        tap.observe(&m, &sel, 0);
    }
    sampler.flush();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("feedback_sampled_total", &[]), Some(6));
    assert_eq!(snap.counter("feedback_appended_total", &[]), Some(0));
    assert_eq!(snap.counter("feedback_storage_full_total", &[]), Some(6));
    drop(sampler);
    dnnspmv_chaos::deactivate();
    drop(guard);

    let (records, report) = replay(&dir).unwrap();
    assert!(records.is_empty(), "nothing landed on the full disk");
    assert_eq!(report.corrupt_records, 0, "shedding never corrupts");
}

#[test]
fn dropped_drift_comparisons_only_slow_evidence() {
    let guard = armed(47, "feedback.drift.record=err@every(2)");
    let reg = Registry::new();
    let drift = DriftDetector::new(
        DriftConfig {
            window: 16,
            min_samples: 4,
            threshold: 0.7,
        },
        &reg,
    );
    for _ in 0..8 {
        drift.record(true);
    }
    dnnspmv_chaos::deactivate();
    drop(guard);
    let snap = reg.snapshot();
    assert_eq!(
        snap.gauge("feedback_drift_window_samples", &[]),
        Some(4),
        "every second comparison was dropped, not miscounted"
    );
    assert_eq!(snap.counter("feedback_drift_tripped_total", &[]), Some(0));
}
