//! Guarded promotion: hot-reload a candidate, watch it, roll it back.
//!
//! Shadow evaluation ([`crate::evolve`]) is judged on *held-out journal
//! records* — the best evidence available before promotion, but still
//! historical. The [`PromotionGuard`] covers the gap: it snapshots the
//! incumbent's rolling drift accuracy as the baseline, hot-reloads the
//! candidate, resets the drift window, and from then on compares fresh
//! post-promotion accuracy against the baseline. If the promoted model
//! does *worse* than what it replaced (beyond the margin, with enough
//! fresh samples), the guard reloads the previous artefact — at most
//! once, so a flapping workload cannot ping-pong generations.

use crate::drift::DriftDetector;
use crate::error::FeedbackError;
use dnnspmv_core::SelectorServer;
use dnnspmv_obs::Counter;
use dnnspmv_sparse::Scalar;
use std::path::{Path, PathBuf};

/// Guard tuning.
#[derive(Debug, Clone, Copy)]
pub struct PromotionConfig {
    /// Roll back when post-promotion accuracy falls below
    /// `baseline - margin`.
    pub margin: f64,
    /// Fresh comparisons required before the guard judges at all.
    pub min_samples: usize,
}

impl Default for PromotionConfig {
    fn default() -> Self {
        Self {
            margin: 0.1,
            min_samples: 16,
        }
    }
}

/// One [`PromotionGuard::check`] verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Not enough post-promotion samples yet.
    Watching,
    /// Post-promotion accuracy is holding up.
    Healthy,
    /// Accuracy fell below the baseline by more than the margin; the
    /// previous generation was reloaded.
    RolledBack {
        /// Pre-promotion rolling accuracy.
        baseline: f64,
        /// Post-promotion rolling accuracy that forced the rollback.
        current: f64,
    },
}

/// Watches one promotion (see module docs).
#[derive(Debug)]
pub struct PromotionGuard {
    previous: PathBuf,
    baseline: f64,
    cfg: PromotionConfig,
    rollbacks: Counter,
    rolled_back: bool,
}

impl PromotionGuard {
    /// Promotes `candidate` onto `server`: snapshots the incumbent's
    /// rolling accuracy as the baseline, hot-reloads the candidate
    /// artefact, and resets the drift window so the new model is
    /// judged on fresh evidence. `previous` must be the incumbent's
    /// artefact path — the rollback target. Returns the guard and the
    /// new model generation.
    pub fn promote<S: Scalar>(
        server: &SelectorServer<S>,
        drift: &DriftDetector,
        candidate: &Path,
        previous: &Path,
        cfg: PromotionConfig,
    ) -> Result<(Self, u64), FeedbackError> {
        let baseline = drift.accuracy();
        let generation = server
            .reload_model(candidate)
            .map_err(FeedbackError::Reload)?;
        drift.reset();
        Ok((
            Self {
                previous: previous.to_path_buf(),
                baseline,
                cfg,
                rollbacks: server.registry().counter("feedback_rollback_total", &[]),
                rolled_back: false,
            },
            generation,
        ))
    }

    /// Pre-promotion baseline accuracy.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Judges the promotion against fresh drift evidence, rolling back
    /// (once) if the promoted model is doing worse than the baseline
    /// by more than the margin. Call this periodically — e.g. from the
    /// same cadence that reads the drift gauges.
    pub fn check<S: Scalar>(
        &mut self,
        server: &SelectorServer<S>,
        drift: &DriftDetector,
    ) -> Result<GuardVerdict, FeedbackError> {
        if self.rolled_back {
            return Ok(GuardVerdict::Healthy);
        }
        if drift.samples() < self.cfg.min_samples {
            return Ok(GuardVerdict::Watching);
        }
        let current = drift.accuracy();
        if current >= self.baseline - self.cfg.margin {
            return Ok(GuardVerdict::Healthy);
        }
        server
            .reload_model(&self.previous)
            .map_err(FeedbackError::Reload)?;
        drift.reset();
        self.rollbacks.inc();
        self.rolled_back = true;
        Ok(GuardVerdict::RolledBack {
            baseline: self.baseline,
            current,
        })
    }

    /// Whether this guard has already rolled back.
    pub fn rolled_back(&self) -> bool {
        self.rolled_back
    }
}
