//! Crash-safe append-only feedback journal.
//!
//! The journal is the loop's source of truth: every sampled request
//! lands here as one self-describing record, and the trainer replays it
//! later — possibly after a crash mid-append. The discipline mirrors
//! the PR 3 artefact envelopes (checksummed payloads, atomic renames),
//! adapted from one-document files to an append-only log:
//!
//! * **Framing** — each record is `[u32 LE payload length]`
//!   `[u64 LE FNV-1a64(payload)]` `[JSON payload]`. The checksum uses
//!   the same `dnnspmv-fingerprint` hasher the envelopes pin.
//! * **Segments** — records append to `segment-NNNNNN.dnj`; when a
//!   segment exceeds the size budget the writer rotates to the next
//!   index. New segments are created atomically (magic written to a
//!   temp file, fsynced, renamed into place, directory fsynced), so a
//!   crash during rotation never leaves a half-named segment.
//! * **Torn tails** — a crash mid-append leaves a trailing partial
//!   frame. [`replay`] stops a segment at the first incomplete frame
//!   and reports the bytes it ignored; [`JournalWriter::open`]
//!   truncates the same tail so new records never append behind
//!   garbage. A *complete* frame whose checksum mismatches (bit rot)
//!   is skipped and counted — framing is intact, so later records are
//!   still recovered.
//!
//! Replay never panics on any byte sequence: every malformed shape maps
//! to a counter in [`ReplayReport`].

use crate::error::FeedbackError;
use crate::record::FeedbackRecord;
use dnnspmv_fingerprint::fnv1a64;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"dnnspmvJ";

/// Hard cap on one record's payload; a declared length beyond this is
/// treated as a torn tail (the length field itself is garbage).
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of frame header: payload length + checksum.
const HEADER_BYTES: u64 = 12;

/// Journal tuning.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes (checked after each append, so one record may overshoot).
    pub max_segment_bytes: u64,
    /// `fsync` the segment after every append. Off by default: the
    /// loop tolerates losing the last few records on power failure,
    /// and per-record fsync would gate the sampler lane on disk
    /// latency. Rotation always fsyncs regardless.
    pub sync_each_append: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self {
            max_segment_bytes: 16 * 1024 * 1024,
            sync_each_append: false,
        }
    }
}

fn segment_name(index: u64) -> String {
    format!("segment-{index:06}.dnj")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("segment-")?.strip_suffix(".dnj")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Sorted `(index, path)` list of the segments present in `dir`.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, FeedbackError> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_name) {
            found.push((idx, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Creates `dir/segment_name(index)` atomically: magic goes to a temp
/// file first, which is fsynced and renamed into place; the directory
/// is fsynced so the rename itself survives a crash.
fn create_segment_atomic(dir: &Path, index: u64) -> Result<PathBuf, FeedbackError> {
    let final_path = dir.join(segment_name(index));
    let tmp_path = dir.join(format!(".{}.tmp", segment_name(index)));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(SEGMENT_MAGIC)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Walks `bytes` (a segment's contents after the magic) and returns the
/// byte length of the intact-frame prefix — the offset the writer can
/// safely append at. Complete frames with bad checksums still count as
/// intact here: their framing is trustworthy, and replay will skip
/// them individually.
fn intact_prefix_len(bytes: &[u8]) -> u64 {
    let mut off = 0usize;
    loop {
        let rest = &bytes[off..];
        if rest.len() < HEADER_BYTES as usize {
            return off as u64;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_RECORD_BYTES || rest.len() < HEADER_BYTES as usize + len {
            return off as u64;
        }
        off += HEADER_BYTES as usize + len;
    }
}

/// What one [`replay`] pass recovered and what it had to discard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Segments visited (torn ones included).
    pub segments: usize,
    /// Records recovered.
    pub records: usize,
    /// Complete frames dropped for a checksum mismatch or an
    /// undecodable payload (bit rot within a record).
    pub corrupt_records: usize,
    /// Trailing bytes ignored as torn (crash mid-append), summed over
    /// all segments.
    pub torn_tail_bytes: u64,
    /// Segments whose header never checked out (missing or wrong
    /// magic); their contents are not trusted at all.
    pub torn_segments: usize,
}

/// Replays every segment in `dir` in index order, recovering all intact
/// records. Never panics and never errors on malformed *content* —
/// only on filesystem failures reaching the files at all. A missing
/// directory replays as empty (the loop simply has not run yet).
pub fn replay(dir: &Path) -> Result<(Vec<FeedbackRecord>, ReplayReport), FeedbackError> {
    let mut report = ReplayReport::default();
    let mut records = Vec::new();
    if !dir.exists() {
        return Ok((records, report));
    }
    for (_, path) in list_segments(dir)? {
        report.segments += 1;
        let bytes = fs::read(&path)?;
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            report.torn_segments += 1;
            continue;
        }
        let body = &bytes[SEGMENT_MAGIC.len()..];
        let mut off = 0usize;
        loop {
            let rest = &body[off..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < HEADER_BYTES as usize {
                report.torn_tail_bytes += rest.len() as u64;
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            if len > MAX_RECORD_BYTES || rest.len() < HEADER_BYTES as usize + len as usize {
                report.torn_tail_bytes += rest.len() as u64;
                break;
            }
            let payload = &rest[HEADER_BYTES as usize..HEADER_BYTES as usize + len as usize];
            off += HEADER_BYTES as usize + len as usize;
            if fnv1a64(payload) != sum {
                report.corrupt_records += 1;
                continue;
            }
            // The vendored serde_json parses from `&str`; a checksum-
            // valid payload that is not UTF-8 still counts as corrupt.
            match std::str::from_utf8(payload)
                .ok()
                .and_then(|s| serde_json::from_str::<FeedbackRecord>(s).ok())
            {
                Some(r) => {
                    records.push(r);
                    report.records += 1;
                }
                None => report.corrupt_records += 1,
            }
        }
    }
    Ok((records, report))
}

/// Append handle over the journal directory.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    cfg: JournalConfig,
    file: File,
    segment_index: u64,
    /// Bytes in the current segment, magic included.
    segment_bytes: u64,
    /// Torn-tail bytes truncated while opening (0 on a clean open).
    repaired_bytes: u64,
}

impl JournalWriter {
    /// Opens the journal at `dir` (created if absent), resuming the
    /// highest-numbered segment. A torn tail left by a crash
    /// mid-append is truncated away before the first new append; the
    /// number of repaired bytes is observable via
    /// [`JournalWriter::repaired_bytes`].
    pub fn open(dir: &Path, cfg: JournalConfig) -> Result<Self, FeedbackError> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let (segment_index, path, fresh) = match segments.last() {
            Some((idx, path)) => (*idx, path.clone(), false),
            None => (0, create_segment_atomic(dir, 0)?, true),
        };
        let mut repaired = 0u64;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let keep = if !fresh {
            if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                return Err(FeedbackError::Journal(format!(
                    "segment {} has no valid header; refusing to append to it",
                    path.display()
                )));
            }
            let body_keep = intact_prefix_len(&bytes[SEGMENT_MAGIC.len()..]);
            let keep = SEGMENT_MAGIC.len() as u64 + body_keep;
            repaired = bytes.len() as u64 - keep;
            keep
        } else {
            bytes.len() as u64
        };
        if repaired > 0 {
            file.set_len(keep)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(keep))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            file,
            segment_index,
            segment_bytes: keep,
            repaired_bytes: repaired,
        })
    }

    /// Torn-tail bytes truncated when this writer opened.
    pub fn repaired_bytes(&self) -> u64 {
        self.repaired_bytes
    }

    /// Index of the segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Appends one record (length-prefixed, checksummed), rotating to a
    /// fresh segment afterwards if the size budget is exceeded.
    pub fn append(&mut self, record: &FeedbackRecord) -> Result<(), FeedbackError> {
        let payload = serde_json::to_string(record)
            .map_err(|e| FeedbackError::Serde(e.to_string()))?
            .into_bytes();
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(FeedbackError::Journal(format!(
                "record payload of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_RECORD_BYTES
            )));
        }
        // One contiguous write per record: a crash can tear the frame
        // (repaired on replay/open) but can never interleave frames.
        let mut frame = Vec::with_capacity(HEADER_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::JOURNAL_APPEND,
            Err(FeedbackError::StorageFull(
                "chaos: injected ENOSPC on journal append".into()
            ))
        );
        self.file.write_all(&frame)?;
        self.file.flush()?;
        if self.cfg.sync_each_append {
            dnnspmv_chaos::failpoint!(
                dnnspmv_chaos::sites::JOURNAL_FSYNC,
                Err(FeedbackError::Io(std::io::Error::other(
                    "chaos: injected fsync failure on journal append"
                )))
            );
            self.file.sync_all()?;
        }
        self.segment_bytes += frame.len() as u64;
        if self.segment_bytes > self.cfg.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Forces the current segment to stable storage.
    pub fn sync(&mut self) -> Result<(), FeedbackError> {
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::JOURNAL_FSYNC,
            Err(FeedbackError::Io(std::io::Error::other(
                "chaos: injected fsync failure on journal sync"
            )))
        );
        self.file.sync_all()?;
        Ok(())
    }

    /// Seals the current segment (fsync) and starts the next one
    /// atomically.
    pub fn rotate(&mut self) -> Result<(), FeedbackError> {
        // Injected before any state changes: a failed rotation keeps
        // the writer appending to the current (oversized) segment,
        // which replay handles like any other segment.
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::JOURNAL_ROTATE,
            Err(FeedbackError::StorageFull(
                "chaos: injected storage-full on segment rotation".into()
            ))
        );
        self.file.sync_all()?;
        self.segment_index += 1;
        let path = create_segment_atomic(&self.dir, self.segment_index)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.segment_bytes = SEGMENT_MAGIC.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::tests::sample_record;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dnnspmv-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_records_across_rotation() {
        let dir = tmp_dir("rot");
        let mut w = JournalWriter::open(
            &dir,
            JournalConfig {
                max_segment_bytes: 1, // rotate after every record
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            w.append(&sample_record(i)).unwrap();
        }
        assert!(w.segment_index() >= 4, "rotation must have happened");
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(report.records, 5);
        assert_eq!(report.corrupt_records, 0);
        assert_eq!(report.torn_tail_bytes, 0);
        assert!(report.segments >= 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_the_last_segment() {
        let dir = tmp_dir("resume");
        {
            let mut w = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
            w.append(&sample_record(0)).unwrap();
        }
        {
            let mut w = JournalWriter::open(&dir, JournalConfig::default()).unwrap();
            assert_eq!(w.repaired_bytes(), 0);
            w.append(&sample_record(1)).unwrap();
        }
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.segments, 1, "no spurious rotation on reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_replays_empty() {
        let dir = tmp_dir("absent");
        let (records, report) = replay(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, ReplayReport::default());
    }
}
