//! The journal's record type: one sampled serve, ground-truthed.

use dnnspmv_core::SelectionSource;
use dnnspmv_nn::Tensor;
use dnnspmv_sparse::SparseFormat;
use serde::{Deserialize, Serialize};

/// One sampled request: what the selector served, what measurement says
/// it should have served, and everything needed to fine-tune on the
/// disagreement later (the extracted representation channels double as
/// the training input, so the trainer never needs the original matrix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackRecord {
    /// Sampler-assigned sequence number (monotone per process).
    pub seq: u64,
    /// Structural fingerprint of the matrix (the decision-cache key).
    pub fingerprint: u64,
    /// Model generation that served the request.
    pub generation: u64,
    /// Format the selector served.
    pub chosen: SparseFormat,
    /// Which rung served it.
    pub source: SelectionSource,
    /// Measured-fastest format over the candidate set.
    pub measured_best: SparseFormat,
    /// Per-format times in seconds (infeasible formats are absent —
    /// JSON cannot carry `inf`).
    pub timings: Vec<(SparseFormat, f64)>,
    /// Extracted representation channels (the CNN input).
    pub channels: Vec<Tensor>,
    /// Matrix shape, for audits and filtering.
    pub nrows: usize,
    /// Matrix shape, for audits and filtering.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
}

impl FeedbackRecord {
    /// Whether the served format agreed with the measured label.
    pub fn hit(&self) -> bool {
        self.chosen == self.measured_best
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A small, valid record for journal tests.
    pub(crate) fn sample_record(seq: u64) -> FeedbackRecord {
        FeedbackRecord {
            seq,
            fingerprint: 0xdead_beef ^ seq,
            generation: 1,
            chosen: SparseFormat::Csr,
            source: SelectionSource::Cnn,
            measured_best: SparseFormat::Dia,
            timings: vec![(SparseFormat::Csr, 2.5e-6), (SparseFormat::Dia, 1.5e-6)],
            channels: vec![Tensor::from_vec(&[2, 2], vec![0.0, 1.0, 2.0, 3.0])],
            nrows: 64,
            ncols: 64,
            nnz: 128,
        }
    }

    #[test]
    fn hit_compares_chosen_to_measured() {
        let mut r = sample_record(0);
        assert!(!r.hit());
        r.measured_best = SparseFormat::Csr;
        assert!(r.hit());
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample_record(3);
        let text = serde_json::to_string(&r).unwrap();
        let back: FeedbackRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }
}
