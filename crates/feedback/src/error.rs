//! Typed errors for the feedback loop.

use dnnspmv_core::{SelectorError, ServeError};
use std::fmt;

/// Everything the feedback pipeline can fail with.
#[derive(Debug)]
pub enum FeedbackError {
    /// Filesystem failure touching the journal directory or segments.
    Io(std::io::Error),
    /// The device ran out of space mid-write (`ENOSPC`). Split from
    /// [`FeedbackError::Io`] so the sampling lane can shed-and-count a
    /// full disk (losing samples is the design) instead of treating it
    /// like a structural failure.
    StorageFull(String),
    /// A structural journal problem that is not plain I/O (bad segment
    /// name, oversized record, missing directory).
    Journal(String),
    /// A record failed to serialize (never expected; defence in depth
    /// around `serde_json`).
    Serde(String),
    /// Too few usable journal records to fine-tune from.
    InsufficientRecords {
        /// Usable records found.
        have: usize,
        /// Configured minimum.
        need: usize,
    },
    /// The shadow gate held: the candidate did not beat the incumbent
    /// by the configured margin, so nothing was promoted.
    GateRejected {
        /// Incumbent accuracy on the held-out records.
        incumbent: f64,
        /// Candidate accuracy on the held-out records.
        candidate: f64,
        /// Required margin.
        margin: f64,
    },
    /// Selector training, validation or persistence failed.
    Selector(SelectorError),
    /// A hot reload (promotion or rollback) was rejected by the server.
    Reload(ServeError),
}

impl fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackError::Io(e) => write!(f, "journal I/O: {e}"),
            FeedbackError::StorageFull(m) => write!(f, "storage full: {m}"),
            FeedbackError::Journal(m) => write!(f, "journal: {m}"),
            FeedbackError::Serde(m) => write!(f, "record serialization: {m}"),
            FeedbackError::InsufficientRecords { have, need } => {
                write!(f, "only {have} usable journal records (need {need})")
            }
            FeedbackError::GateRejected {
                incumbent,
                candidate,
                margin,
            } => write!(
                f,
                "shadow gate rejected candidate: {candidate:.3} vs incumbent {incumbent:.3} \
                 (margin {margin:.3})"
            ),
            FeedbackError::Selector(e) => write!(f, "selector: {e}"),
            FeedbackError::Reload(e) => write!(f, "reload: {e}"),
        }
    }
}

impl std::error::Error for FeedbackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedbackError::Io(e) => Some(e),
            FeedbackError::Selector(e) => Some(e),
            FeedbackError::Reload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FeedbackError {
    fn from(e: std::io::Error) -> Self {
        if dnnspmv_nn::is_storage_full(&e) {
            FeedbackError::StorageFull(e.to_string())
        } else {
            FeedbackError::Io(e)
        }
    }
}

impl From<SelectorError> for FeedbackError {
    fn from(e: SelectorError) -> Self {
        FeedbackError::Selector(e)
    }
}
