//! Closed-loop online learning for the format selector.
//!
//! The paper's "continuous evolvement" (Section 6) only pays off in
//! production if the deployed selector keeps learning from the traffic
//! it serves. This crate closes that loop over the pieces the workspace
//! already has — measured labelling (`dnnspmv-platform`), checkpointed
//! transfer training (`dnnspmv-nn`), validated hot reload and serving
//! (`dnnspmv-core`), metrics (`dnnspmv-obs`) — with the robustness
//! rules that make it safe to leave running:
//!
//! 1. **Sampling never slows serving** — [`FeedbackSampler`] hangs off
//!    the server's [`ServeTap`](dnnspmv_core::ServeTap) seam: an atomic
//!    tick per answer, a bounded queue, and a shed counter when the
//!    background lane falls behind.
//! 2. **The journal survives crashes** — [`JournalWriter`] appends
//!    length-prefixed, FNV-1a64-checksummed records to atomically
//!    rotated segments; [`replay`] recovers every intact prefix record
//!    from any torn or bit-flipped state, never panicking.
//! 3. **Drift is observable before it hurts** — [`DriftDetector`]
//!    compares served formats to measured labels in a rolling window,
//!    exported as permille gauges with a latched, edge-counted trip.
//! 4. **Nothing is promoted on faith** — [`evolve`] fine-tunes a
//!    candidate from the journal and shadow-scores it on held-out
//!    recent records; only a candidate beating the incumbent by a
//!    margin passes, and [`PromotionGuard`] still watches the live
//!    rollout, rolling back automatically if fresh accuracy falls
//!    below the pre-promotion baseline.

pub mod drift;
pub mod error;
pub mod evolve;
pub mod journal;
pub mod promote;
pub mod record;
pub mod sampler;

pub use drift::{DriftConfig, DriftDetector};
pub use error::FeedbackError;
pub use evolve::{evolve, usable_samples, EvolveConfig, ShadowReport};
pub use journal::{replay, JournalConfig, JournalWriter, ReplayReport, MAX_RECORD_BYTES};
pub use promote::{GuardVerdict, PromotionConfig, PromotionGuard};
pub use record::FeedbackRecord;
pub use sampler::{FeedbackSampler, ModelTimer, SamplerConfig, SpmvTimer};
