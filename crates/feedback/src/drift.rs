//! Drift detection: rolling selector-accuracy against measured labels.
//!
//! Every journaled record carries both the served format and the
//! measured-fastest one, so accuracy against ground truth is free. The
//! detector keeps the last `window` comparisons in a ring, exports the
//! rolling accuracy as a permille gauge (`feedback_drift_accuracy`),
//! and latches a trip once accuracy sinks below the threshold with
//! enough samples in the window. Tripping is edge-counted
//! (`feedback_drift_tripped_total`), so an operator can tell one long
//! excursion from repeated flapping.

use dnnspmv_obs::{Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Drift-detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Rolling window length (comparisons kept).
    pub window: usize,
    /// Minimum comparisons in the window before the trip threshold is
    /// armed — a two-sample window must not page anyone.
    pub min_samples: usize,
    /// Trip when rolling accuracy drops below this fraction.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 256,
            min_samples: 32,
            threshold: 0.7,
        }
    }
}

#[derive(Debug)]
struct DriftInner {
    ring: VecDeque<bool>,
    hits: usize,
    tripped: bool,
}

/// Rolling accuracy window with a latched trip (see module docs).
#[derive(Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    inner: Mutex<DriftInner>,
    accuracy_gauge: Gauge,
    samples_gauge: Gauge,
    tripped_total: Counter,
}

impl DriftDetector {
    /// Builds a detector whose gauges live in `registry`.
    pub fn new(cfg: DriftConfig, registry: &Registry) -> Self {
        Self {
            cfg,
            inner: Mutex::new(DriftInner {
                ring: VecDeque::new(),
                hits: 0,
                tripped: false,
            }),
            accuracy_gauge: registry.gauge("feedback_drift_accuracy", &[("unit", "permille")]),
            samples_gauge: registry.gauge("feedback_drift_window_samples", &[]),
            tripped_total: registry.counter("feedback_drift_tripped_total", &[]),
        }
    }

    /// Records one comparison (`hit`: served format == measured best).
    pub fn record(&self, hit: bool) {
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::DRIFT_RECORD) {
            // An injected recording failure drops this comparison; the
            // window simply accumulates evidence more slowly.
            return;
        }
        let mut d = self.inner.lock().expect("drift lock");
        if d.ring.len() == self.cfg.window.max(1) && d.ring.pop_front() == Some(true) {
            d.hits -= 1;
        }
        d.ring.push_back(hit);
        if hit {
            d.hits += 1;
        }
        let acc = d.hits as f64 / d.ring.len() as f64;
        self.accuracy_gauge.set_permille(acc);
        self.samples_gauge.set(d.ring.len() as i64);
        if !d.tripped && d.ring.len() >= self.cfg.min_samples && acc < self.cfg.threshold {
            d.tripped = true;
            self.tripped_total.inc();
        }
    }

    /// Rolling accuracy (1.0 on an empty window — no evidence of
    /// drift is not evidence of drift).
    pub fn accuracy(&self) -> f64 {
        let d = self.inner.lock().expect("drift lock");
        if d.ring.is_empty() {
            1.0
        } else {
            d.hits as f64 / d.ring.len() as f64
        }
    }

    /// Comparisons currently in the window.
    pub fn samples(&self) -> usize {
        self.inner.lock().expect("drift lock").ring.len()
    }

    /// Whether the trip has latched since the last reset.
    pub fn tripped(&self) -> bool {
        self.inner.lock().expect("drift lock").tripped
    }

    /// Clears the window and the latch — called at promotion, so
    /// post-promotion accuracy is judged on fresh evidence only.
    pub fn reset(&self) {
        let mut d = self.inner.lock().expect("drift lock");
        d.ring.clear();
        d.hits = 0;
        d.tripped = false;
        self.accuracy_gauge.set_permille(1.0);
        self.samples_gauge.set(0);
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> f64 {
        self.cfg.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(window: usize, min: usize, threshold: f64) -> (DriftDetector, Registry) {
        let reg = Registry::new();
        let d = DriftDetector::new(
            DriftConfig {
                window,
                min_samples: min,
                threshold,
            },
            &reg,
        );
        (d, reg)
    }

    #[test]
    fn trips_below_threshold_only_with_enough_samples() {
        let (d, _reg) = detector(8, 4, 0.7);
        d.record(false);
        d.record(false);
        assert!(!d.tripped(), "below min_samples");
        d.record(false);
        d.record(false);
        assert!(d.tripped(), "4 misses in a 4-sample window");
        assert_eq!(d.accuracy(), 0.0);
    }

    #[test]
    fn window_slides_and_recovers_accuracy() {
        let (d, _) = detector(4, 2, 0.5);
        for _ in 0..4 {
            d.record(false);
        }
        for _ in 0..4 {
            d.record(true);
        }
        assert_eq!(d.accuracy(), 1.0, "old misses slid out");
        assert!(d.tripped(), "the trip latches through recovery");
        d.reset();
        assert!(!d.tripped());
        assert_eq!(d.samples(), 0);
        assert_eq!(d.accuracy(), 1.0);
    }

    #[test]
    fn gauges_export_permille_and_trip_edges() {
        let (d, reg) = detector(4, 2, 0.9);
        d.record(true);
        d.record(false);
        let acc = reg
            .snapshot()
            .gauge("feedback_drift_accuracy", &[("unit", "permille")])
            .expect("accuracy gauge");
        assert_eq!(acc, 500);
        // Re-tripping without a reset does not re-count.
        d.record(false);
        d.record(false);
        let trips = |r: &Registry| {
            r.snapshot()
                .counter("feedback_drift_tripped_total", &[])
                .unwrap_or(0)
        };
        assert_eq!(trips(&reg), 1);
        d.reset();
        for _ in 0..2 {
            d.record(false);
        }
        assert_eq!(trips(&reg), 2, "a fresh excursion counts again");
    }
}
