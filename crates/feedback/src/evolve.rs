//! Fine-tuning from the journal, gated by shadow evaluation.
//!
//! The trainer never trusts itself: a candidate fine-tuned from journal
//! records is *scored* against the incumbent on a held-out slice of the
//! most recent records (the traffic the promoted model would actually
//! face), and only a candidate beating the incumbent by a configurable
//! margin passes the gate. Training itself reuses the transfer
//! machinery (continuous/top evolvement, PR 3 checkpoints via
//! `TrainConfig`), so a crash mid-fine-tune resumes from the last
//! epoch checkpoint like any other training run.

use crate::error::FeedbackError;
use crate::record::FeedbackRecord;
use dnnspmv_core::FormatSelector;
use dnnspmv_nn::{Migration, Sample, TrainConfig, TrainReport};
use serde::Serialize;

/// Evolve-pass tuning.
#[derive(Debug, Clone)]
pub struct EvolveConfig {
    /// Transfer strategy for the fine-tune.
    pub strategy: Migration,
    /// Training hyper-parameters (checkpoint fields included).
    pub train: TrainConfig,
    /// Fraction of usable records held out for shadow scoring, taken
    /// from the *most recent* end of the journal.
    pub holdout_frac: f64,
    /// Minimum usable records before an evolve pass is attempted.
    pub min_records: usize,
    /// Candidate must beat the incumbent's holdout accuracy by this
    /// much to pass the gate.
    pub margin: f64,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        Self {
            strategy: Migration::ContinuousEvolvement,
            train: TrainConfig::default(),
            holdout_frac: 0.25,
            min_records: 32,
            margin: 0.05,
        }
    }
}

/// Outcome of one shadow evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct ShadowReport {
    /// Records that passed the usability filter.
    pub usable_records: usize,
    /// Records the candidate trained on.
    pub train_records: usize,
    /// Held-out records both models were scored on.
    pub holdout_records: usize,
    /// Incumbent accuracy on the holdout.
    pub incumbent_accuracy: f64,
    /// Candidate accuracy on the holdout.
    pub candidate_accuracy: f64,
    /// Required margin.
    pub margin: f64,
    /// Whether the candidate passed the gate.
    pub promote: bool,
}

/// Converts journal records to training samples for `selector`,
/// dropping records whose channels or measured label do not fit the
/// selector's contract (wrong channel count/shape after a config
/// change, a measured format outside the candidate set).
pub fn usable_samples(selector: &FormatSelector, records: &[FeedbackRecord]) -> Vec<Sample> {
    let shape = selector
        .config
        .repr_config
        .channel_shape(selector.config.repr);
    records
        .iter()
        .filter_map(|r| {
            if r.channels.len() != selector.net.num_channels {
                return None;
            }
            if r.channels
                .iter()
                .any(|c| c.shape() != [shape.0, shape.1] || c.data().iter().any(|v| !v.is_finite()))
            {
                return None;
            }
            let label = r.measured_best.label_in(&selector.formats)?;
            Some(Sample {
                channels: r.channels.clone(),
                label,
            })
        })
        .collect()
}

/// Fine-tunes `incumbent` on the journal records and shadow-scores the
/// result. Returns the candidate (whether or not it passed the gate)
/// together with the shadow and training reports; the *caller* decides
/// what a failed gate means (the CLI exits non-zero, the closed-loop
/// driver asserts).
pub fn evolve(
    incumbent: &FormatSelector,
    records: &[FeedbackRecord],
    cfg: &EvolveConfig,
) -> Result<(FormatSelector, ShadowReport, TrainReport), FeedbackError> {
    let usable = usable_samples(incumbent, records);
    if usable.len() < cfg.min_records.max(2) {
        return Err(FeedbackError::InsufficientRecords {
            have: usable.len(),
            need: cfg.min_records.max(2),
        });
    }
    dnnspmv_chaos::failpoint!(
        dnnspmv_chaos::sites::EVOLVE_TRAIN,
        Err(FeedbackError::Selector(dnnspmv_core::SelectorError::Io(
            "chaos: injected re-training failure".into()
        )))
    );
    // Hold out the most recent slice: promotion will face *tomorrow's*
    // traffic, and the journal's tail is the closest thing to it.
    let holdout_n = ((usable.len() as f64 * cfg.holdout_frac.clamp(0.0, 0.9)) as usize)
        .clamp(1, usable.len() - 1);
    let split = usable.len() - holdout_n;
    let (train, holdout) = usable.split_at(split);
    let (candidate, train_report) = incumbent.migrate(cfg.strategy, train, &cfg.train);
    let incumbent_accuracy = incumbent.accuracy(holdout);
    let candidate_accuracy = candidate.accuracy(holdout);
    let shadow = ShadowReport {
        usable_records: usable.len(),
        train_records: train.len(),
        holdout_records: holdout.len(),
        incumbent_accuracy,
        candidate_accuracy,
        margin: cfg.margin,
        promote: candidate_accuracy >= incumbent_accuracy + cfg.margin,
    };
    Ok((candidate, shadow, train_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_core::SelectionSource;
    use dnnspmv_nn::Tensor;
    use dnnspmv_sparse::SparseFormat;

    fn record_with(channels: Vec<Tensor>, best: SparseFormat) -> FeedbackRecord {
        FeedbackRecord {
            seq: 0,
            fingerprint: 1,
            generation: 0,
            chosen: SparseFormat::Csr,
            source: SelectionSource::Cnn,
            measured_best: best,
            timings: vec![],
            channels,
            nrows: 8,
            ncols: 8,
            nnz: 8,
        }
    }

    #[test]
    fn usability_filter_drops_contract_violations() {
        use dnnspmv_core::SelectorConfig;
        use dnnspmv_nn::structures::build_cnn;
        let config = SelectorConfig::default();
        let shape = config.repr_config.channel_shape(config.repr);
        let net = build_cnn(
            config.merging,
            config.repr.channels(),
            shape,
            4,
            &config.cnn,
        );
        let selector = FormatSelector {
            net,
            formats: vec![
                SparseFormat::Coo,
                SparseFormat::Csr,
                SparseFormat::Dia,
                SparseFormat::Ell,
            ],
            config,
        };
        let good_channels = || {
            (0..selector.net.num_channels)
                .map(|_| Tensor::zeros(&[shape.0, shape.1]))
                .collect::<Vec<_>>()
        };
        let records = vec![
            record_with(good_channels(), SparseFormat::Csr),
            // Wrong channel count.
            record_with(vec![Tensor::zeros(&[shape.0, shape.1])], SparseFormat::Csr),
            // Wrong shape.
            record_with(
                (0..selector.net.num_channels)
                    .map(|_| Tensor::zeros(&[1, 1]))
                    .collect(),
                SparseFormat::Csr,
            ),
            // Label outside the candidate set.
            record_with(good_channels(), SparseFormat::Bsr),
            // Non-finite channel data.
            record_with(
                (0..selector.net.num_channels)
                    .map(|_| {
                        Tensor::from_vec(&[shape.0, shape.1], {
                            let mut v = vec![0.0f32; shape.0 * shape.1];
                            v[0] = f32::NAN;
                            v
                        })
                    })
                    .collect(),
                SparseFormat::Csr,
            ),
        ];
        let usable = usable_samples(&selector, &records);
        assert_eq!(usable.len(), 1);
        assert_eq!(usable[0].label, 1, "Csr is class 1 in the set");
    }

    #[test]
    fn too_few_records_is_a_typed_error() {
        use dnnspmv_core::SelectorConfig;
        use dnnspmv_nn::structures::build_cnn;
        let config = SelectorConfig::default();
        let shape = config.repr_config.channel_shape(config.repr);
        let net = build_cnn(
            config.merging,
            config.repr.channels(),
            shape,
            2,
            &config.cnn,
        );
        let selector = FormatSelector {
            net,
            formats: vec![SparseFormat::Coo, SparseFormat::Csr],
            config,
        };
        let err = evolve(&selector, &[], &EvolveConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            FeedbackError::InsufficientRecords { have: 0, .. }
        ));
    }
}
