//! Serve-path sampling into the journal, off the hot path.
//!
//! The sampler implements [`ServeTap`]: every served answer costs one
//! atomic tick, and every `sample_every`-th answer is pushed onto a
//! small bounded queue. A single background worker pops items, times
//! the real SpMV across the candidate set, extracts the representation
//! channels and appends a [`FeedbackRecord`] — so the expensive part
//! runs entirely on the sampler's thread. When the queue is full the
//! item is *shed* and counted; sampling can slow serving by at most a
//! queue-lock push.
//!
//! What "timing the real SpMV" means is injected via [`SpmvTimer`]:
//! production uses [`MeasuredLabeller`] (wall-clock medians), while
//! tests and CI use [`ModelTimer`], a deterministic stand-in that
//! scores formats with the platform cost model — its `rotate` knob
//! permutes the cost vector over the format list to simulate an
//! environment change (the labels the selector was trained on stop
//! being the measured best), which is how the closed-loop soak drifts
//! on demand without depending on machine noise.

use crate::drift::DriftDetector;
use crate::journal::JournalWriter;
use crate::record::FeedbackRecord;
use dnnspmv_core::{matrix_fingerprint, samples::make_channels, Selection, ServeTap};
use dnnspmv_obs::{Counter, Gauge, Registry};
use dnnspmv_platform::{MeasuredLabeller, MeasuredTimings, PlatformModel, WorkloadProfile};
use dnnspmv_repr::{ReprConfig, ReprKind};
use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Duration;

/// How a sampled matrix is ground-truthed.
pub trait SpmvTimer<S: Scalar>: Send + Sync {
    /// Per-format scores (lower is better) plus the winner.
    fn time_formats(&self, matrix: &CooMatrix<S>) -> MeasuredTimings;
}

impl<S: Scalar> SpmvTimer<S> for MeasuredLabeller {
    fn time_formats(&self, matrix: &CooMatrix<S>) -> MeasuredTimings {
        self.measure(matrix)
    }
}

/// Deterministic timer backed by the platform cost model. `rotate`
/// cyclically shifts the cost vector over the format list: with
/// `rotate = 0` the model's own winner is the label; any other value
/// relabels deterministically, simulating a platform change underneath
/// a trained selector (the lever the drift tests pull).
#[derive(Debug, Clone)]
pub struct ModelTimer {
    /// Cost model supplying per-format estimates.
    pub platform: PlatformModel,
    /// Candidate formats, in label order.
    pub formats: Vec<SparseFormat>,
    /// Cyclic shift applied to the cost vector (0: faithful model).
    pub rotate: usize,
}

impl ModelTimer {
    /// A faithful (unrotated) timer over the platform's format set.
    pub fn new(platform: PlatformModel) -> Self {
        let formats = platform.formats().to_vec();
        Self {
            platform,
            formats,
            rotate: 0,
        }
    }

    /// The same timer with a different rotation.
    pub fn rotated(&self, rotate: usize) -> Self {
        Self {
            rotate,
            ..self.clone()
        }
    }
}

impl<S: Scalar> SpmvTimer<S> for ModelTimer {
    fn time_formats(&self, matrix: &CooMatrix<S>) -> MeasuredTimings {
        let profile = WorkloadProfile::compute(matrix);
        let k = self.formats.len().max(1);
        let est: Vec<f64> = self
            .formats
            .iter()
            .map(|&f| self.platform.estimate(&profile, f))
            .collect();
        let timings: Vec<(SparseFormat, f64)> = self
            .formats
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, est[(i + self.rotate) % k]))
            .collect();
        let best = timings
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are not NaN"))
            .expect("format set is non-empty")
            .0;
        MeasuredTimings { timings, best }
    }
}

/// Sampler tuning.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Sample every Nth served answer (1: every answer; 0 behaves
    /// as 1).
    pub sample_every: u64,
    /// Bounded queue between the tap and the worker; overflow sheds.
    pub queue_capacity: usize,
    /// Representation to extract for journaled channels (must match
    /// the selector being fine-tuned).
    pub repr: ReprKind,
    /// Representation sizes.
    pub repr_config: ReprConfig,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            sample_every: 16,
            queue_capacity: 64,
            repr: ReprKind::Histogram,
            repr_config: ReprConfig::default(),
        }
    }
}

struct Item<S: Scalar> {
    matrix: Arc<CooMatrix<S>>,
    selection: Selection,
    generation: u64,
}

struct SamplerMetrics {
    sampled: Counter,
    shed: Counter,
    appended: Counter,
    errors: Counter,
    storage_full: Counter,
    queue_depth: Gauge,
}

impl SamplerMetrics {
    fn bind(registry: &Registry) -> Self {
        Self {
            sampled: registry.counter("feedback_sampled_total", &[]),
            shed: registry.counter("feedback_shed_total", &[]),
            appended: registry.counter("feedback_appended_total", &[]),
            errors: registry.counter("feedback_sample_errors_total", &[]),
            storage_full: registry.counter("feedback_storage_full_total", &[]),
            queue_depth: registry.gauge("feedback_queue_depth", &[]),
        }
    }
}

struct SamplerInner<S: Scalar> {
    cfg: SamplerConfig,
    timer: RwLock<Arc<dyn SpmvTimer<S>>>,
    journal: Mutex<JournalWriter>,
    drift: Arc<DriftDetector>,
    queue: Mutex<VecDeque<Item<S>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Items popped but not yet journaled (so `flush` can tell an
    /// empty queue from a quiet one).
    inflight: AtomicU64,
    tick: AtomicU64,
    seq: AtomicU64,
    metrics: SamplerMetrics,
}

impl<S: Scalar> SamplerInner<S> {
    fn worker_loop(&self) {
        loop {
            let item = {
                let mut q = self.queue.lock().expect("sampler queue lock");
                loop {
                    if let Some(item) = q.pop_front() {
                        self.metrics.queue_depth.dec();
                        // Raised before the queue lock drops, so no
                        // instant exists where the item is in neither
                        // the queue nor the in-flight count.
                        self.inflight.fetch_add(1, Ordering::SeqCst);
                        break Some(item);
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.cv.wait(q).expect("sampler queue lock");
                }
            };
            match item {
                Some(item) => {
                    // One poisoned sample must not kill the lane: a
                    // panic in re-timing or extraction is absorbed and
                    // counted, and the worker moves to the next item.
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.process(item)
                    }));
                    if run.is_err() {
                        self.metrics.errors.inc();
                    }
                    self.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                None => return,
            }
        }
    }

    fn process(&self, item: Item<S>) {
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::FEEDBACK_SAMPLER_RETIME) {
            // An injected re-timing failure sheds this sample: no
            // drift comparison, no journal record, one counted error.
            self.metrics.errors.inc();
            return;
        }
        let timer = self.timer.read().expect("timer lock").clone();
        let measured = timer.time_formats(&item.matrix);
        let channels = make_channels(&item.matrix, self.cfg.repr, &self.cfg.repr_config);
        self.drift.record(item.selection.format == measured.best);
        let record = FeedbackRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            fingerprint: matrix_fingerprint(item.matrix.as_ref()),
            generation: item.generation,
            chosen: item.selection.format,
            source: item.selection.source,
            measured_best: measured.best,
            timings: measured
                .timings
                .into_iter()
                .filter(|(_, t)| t.is_finite())
                .collect(),
            channels,
            nrows: item.matrix.nrows(),
            ncols: item.matrix.ncols(),
            nnz: item.matrix.nnz(),
        };
        match self.journal.lock().expect("journal lock").append(&record) {
            Ok(()) => self.metrics.appended.inc(),
            Err(crate::error::FeedbackError::StorageFull(_)) => {
                // A full disk sheds samples by design — the lane keeps
                // draining, and the dedicated counter tells an operator
                // why the journal stopped growing.
                self.metrics.storage_full.inc();
                self.metrics.errors.inc();
            }
            Err(_) => self.metrics.errors.inc(),
        }
    }
}

impl<S: Scalar> ServeTap<S> for SamplerInner<S> {
    fn observe(&self, matrix: &Arc<CooMatrix<S>>, selection: &Selection, generation: u64) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let every = self.cfg.sample_every.max(1);
        if !self
            .tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            return;
        }
        self.metrics.sampled.inc();
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::FEEDBACK_SAMPLER_ENQUEUE) {
            // An injected enqueue failure presents exactly like queue
            // overflow: the sample is shed and counted.
            self.metrics.shed.inc();
            return;
        }
        let mut q = self.queue.lock().expect("sampler queue lock");
        if q.len() >= self.cfg.queue_capacity.max(1) {
            self.metrics.shed.inc();
            return;
        }
        q.push_back(Item {
            matrix: Arc::clone(matrix),
            selection: *selection,
            generation,
        });
        self.metrics.queue_depth.inc();
        drop(q);
        self.cv.notify_one();
    }
}

/// Owner of the sampling lane: holds the tap, the bounded queue and
/// the background worker. Dropping it stops the worker (pending queue
/// items are drained first; post-shutdown observes are no-ops).
pub struct FeedbackSampler<S: Scalar> {
    inner: Arc<SamplerInner<S>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl<S: Scalar> FeedbackSampler<S> {
    /// Starts the sampling lane. Counters and gauges bind into
    /// `registry` (pass the server's so everything exports together);
    /// `drift` is shared so the evolve driver can read it too.
    pub fn new(
        cfg: SamplerConfig,
        journal: JournalWriter,
        drift: Arc<DriftDetector>,
        timer: Arc<dyn SpmvTimer<S>>,
        registry: &Registry,
    ) -> Self {
        let inner = Arc::new(SamplerInner {
            metrics: SamplerMetrics::bind(registry),
            cfg,
            timer: RwLock::new(timer),
            journal: Mutex::new(journal),
            drift,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("dnnspmv-feedback".into())
                .spawn(move || inner.worker_loop())
                .expect("spawn feedback worker")
        };
        Self {
            inner,
            worker: Some(worker),
        }
    }

    /// The tap to attach via `SelectorServer::set_serve_tap`.
    pub fn tap(&self) -> Arc<dyn dnnspmv_core::ServeTap<S>> {
        Arc::clone(&self.inner) as Arc<dyn ServeTap<S>>
    }

    /// Swaps the ground-truth timer (tests rotate the cost model here
    /// to simulate an environment change mid-run).
    pub fn set_timer(&self, timer: Arc<dyn SpmvTimer<S>>) {
        *self.inner.timer.write().expect("timer lock") = timer;
    }

    /// The shared drift detector.
    pub fn drift(&self) -> &Arc<DriftDetector> {
        &self.inner.drift
    }

    /// Blocks until every queued item has been journaled. Intended for
    /// tests and the evolve driver (quiesce before replaying the
    /// journal); serving threads never call this.
    pub fn flush(&self) {
        loop {
            let empty = self
                .inner
                .queue
                .lock()
                .expect("sampler queue lock")
                .is_empty();
            if empty && self.inner.inflight.load(Ordering::SeqCst) == 0 {
                return;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Forces journaled records to stable storage.
    pub fn sync(&self) -> Result<(), crate::error::FeedbackError> {
        self.inner.journal.lock().expect("journal lock").sync()
    }
}

impl<S: Scalar> Drop for FeedbackSampler<S> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{replay, JournalConfig};
    use dnnspmv_core::SelectionSource;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dnnspmv-sampler-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tridiagonal(n: usize) -> CooMatrix<f32> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0f32));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn selection(format: SparseFormat) -> Selection {
        Selection {
            format,
            source: SelectionSource::Cnn,
            confidence: Some(0.9),
        }
    }

    #[test]
    fn samples_every_nth_and_journals_ground_truth() {
        let dir = tmp_dir("nth");
        let reg = Registry::new();
        let drift = Arc::new(DriftDetector::new(Default::default(), &reg));
        let timer = ModelTimer::new(PlatformModel::intel_cpu());
        let sampler: FeedbackSampler<f32> = FeedbackSampler::new(
            SamplerConfig {
                sample_every: 4,
                queue_capacity: 64,
                ..Default::default()
            },
            JournalWriter::open(&dir, JournalConfig::default()).unwrap(),
            drift,
            Arc::new(timer.clone()),
            &reg,
        );
        let tap = sampler.tap();
        let m = Arc::new(tridiagonal(64));
        let truth = SpmvTimer::<f32>::time_formats(&timer, &m).best;
        for _ in 0..16 {
            tap.observe(&m, &selection(truth), 0);
        }
        sampler.flush();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("feedback_sampled_total", &[]), Some(4));
        assert_eq!(snap.counter("feedback_appended_total", &[]), Some(4));
        assert_eq!(snap.counter("feedback_shed_total", &[]), Some(0));
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(report.corrupt_records, 0);
        for r in &records {
            assert_eq!(r.chosen, truth);
            assert_eq!(r.measured_best, truth);
            assert!(r.hit());
            assert!(!r.channels.is_empty());
        }
        assert_eq!(sampler.drift().accuracy(), 1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overflow_sheds_instead_of_blocking() {
        let dir = tmp_dir("shed");
        let reg = Registry::new();
        let drift = Arc::new(DriftDetector::new(Default::default(), &reg));
        let sampler: FeedbackSampler<f32> = FeedbackSampler::new(
            SamplerConfig {
                sample_every: 1,
                queue_capacity: 1,
                ..Default::default()
            },
            JournalWriter::open(&dir, JournalConfig::default()).unwrap(),
            drift,
            Arc::new(ModelTimer::new(PlatformModel::intel_cpu())),
            &reg,
        );
        let tap = sampler.tap();
        let m = Arc::new(tridiagonal(32));
        // Burst faster than the worker can drain a capacity-1 queue.
        for _ in 0..64 {
            tap.observe(&m, &selection(SparseFormat::Csr), 0);
        }
        sampler.flush();
        let snap = reg.snapshot();
        let sampled = snap.counter("feedback_sampled_total", &[]).unwrap();
        let shed = snap.counter("feedback_shed_total", &[]).unwrap();
        let appended = snap.counter("feedback_appended_total", &[]).unwrap();
        assert_eq!(sampled, 64);
        assert_eq!(appended + shed, 64, "every sample either lands or sheds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_changes_the_measured_label() {
        let timer = ModelTimer::new(PlatformModel::intel_cpu());
        let m = tridiagonal(128);
        let base = SpmvTimer::<f32>::time_formats(&timer, &m).best;
        let rotated = SpmvTimer::<f32>::time_formats(&timer.rotated(1), &m).best;
        assert_ne!(base, rotated, "a rotated cost vector must relabel");
    }
}
