//! Property tests for the platform cost models and labellers.

use dnnspmv_platform::{
    best_format, label_dataset, label_dataset_noisy, PlatformModel, WorkloadProfile,
};
use dnnspmv_sparse::{CooMatrix, SparseFormat};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CooMatrix<f32>> {
    (4usize..80, 4usize..80).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 0.1f32..4.0);
        proptest::collection::vec(entry, 1..200)
            .prop_map(move |t| CooMatrix::from_triplets(m, n, &t).expect("in range"))
    })
}

fn platforms() -> [PlatformModel; 3] {
    [
        PlatformModel::intel_cpu(),
        PlatformModel::amd_cpu(),
        PlatformModel::nvidia_gpu(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimates_are_positive_or_infeasible(m in arb_matrix()) {
        let p = WorkloadProfile::compute(&m);
        for plat in platforms() {
            for &f in plat.formats() {
                let e = plat.estimate(&p, f);
                prop_assert!(e > 0.0, "{}: {f} estimated {e}", plat.name);
            }
        }
    }

    #[test]
    fn best_format_is_the_ranking_head(m in arb_matrix()) {
        let p = WorkloadProfile::compute(&m);
        for plat in platforms() {
            let ranking = plat.ranking(&p);
            prop_assert_eq!(ranking[0].0, plat.best_format(&p));
            for w in ranking.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            // The winner must be convertible (limits are mirrored).
            prop_assert!(ranking[0].1.is_finite());
        }
    }

    #[test]
    fn labels_index_into_the_format_set(m in arb_matrix(), sigma in 0.0f64..0.2, seed in 0u64..100) {
        for plat in platforms() {
            let labels = label_dataset_noisy(std::slice::from_ref(&m), &plat, sigma, seed);
            prop_assert!(labels[0] < plat.formats().len());
        }
    }

    #[test]
    fn zero_noise_labels_match_best_format(m in arb_matrix()) {
        for plat in platforms() {
            let l = label_dataset(std::slice::from_ref(&m), &plat)[0];
            prop_assert_eq!(plat.formats()[l], best_format(&m, &plat));
        }
    }

    #[test]
    fn profile_cdf_and_lanes_are_consistent(m in arb_matrix()) {
        let p = WorkloadProfile::compute(&m);
        // CDF is monotone and reaches 1 for nonempty matrices.
        for w in p.dist_cdf.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!((p.dist_within(1e9) - 1.0).abs() < 1e-5);
        // Lane slots bound: at most ndiags * max extent, at least nnz.
        let max_dim = m.nrows().max(m.ncols()) as u64;
        prop_assert!(p.dia_lane_slots <= p.stats.ndiags as u64 * max_dim);
        prop_assert!(p.dia_lane_slots >= m.nnz() as u64);
        // HYB split covers all nonzeros.
        prop_assert!(p.hyb_overflow <= m.nnz());
    }

    #[test]
    fn dia_estimate_scales_with_lane_slots_not_rectangle(seed in 0u64..50) {
        // Two matrices with identical ndiags and nnz but different
        // offsets: the far-offset one has fewer lane slots and must not
        // be costed like the near-offset rectangle.
        let n = 64usize;
        let near: Vec<_> = (0..n - 2).flat_map(|i| [(i, i, 1.0f32), (i, i + 2, 1.0)]).collect();
        let far: Vec<_> = (0..n - 2)
            .flat_map(|i| {
                let j = i + 48;
                if j < n { vec![(i, i, 1.0f32), (i, j, 1.0)] } else { vec![(i, i, 1.0f32)] }
            })
            .collect();
        let near = CooMatrix::from_triplets(n, n, &near).expect("in range");
        let far = CooMatrix::from_triplets(n, n, &far).expect("in range");
        let pn = WorkloadProfile::compute(&near);
        let pf = WorkloadProfile::compute(&far);
        prop_assert!(pf.dia_lane_slots < pn.dia_lane_slots);
        let plat = PlatformModel::intel_cpu();
        let _ = seed;
        prop_assert!(
            plat.estimate(&pf, SparseFormat::Dia) < plat.estimate(&pn, SparseFormat::Dia) * 1.01
        );
    }
}
