//! Measured labelling: time the real kernels on the host machine.
//!
//! This is the paper's actual labelling procedure (Section 3, step 1):
//! run SpMV in every candidate format, repeatedly, and pick the
//! fastest. It grounds the analytic model — the Criterion benches use
//! it to confirm that the model's *winners* usually win for real on the
//! host — at the cost of being machine-dependent and slow, which is why
//! the deterministic model drives the main experiments.

use crate::PlatformModel;
use dnnspmv_sparse::{AnyMatrix, CooMatrix, Scalar, SparseFormat, Spmv};
use std::time::Instant;

/// One matrix's measurement: per-format median times plus the winner.
/// Produced by [`MeasuredLabeller::measure`] so the feedback lane can
/// journal the full timing vector, not just the label.
#[derive(Debug, Clone)]
pub struct MeasuredTimings {
    /// Median SpMV seconds per candidate format (`f64::INFINITY` for
    /// formats the matrix cannot convert to).
    pub timings: Vec<(SparseFormat, f64)>,
    /// The measured-fastest format.
    pub best: SparseFormat,
}

/// Times real kernels to label matrices.
#[derive(Debug, Clone)]
pub struct MeasuredLabeller {
    /// Candidate formats.
    pub formats: Vec<SparseFormat>,
    /// Timed repetitions per format (the paper uses 50; the median is
    /// taken).
    pub trials: usize,
    /// Untimed warm-up repetitions per format.
    pub warmup: usize,
    /// Use the parallel kernels.
    pub parallel: bool,
}

impl Default for MeasuredLabeller {
    fn default() -> Self {
        Self {
            formats: SparseFormat::CPU_SET.to_vec(),
            trials: 9,
            warmup: 2,
            parallel: false,
        }
    }
}

impl MeasuredLabeller {
    /// Median SpMV time in seconds for each candidate format
    /// (`f64::INFINITY` for formats the matrix cannot convert to).
    pub fn time_formats<S: Scalar>(&self, matrix: &CooMatrix<S>) -> Vec<(SparseFormat, f64)> {
        let x: Vec<S> = (0..matrix.ncols())
            .map(|i| S::from_f64(1.0 + (i % 7) as f64 * 0.125))
            .collect();
        let mut y = vec![S::ZERO; matrix.nrows()];
        self.formats
            .iter()
            .map(|&f| {
                let Ok(converted) = AnyMatrix::convert(matrix, f) else {
                    return (f, f64::INFINITY);
                };
                for _ in 0..self.warmup {
                    self.run(&converted, &x, &mut y);
                }
                let mut times: Vec<f64> = (0..self.trials.max(1))
                    .map(|_| {
                        let t0 = Instant::now();
                        self.run(&converted, &x, &mut y);
                        t0.elapsed().as_secs_f64()
                    })
                    .collect();
                times.sort_by(|a, b| a.partial_cmp(b).expect("durations are not NaN"));
                (f, times[times.len() / 2])
            })
            .collect()
    }

    fn run<S: Scalar>(&self, m: &AnyMatrix<S>, x: &[S], y: &mut [S]) {
        if self.parallel {
            m.spmv_par(x, y);
        } else {
            m.spmv(x, y);
        }
    }

    /// Times every candidate and returns the full vector plus winner.
    pub fn measure<S: Scalar>(&self, matrix: &CooMatrix<S>) -> MeasuredTimings {
        let timings = self.time_formats(matrix);
        let best = timings
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are not NaN"))
            .expect("format set is non-empty")
            .0;
        MeasuredTimings { timings, best }
    }

    /// The measured-fastest format.
    pub fn best_format<S: Scalar>(&self, matrix: &CooMatrix<S>) -> SparseFormat {
        self.measure(matrix).best
    }

    /// A labeller matching a platform model's candidate set.
    pub fn for_platform(platform: &PlatformModel) -> Self {
        Self {
            formats: platform.formats().to_vec(),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_are_positive_for_feasible_formats() {
        let n = 256;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0f32));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let lab = MeasuredLabeller::default();
        let times = lab.time_formats(&m);
        assert_eq!(times.len(), 4);
        for (f, t) in &times {
            assert!(*t > 0.0, "{f} got {t}");
            assert!(t.is_finite(), "{f} infeasible on a tridiagonal matrix?");
        }
    }

    #[test]
    fn infeasible_formats_are_skipped_not_crashed() {
        // Anti-diagonal blows the DIA limit.
        let n = 10_000;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let lab = MeasuredLabeller {
            trials: 1,
            warmup: 0,
            ..Default::default()
        };
        let times = lab.time_formats(&m);
        let dia = times
            .iter()
            .find(|(f, _)| *f == SparseFormat::Dia)
            .expect("DIA in CPU set");
        assert!(dia.1.is_infinite());
        let best = lab.best_format(&m);
        assert_ne!(best, SparseFormat::Dia);
    }

    #[test]
    fn for_platform_copies_the_format_set() {
        let gpu = PlatformModel::nvidia_gpu();
        let lab = MeasuredLabeller::for_platform(&gpu);
        assert_eq!(lab.formats, gpu.formats());
    }

    #[test]
    fn manycore_labeller_times_the_new_kernels() {
        // The widened set flows straight through: SELL-C-σ and
        // merge-path CSR get real (finite, positive) timings like
        // everything else, sequential and parallel.
        let n = 512;
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..1 + i % 6 {
                t.push((i, (i + k * 17) % n, 1.0f32 + k as f32));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        for parallel in [false, true] {
            let lab = MeasuredLabeller {
                trials: 3,
                warmup: 1,
                parallel,
                ..MeasuredLabeller::for_platform(&PlatformModel::manycore_cpu())
            };
            let times = lab.time_formats(&m);
            assert_eq!(times.len(), SparseFormat::MANYCORE_SET.len());
            for f in [SparseFormat::Sell, SparseFormat::MergeCsr] {
                let (_, t) = times
                    .iter()
                    .find(|(g, _)| *g == f)
                    .expect("widened set carries the new formats");
                assert!(*t > 0.0 && t.is_finite(), "{f}: {t}");
            }
        }
    }
}
