//! Workload profile: everything the cost model needs about one matrix.

use dnnspmv_sparse::{CooMatrix, MatrixStats, Scalar};
use serde::{Deserialize, Serialize};

/// [`MatrixStats`] plus the format-specific derived quantities the cost
/// model uses: HYB's storage-optimal split (needs the row-length
/// histogram, not just its moments), DIA's exact lane slots (needs the
/// per-diagonal offsets), and the distribution of diagonal distances
/// (drives `x`-gather locality).
///
/// The last two are *spatial* quantities that the SMAT-style scalar
/// features summarise only as means/maxima — which is exactly the
/// information gap between the decision-tree baseline and the CNN's
/// distance-histogram representation that the paper exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Structural statistics.
    pub stats: MatrixStats,
    /// Storage-optimal ELL width for the HYB split (same objective as
    /// `HybMatrix::from_coo`).
    pub hyb_width: usize,
    /// Nonzeros spilling to HYB's COO tail at that width.
    pub hyb_overflow: usize,
    /// Exact DIA lane storage: `sum over occupied diagonals d of
    /// (min(nrows, ncols - off_d) - max(0, -off_d))` — the slots a real
    /// DIA kernel iterates (lanes get shorter away from the main
    /// diagonal).
    pub dia_lane_slots: u64,
    /// `dist_cdf[i]` = fraction of nonzeros with `|col - row| < 2^i`
    /// (i in 0..32). Describes the diagonal-distance distribution the
    /// histogram representation exposes to the CNN.
    pub dist_cdf: Vec<f32>,
}

impl WorkloadProfile {
    /// Fraction of nonzeros whose diagonal distance is below
    /// `threshold` (log-interpolated between the stored powers of two).
    pub fn dist_within(&self, threshold: f64) -> f64 {
        if threshold <= 1.0 {
            return self.dist_cdf[0] as f64;
        }
        let lg = threshold.log2();
        let lo = (lg.floor() as usize).min(31);
        let hi = (lo + 1).min(31);
        let frac = lg - lg.floor();
        (self.dist_cdf[lo] as f64) * (1.0 - frac) + (self.dist_cdf[hi] as f64) * frac
    }

    /// Computes the profile. O(nnz log nnz).
    pub fn compute<S: Scalar>(matrix: &CooMatrix<S>) -> Self {
        let stats = MatrixStats::compute(matrix);
        // Per-diagonal occupancy -> exact lane slots; distance CDF.
        let (m, n) = (matrix.nrows() as i64, matrix.ncols() as i64);
        let mut diag_seen = vec![false; (m + n - 1) as usize];
        let mut dist_counts = [0u64; 32];
        for (r, c, _) in matrix.iter() {
            let off = c as i64 - r as i64;
            diag_seen[(off + m - 1) as usize] = true;
            let dist = off.unsigned_abs();
            // bucket = bit length of dist, so that `dist < 2^i` is
            // exactly `bucket <= i` (bucket 0 holds the main diagonal).
            let bucket = if dist == 0 {
                0
            } else {
                (64 - dist.leading_zeros() as usize).min(31)
            };
            dist_counts[bucket] += 1;
        }
        let mut dia_lane_slots = 0u64;
        for (idx, seen) in diag_seen.iter().enumerate() {
            if *seen {
                let off = idx as i64 - (m - 1);
                let start = (-off).max(0);
                let end = m.min(n - off);
                dia_lane_slots += (end - start).max(0) as u64;
            }
        }
        let mut dist_cdf = vec![0f32; 32];
        let total = matrix.nnz().max(1) as f64;
        let mut acc = 0u64;
        for i in 0..32 {
            acc += dist_counts[i];
            dist_cdf[i] = (acc as f64 / total) as f32;
        }
        let ptr = matrix.row_offsets();
        let max_len = stats.row_max;
        // rows with length >= L, for L in 0..=max_len+1.
        let mut hist = vec![0usize; max_len + 2];
        for r in 0..matrix.nrows() {
            hist[ptr[r + 1] - ptr[r]] += 1;
        }
        let mut at_least = vec![0usize; max_len + 2];
        for len in (0..=max_len).rev() {
            at_least[len] = at_least[len + 1] + hist[len];
        }
        // Cost constants mirror HybMatrix::from_coo for f32 payloads.
        let ell_cost = 8.0; // 4-byte col + 4-byte value
        let coo_cost = 12.0; // two 4-byte indices + value
        let mut best_k = 0usize;
        let mut best = f64::INFINITY;
        let mut covered = 0usize;
        for (k, &al) in at_least.iter().enumerate().take(max_len + 1) {
            if k > 0 {
                covered += al;
            }
            let overflow = stats.nnz - covered;
            let cost = (stats.nrows * k) as f64 * ell_cost + overflow as f64 * coo_cost;
            if cost < best {
                best = cost;
                best_k = k;
            }
        }
        let covered_at_best: usize = (1..=best_k).map(|l| at_least[l]).sum();
        let hyb_overflow = stats.nnz - covered_at_best;
        Self {
            stats,
            hyb_width: best_k,
            hyb_overflow,
            dia_lane_slots,
            dist_cdf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_sparse::HybMatrix;

    #[test]
    fn hyb_split_matches_the_real_format() {
        // The profile's analytic split must agree with what HybMatrix
        // actually builds.
        let mut t: Vec<_> = (1..16)
            .flat_map(|i| [(i, i, 1.0f32), (i, (i + 3) % 16, 1.0)])
            .collect();
        t.extend((0..16).map(|j| (0usize, j, 0.5)));
        let coo = CooMatrix::from_triplets(16, 16, &t).unwrap();
        let p = WorkloadProfile::compute(&coo);
        let hyb = HybMatrix::from_coo(&coo);
        assert_eq!(p.hyb_width, hyb.ell_width());
        assert_eq!(p.hyb_overflow, hyb.coo_nnz());
    }

    #[test]
    fn uniform_rows_have_no_overflow() {
        let t: Vec<_> = (0..32)
            .flat_map(|i| [(i, i, 1.0f32), (i, (i + 7) % 32, 2.0)])
            .collect();
        let coo = CooMatrix::from_triplets(32, 32, &t).unwrap();
        let p = WorkloadProfile::compute(&coo);
        assert_eq!(p.hyb_width, 2);
        assert_eq!(p.hyb_overflow, 0);
    }

    #[test]
    fn empty_matrix_profile_is_degenerate_but_finite() {
        let coo = CooMatrix::<f32>::empty(8, 8).unwrap();
        let p = WorkloadProfile::compute(&coo);
        assert_eq!(p.hyb_width, 0);
        assert_eq!(p.hyb_overflow, 0);
        assert_eq!(p.dia_lane_slots, 0);
        assert!(p.dist_within(100.0) == 0.0);
    }

    #[test]
    fn tridiagonal_lane_slots_are_exact() {
        let n = 64usize;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0f32));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = WorkloadProfile::compute(&coo);
        // Main lane has n slots, the two off-lanes n - 1 each.
        assert_eq!(p.dia_lane_slots, (n + 2 * (n - 1)) as u64);
        // All distances are <= 1.
        assert!((p.dist_within(2.0) - 1.0).abs() < 1e-6);
        // The main diagonal holds n of the 3n-2 entries.
        let main_frac = n as f64 / (3 * n - 2) as f64;
        assert!((p.dist_within(1.0) - main_frac).abs() < 1e-6);
    }

    #[test]
    fn anti_diagonal_distances_are_far() {
        let n = 256usize;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
        let coo = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = WorkloadProfile::compute(&coo);
        // Distances |2i - (n-1)| are mostly large: few entries within 16.
        assert!(p.dist_within(16.0) < 0.1);
        assert!((p.dist_within(4096.0) - 1.0).abs() < 1e-6);
        // Anti-diagonal lanes are short: exactly n^2/2 total slots,
        // half of what the naive ndiags * n rectangle would charge.
        assert_eq!(p.dia_lane_slots, (n * n / 2) as u64);
        assert!(p.dia_lane_slots < (p.stats.ndiags * n) as u64);
    }

    #[test]
    fn dist_cdf_is_monotone() {
        let t: Vec<_> = (0..100)
            .map(|k| ((k * 13) % 100, (k * 57) % 100, 1.0f32))
            .collect();
        let coo = CooMatrix::from_triplets(100, 100, &t).unwrap();
        let p = WorkloadProfile::compute(&coo);
        for w in p.dist_cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((p.dist_cdf[31] - 1.0).abs() < 1e-6);
    }
}
