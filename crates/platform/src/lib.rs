//! Platform models and label collection for format selection.
//!
//! The paper labels each matrix with the format whose SpMV runs fastest
//! on a concrete machine (Table 1: an Intel Xeon E5-4603, an AMD
//! A8-7600, and an NVIDIA GTX TITAN X). We cannot ship those machines,
//! so this crate provides two labellers:
//!
//! * [`PlatformModel`] — an *analytic cost model* in the tradition of
//!   the SpMV analyses the paper cites (Bell & Garland SC'09; Choi et
//!   al. PPoPP'10; Williams et al.): per-format estimates of streamed
//!   bytes, useful work, per-row overhead, cache behaviour of the `x`
//!   gather, GPU warp divergence and atomic costs. Deterministic and
//!   fast, it gives every experiment reproducible per-platform labels,
//!   and — crucially for Section 6 — *different* platforms produce
//!   different labels.
//! * [`measured`] — times the real Rust kernels from `dnnspmv-sparse`
//!   on the host machine, for cross-checking the model's *shape*
//!   against reality (used by the Criterion benches).
//!
//! Absolute times from the model are arbitrary units; only ratios and
//! argmins are meaningful, which is all the experiments use.

pub mod measured;
pub mod model;
pub mod profile;

pub use measured::{MeasuredLabeller, MeasuredTimings};
pub use model::PlatformModel;
pub use profile::WorkloadProfile;

use dnnspmv_sparse::{CooMatrix, Scalar, SparseFormat};
use rayon::prelude::*;

/// The format with the lowest estimated SpMV time on `platform`.
pub fn best_format<S: Scalar>(matrix: &CooMatrix<S>, platform: &PlatformModel) -> SparseFormat {
    let profile = WorkloadProfile::compute(matrix);
    platform.best_format(&profile)
}

/// Labels every matrix (class index into the platform's format set),
/// in parallel.
pub fn label_dataset<S: Scalar>(matrices: &[CooMatrix<S>], platform: &PlatformModel) -> Vec<usize> {
    label_dataset_noisy(matrices, platform, 0.0, 0)
}

/// Labels every matrix with multiplicative log-normal measurement
/// noise of relative magnitude `sigma` applied to each format's time
/// before taking the argmin.
///
/// Real label collection times noisy kernels (the paper runs 50 trials
/// and still notes variance); near-tie matrices therefore carry
/// irreducible label noise that caps *any* predictor's accuracy. The
/// noise is a deterministic hash of `(matrix index, format, seed)`, so
/// labelled datasets stay reproducible.
pub fn label_dataset_noisy<S: Scalar>(
    matrices: &[CooMatrix<S>],
    platform: &PlatformModel,
    sigma: f64,
    seed: u64,
) -> Vec<usize> {
    matrices
        .par_iter()
        .enumerate()
        .map(|(i, m)| {
            let profile = WorkloadProfile::compute(m);
            let best = platform
                .formats()
                .iter()
                .enumerate()
                .map(|(fi, &f)| {
                    let noise = if sigma > 0.0 {
                        (sigma * hash_normal(i as u64, fi as u64, seed)).exp()
                    } else {
                        1.0
                    };
                    (fi, platform.estimate(&profile, f) * noise)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are not NaN"))
                .expect("format set is non-empty");
            best.0
        })
        .collect()
}

/// Deterministic ~N(0, 1) value from a hash (sum of 4 uniforms,
/// variance-corrected; plenty for measurement-noise modelling).
fn hash_normal(a: u64, b: u64, seed: u64) -> f64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(seed.wrapping_mul(0x1656_67B1_9E37_79F9));
    let mut sum = 0.0f64;
    for _ in 0..4 {
        // xorshift64* step.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        sum += u;
    }
    // Sum of 4 U(0,1): mean 2, variance 4/12 -> scale to unit variance.
    (sum - 2.0) / (4.0f64 / 12.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_normal_is_roughly_standard() {
        let n = 4000;
        let vals: Vec<f64> = (0..n).map(|i| hash_normal(i, i % 7, 42)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn zero_sigma_matches_deterministic_labels() {
        let mats: Vec<CooMatrix<f32>> = (0..6)
            .map(|k| {
                let t: Vec<_> = (0..128)
                    .map(|i| (i, (i * (2 * k + 1)) % 128, 1.0f32))
                    .collect();
                CooMatrix::from_triplets(128, 128, &t).unwrap()
            })
            .collect();
        let p = PlatformModel::intel_cpu();
        assert_eq!(
            label_dataset(&mats, &p),
            label_dataset_noisy(&mats, &p, 0.0, 99)
        );
    }

    #[test]
    fn noise_flips_only_near_ties() {
        // A decisively hypersparse matrix (COO wins by an order of
        // magnitude over CSR's per-row overhead) keeps its label under
        // noise; the label function is stable away from crossovers.
        let n = 4096;
        let t: Vec<_> = (0..40)
            .map(|k| ((k * 97) % n, (k * 31) % n, 1.0f32))
            .collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = PlatformModel::intel_cpu();
        let clean = label_dataset(std::slice::from_ref(&m), &p)[0];
        for seed in 0..10 {
            let noisy = label_dataset_noisy(std::slice::from_ref(&m), &p, 0.06, seed)[0];
            assert_eq!(noisy, clean, "seed {seed} flipped a decisive label");
        }
    }

    #[test]
    fn label_dataset_is_consistent_with_best_format() {
        let mats: Vec<CooMatrix<f32>> = (0..4)
            .map(|k| {
                let t: Vec<_> = (0..64).map(|i| (i, (i * (k + 1)) % 64, 1.0f32)).collect();
                CooMatrix::from_triplets(64, 64, &t).unwrap()
            })
            .collect();
        let p = PlatformModel::intel_cpu();
        let labels = label_dataset(&mats, &p);
        for (m, &l) in mats.iter().zip(&labels) {
            assert_eq!(p.formats()[l], best_format(m, &p));
        }
    }
}
