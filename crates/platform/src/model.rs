//! Analytic SpMV cost model, per platform and per format.
//!
//! For each format the model estimates a time in nanoseconds as
//!
//! ```text
//! time = max(stream, compute) + extras + launch
//! ```
//!
//! * `stream` — all bytes the kernel must move (matrix arrays including
//!   padding, the `y` write, the `x` gather with a cache-miss surcharge
//!   when the access window exceeds the platform's effective cache),
//!   divided by memory bandwidth.
//! * `compute` — useful elements processed, divided by the platform's
//!   throughput scaled by how well the format's inner loop vectorises /
//!   coalesces.
//! * `extras` — per-row loop overhead (CSR-likes), atomic or merge
//!   costs (COO, HYB's tail), tile bookkeeping (CSR5), and on GPUs a
//!   warp-divergence multiplier driven by the row-length CV for
//!   row-parallel formats.
//!
//! Absolute numbers are arbitrary; argmins and ratios drive the
//! experiments. Effective cache sizes are scaled down to match the
//! synthetic dataset's working-set sizes (the real machines' caches
//! would trivially hold every test vector; the paper's matrices are up
//! to 10^6 rows).

use crate::profile::WorkloadProfile;
use dnnspmv_sparse::dia::DEFAULT_MAX_DIAGS;
use dnnspmv_sparse::ell::DEFAULT_MAX_WIDTH;
use dnnspmv_sparse::merge_csr::PARTITIONS_PER_THREAD;
use dnnspmv_sparse::sell::DEFAULT_CHUNK;
use dnnspmv_sparse::SparseFormat;
use serde::{Deserialize, Serialize};

/// Value bytes (experiments run in single precision, like the paper).
const VAL_BYTES: f64 = 4.0;
/// Index bytes (u32 indices).
const IDX_BYTES: f64 = 4.0;
/// Row-pointer bytes.
const PTR_BYTES: f64 = 8.0;
/// Cache-line size charged per missing `x` gather.
const LINE_BYTES: f64 = 64.0;
/// CSR5 tile size used for bookkeeping costs.
const TILE_NNZ: f64 = 256.0;

/// An execution platform: hardware parameters plus per-format
/// calibration, and the candidate format set its SpMV library offers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformModel {
    /// Display name (Table 1 row).
    pub name: String,
    /// GPU execution model (coalescing, divergence, expensive atomics).
    pub is_gpu: bool,
    /// Streaming memory bandwidth in GB/s (== bytes per ns).
    pub bw_gbps: f64,
    /// Effective cache for the `x` gather, in bytes (scaled to the
    /// synthetic dataset; see module docs).
    pub cache_bytes: f64,
    /// Worker count (cores or SMs*warps; divides per-row overheads).
    pub cores: f64,
    /// Scalar elements processed per ns at vector width 1.
    pub flops_per_ns: f64,
    /// Sequential per-row loop overhead in ns (CSR-likes).
    pub row_overhead_ns: f64,
    /// Per-update cost of atomic/merge operations in ns (not divided by
    /// cores: contention serialises them).
    pub atomic_ns: f64,
    /// Fraction of the `x` vector the memory system keeps warm around
    /// the streaming front (prefetchers + cache over the active band);
    /// gathers farther than `ncols * locality_frac` from the diagonal
    /// are charged a cache-line miss.
    pub locality_frac: f64,
    /// Load-imbalance coefficient: row-parallel kernels pay a
    /// `1 + divergence * row_cv` multiplier (warp divergence on GPUs,
    /// per-row-chunk scheduling skew on wide CPUs).
    pub divergence: f64,
    /// Fixed kernel-launch cost in ns.
    pub launch_ns: f64,
    /// Per-format multiplicative calibration, indexed by
    /// [`SparseFormat::ALL`] order (library-implementation quality
    /// differs per platform).
    pub bias: [f64; 9],
    /// Candidate formats this platform's library supports.
    formats: Vec<SparseFormat>,
}

impl PlatformModel {
    /// Intel Xeon E5-4603 row of Table 1 (24 cores, 2.4 GHz, 103 GB/s),
    /// running the SMATLib format set.
    pub fn intel_cpu() -> Self {
        Self {
            name: "Intel Xeon E5-4603".into(),
            is_gpu: false,
            bw_gbps: 103.0,
            cache_bytes: 256.0,
            cores: 24.0,
            flops_per_ns: 24.0 * 2.4,
            row_overhead_ns: 4.0,
            atomic_ns: 0.6,
            locality_frac: 0.12,
            divergence: 0.0,
            launch_ns: 0.0,
            bias: [1.0; 9],
            formats: SparseFormat::CPU_SET.to_vec(),
        }
    }

    /// AMD A8-7600 row of Table 1 (4 cores, 3.1 GHz, 25.6 GB/s). The
    /// narrower machine leans harder on regular SIMD-able formats and
    /// has less cache, which shifts a noticeable fraction of labels
    /// relative to the Intel box — the premise of Section 6.
    pub fn amd_cpu() -> Self {
        Self {
            name: "AMD A8-7600".into(),
            is_gpu: false,
            bw_gbps: 25.6,
            cache_bytes: 128.0,
            cores: 4.0,
            flops_per_ns: 4.0 * 3.1,
            row_overhead_ns: 5.0,
            atomic_ns: 0.9,
            locality_frac: 0.06,
            divergence: 0.0,
            launch_ns: 0.0,
            // The A8's SpMV kernels: DIA/ELL relatively better (SIMD
            // carries a 4-core machine), COO relatively worse.
            bias: [1.15, 1.0, 0.82, 0.88, 1.0, 1.0, 1.0, 1.0, 1.0],
            formats: SparseFormat::CPU_SET.to_vec(),
        }
    }

    /// NVIDIA GTX TITAN X row of Table 1, running the cuSPARSE + CSR5
    /// format set.
    pub fn nvidia_gpu() -> Self {
        Self {
            name: "NVIDIA GTX TITAN X".into(),
            is_gpu: true,
            bw_gbps: 168.0,
            cache_bytes: 128.0,
            cores: 3072.0,
            flops_per_ns: 3072.0 * 1.08 * 0.05,
            row_overhead_ns: 24.0,
            atomic_ns: 0.9,
            locality_frac: 0.03,
            divergence: 1.1,
            launch_ns: 20.0,
            bias: [1.0, 0.80, 1.0, 0.90, 1.0, 0.72, 1.10, 1.0, 1.0],
            formats: SparseFormat::GPU_SET.to_vec(),
        }
    }

    /// A wide many-core CPU in the mould of the machines evaluated by
    /// the follow-on SpMV study (arXiv:1805.11938: Intel KNL, Phytium
    /// FT-2000+): 64 narrow cores behind a big shared bandwidth pool.
    /// Its library carries the classic SMATLib set plus the two formats
    /// built for exactly this shape of machine — SELL-C-σ and
    /// merge-path CSR. A non-zero `divergence` models how badly
    /// row-parallel CSR schedules across 64 workers on skewed rows.
    pub fn manycore_cpu() -> Self {
        Self {
            name: "Phytium FT-2000+ (64 cores)".into(),
            is_gpu: false,
            bw_gbps: 140.0,
            cache_bytes: 512.0,
            cores: 64.0,
            flops_per_ns: 64.0 * 2.3,
            row_overhead_ns: 4.0,
            atomic_ns: 0.7,
            locality_frac: 0.10,
            divergence: 1.3,
            launch_ns: 0.0,
            bias: [1.0; 9],
            formats: SparseFormat::MANYCORE_SET.to_vec(),
        }
    }

    /// The candidate format set of this platform's SpMV library.
    pub fn formats(&self) -> &[SparseFormat] {
        &self.formats
    }

    /// Replaces the candidate set (for ablations).
    pub fn with_formats(mut self, formats: Vec<SparseFormat>) -> Self {
        assert!(!formats.is_empty(), "need at least one format");
        self.formats = formats;
        self
    }

    fn bias_of(&self, f: SparseFormat) -> f64 {
        self.bias[f
            .label_in(&SparseFormat::ALL)
            .expect("ALL contains every format")]
    }

    /// Effective vector lanes / coalescing factor of a format's inner
    /// loop on this platform.
    fn lanes(&self, f: SparseFormat) -> f64 {
        if self.is_gpu {
            match f {
                SparseFormat::Ell | SparseFormat::Bsr | SparseFormat::Sell => 8.0,
                SparseFormat::Hyb => 6.0,
                SparseFormat::Csr5 => 6.0,
                SparseFormat::Dia => 8.0,
                SparseFormat::Csr => 2.0,
                SparseFormat::MergeCsr => 4.0,
                SparseFormat::Coo => 1.0,
            }
        } else {
            match f {
                SparseFormat::Dia | SparseFormat::Ell | SparseFormat::Bsr | SparseFormat::Sell => {
                    4.0
                }
                SparseFormat::Csr
                | SparseFormat::Csr5
                | SparseFormat::Hyb
                | SparseFormat::MergeCsr => 2.0,
                SparseFormat::Coo => 1.0,
            }
        }
    }

    /// Extra streamed bytes charged for the indexed `x` gather: a cache
    /// line per access whose diagonal distance exceeds the window the
    /// effective cache keeps warm around the current row. Uses the
    /// profile's exact distance distribution — spatial information the
    /// scalar feature vector only sees as a mean and a maximum.
    fn gather_bytes(&self, p: &WorkloadProfile, accesses: f64) -> f64 {
        let window = (self.cache_bytes / VAL_BYTES).max(p.stats.ncols as f64 * self.locality_frac);
        let miss = 1.0 - p.dist_within(window);
        accesses * miss * LINE_BYTES
    }

    /// Estimated SpMV time in ns for `format`, or `f64::INFINITY` when
    /// the format cannot reasonably represent the matrix (the same
    /// limits the conversion routines enforce).
    pub fn estimate(&self, p: &WorkloadProfile, format: SparseFormat) -> f64 {
        let s = &p.stats;
        let nnz = s.nnz as f64;
        let m = s.nrows as f64;
        let y_bytes = m * VAL_BYTES;
        let per_core_rows = m * self.row_overhead_ns / self.cores;

        let (bytes, elements, extra) = match format {
            SparseFormat::Coo => {
                let b = nnz * (VAL_BYTES + 2.0 * IDX_BYTES) + y_bytes + self.gather_bytes(p, nnz);
                // Atomic / merge updates serialise under contention.
                (b, nnz, nnz * self.atomic_ns)
            }
            SparseFormat::Csr => {
                let b = nnz * (VAL_BYTES + IDX_BYTES)
                    + (m + 1.0) * PTR_BYTES
                    + y_bytes
                    + self.gather_bytes(p, nnz);
                (b, nnz, per_core_rows)
            }
            SparseFormat::Dia => {
                if s.ndiags > DEFAULT_MAX_DIAGS || s.ndiags == 0 {
                    return f64::INFINITY;
                }
                // Exact lane slots: lanes shorten away from the main
                // diagonal (a per-offset quantity the profile tracks).
                let slots = p.dia_lane_slots as f64;
                // Lane data plus a streamed read of x per lane; no
                // index loads, no gather misses.
                let b = 2.0 * slots * VAL_BYTES + y_bytes;
                (b, slots, 0.0)
            }
            SparseFormat::Ell => {
                if s.row_max > DEFAULT_MAX_WIDTH || s.row_max == 0 {
                    return f64::INFINITY;
                }
                let slots = m * s.row_max as f64;
                let b = slots * (VAL_BYTES + IDX_BYTES) + y_bytes + self.gather_bytes(p, slots);
                // Regular (compile-time) trip counts halve the row-loop
                // bookkeeping relative to CSR, but do not remove it.
                (b, slots, 0.5 * per_core_rows)
            }
            SparseFormat::Hyb => {
                let slots = m * p.hyb_width as f64;
                let tail = p.hyb_overflow as f64;
                let b = slots * (VAL_BYTES + IDX_BYTES)
                    + tail * (VAL_BYTES + 2.0 * IDX_BYTES)
                    + y_bytes
                    + self.gather_bytes(p, slots + tail);
                (b, slots + tail, tail * self.atomic_ns + 0.5 * per_core_rows)
            }
            SparseFormat::Bsr => {
                let payload = (s.nblocks * 16) as f64;
                let mb = (s.nrows as f64 / 4.0).ceil();
                let b = payload * VAL_BYTES
                    + s.nblocks as f64 * IDX_BYTES
                    + (mb + 1.0) * PTR_BYTES
                    + y_bytes
                    // One x cache line per block (the 4-wide x slice is
                    // contiguous).
                    + self.gather_bytes(p, s.nblocks as f64);
                (b, payload, mb * self.row_overhead_ns / self.cores)
            }
            SparseFormat::Csr5 => {
                let ntiles = (nnz / TILE_NNZ).ceil();
                let b = nnz * (VAL_BYTES + IDX_BYTES)
                    + (m + 1.0) * PTR_BYTES
                    + ntiles * 8.0
                    + y_bytes
                    + self.gather_bytes(p, nnz);
                // Tile bookkeeping replaces the per-row loop; perfectly
                // load balanced (no divergence below).
                (b, nnz, ntiles * 4.0 * self.row_overhead_ns / self.cores)
            }
            SparseFormat::Sell => {
                if s.row_max == 0 {
                    return f64::INFINITY;
                }
                // Sorted σ-windows pack like-sized rows into each C-row
                // chunk, so total padding collapses from ELL's
                // `m * (row_max - row_mean)` to about
                // `C * (row_max - row_min)` (one telescoping spread
                // across the sorted chunk sequence).
                let slots = nnz + DEFAULT_CHUNK as f64 * (s.row_max - s.row_min) as f64;
                let b = slots * (VAL_BYTES + IDX_BYTES)
                    // Permutation load plus the packed-result scatter
                    // back to original row order.
                    + m * IDX_BYTES
                    + 2.0 * y_bytes
                    + self.gather_bytes(p, slots);
                (b, slots, 0.5 * per_core_rows)
            }
            SparseFormat::MergeCsr => {
                let parts = PARTITIONS_PER_THREAD as f64 * self.cores;
                let b = nnz * (VAL_BYTES + IDX_BYTES)
                    + (m + 1.0) * PTR_BYTES
                    + parts * 16.0
                    + y_bytes
                    + self.gather_bytes(p, nnz);
                // Same row walk as CSR plus the partition searches and
                // carry fixup; immune to skew (no divergence below).
                (
                    b,
                    nnz,
                    per_core_rows + parts * self.row_overhead_ns / self.cores,
                )
            }
        };

        let stream = bytes / self.bw_gbps;
        let compute = elements / (self.flops_per_ns * self.lanes(format));
        let mut time = stream.max(compute) + extra;

        // Row-parallel kernels stall workers on long rows (warps on
        // GPUs, row-chunk schedules on wide CPUs). Moderate variance is
        // absorbed by row batching; the penalty kicks in past cv ~ 0.6
        // (heavy-tailed rows). SELL-C-σ's sorted chunks absorb about
        // half the imbalance; the merge-path kernel is immune by
        // construction.
        let imbalance = self.divergence * (s.row_cv - 0.6).max(0.0);
        match format {
            SparseFormat::Csr => time *= 1.0 + imbalance,
            SparseFormat::Sell => time *= 1.0 + 0.5 * imbalance,
            _ => {}
        }
        // Launch cost is outside the per-format calibration: it is the
        // same driver path for every kernel.
        time * self.bias_of(format) + self.launch_ns
    }

    /// Estimated one-time cost of *converting* a canonical COO matrix
    /// into `format`: read the triplets, write the target arrays
    /// (including padding), plus per-entry bookkeeping (block grouping
    /// and tile setup cost more). Section 7.6 notes conversion "could
    /// take a number of SpMV iterations' time" — this models it.
    pub fn conversion_estimate(&self, p: &WorkloadProfile, format: SparseFormat) -> f64 {
        let s = &p.stats;
        let nnz = s.nnz as f64;
        let m = s.nrows as f64;
        // The canonical matrix is already COO: conversion is free.
        if format == SparseFormat::Coo {
            return 0.0;
        }
        let read = nnz * (VAL_BYTES + 2.0 * IDX_BYTES);
        let (written, per_entry_ns) = match format {
            SparseFormat::Coo => (0.0, 0.0),
            SparseFormat::Csr => (nnz * (VAL_BYTES + IDX_BYTES) + (m + 1.0) * PTR_BYTES, 0.5),
            SparseFormat::Dia => {
                if s.ndiags > DEFAULT_MAX_DIAGS || s.ndiags == 0 {
                    return f64::INFINITY;
                }
                (2.0 * p.dia_lane_slots as f64 * VAL_BYTES, 1.0)
            }
            SparseFormat::Ell => {
                if s.row_max > DEFAULT_MAX_WIDTH || s.row_max == 0 {
                    return f64::INFINITY;
                }
                (m * s.row_max as f64 * (VAL_BYTES + IDX_BYTES), 0.5)
            }
            SparseFormat::Hyb => (
                m * p.hyb_width as f64 * (VAL_BYTES + IDX_BYTES)
                    + p.hyb_overflow as f64 * (VAL_BYTES + 2.0 * IDX_BYTES),
                1.0,
            ),
            // Block grouping sorts/dedups block keys.
            SparseFormat::Bsr => ((s.nblocks * 16) as f64 * VAL_BYTES, 2.0),
            // Tile descriptors need a scan plus per-tile setup.
            SparseFormat::Csr5 => (
                nnz * (VAL_BYTES + IDX_BYTES)
                    + (m + 1.0) * PTR_BYTES
                    + (nnz / TILE_NNZ).ceil() * 8.0,
                1.0,
            ),
            // σ-window sort plus the padded column-major fill.
            SparseFormat::Sell => {
                if s.row_max == 0 {
                    return f64::INFINITY;
                }
                let slots = nnz + DEFAULT_CHUNK as f64 * (s.row_max - s.row_min) as f64;
                (slots * (VAL_BYTES + IDX_BYTES) + m * IDX_BYTES, 1.0)
            }
            // Plain CSR arrays; partitioning happens at SpMV time.
            SparseFormat::MergeCsr => (nnz * (VAL_BYTES + IDX_BYTES) + (m + 1.0) * PTR_BYTES, 0.5),
        };
        (read + written) / self.bw_gbps + nnz * per_entry_ns / self.cores.min(8.0)
    }

    /// Estimate including conversion amortised over `iterations` SpMV
    /// calls — the on-the-fly usage mode of Section 7.6, where the
    /// label should minimise conversion + iterations * SpMV.
    pub fn estimate_amortized(
        &self,
        p: &WorkloadProfile,
        format: SparseFormat,
        iterations: usize,
    ) -> f64 {
        let conv = self.conversion_estimate(p, format);
        self.estimate(p, format) + conv / iterations.max(1) as f64
    }

    /// The fastest candidate when conversion is amortised over
    /// `iterations` SpMV calls.
    pub fn best_format_amortized(&self, p: &WorkloadProfile, iterations: usize) -> SparseFormat {
        self.formats
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.estimate_amortized(p, a, iterations)
                    .partial_cmp(&self.estimate_amortized(p, b, iterations))
                    .expect("estimates are not NaN")
            })
            .expect("format set is non-empty")
    }

    /// All candidate formats with their estimates, best first.
    pub fn ranking(&self, p: &WorkloadProfile) -> Vec<(SparseFormat, f64)> {
        let mut v: Vec<(SparseFormat, f64)> = self
            .formats
            .iter()
            .map(|&f| (f, self.estimate(p, f)))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("estimates are not NaN"));
        v
    }

    /// The fastest candidate format for this workload.
    pub fn best_format(&self, p: &WorkloadProfile) -> SparseFormat {
        self.ranking(p)[0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_sparse::CooMatrix;

    fn profile(m: &CooMatrix<f32>) -> WorkloadProfile {
        WorkloadProfile::compute(m)
    }

    fn banded(n: usize, diags: &[i64]) -> CooMatrix<f32> {
        let mut t = Vec::new();
        for i in 0..n {
            for &d in diags {
                let j = i as i64 + d;
                if (0..n as i64).contains(&j) {
                    t.push((i, j as usize, 1.0));
                }
            }
        }
        CooMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn dense_diagonals_favour_dia_on_cpu() {
        let m = banded(512, &[-1, 0, 1, 2, 5]);
        let p = profile(&m);
        let intel = PlatformModel::intel_cpu();
        assert_eq!(intel.best_format(&p), SparseFormat::Dia);
    }

    #[test]
    fn sparse_diagonals_do_not_favour_dia() {
        // Entries scattered over many half-empty diagonals.
        let n = 512;
        let t: Vec<_> = (0..n).map(|i| (i, (i * 97 + 13) % n, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        let intel = PlatformModel::intel_cpu();
        assert_ne!(intel.best_format(&p), SparseFormat::Dia);
    }

    #[test]
    fn uniform_rows_favour_ell_on_cpu() {
        let n = 512;
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..8usize {
                t.push((i, (i * 7 + k * 61) % n, 1.0f32));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        // Row lengths are exactly uniform -> ELL has zero padding and
        // beats CSR (no pointer traffic, wider SIMD).
        assert_eq!(p.stats.row_cv, 0.0);
        let intel = PlatformModel::intel_cpu();
        let best = intel.best_format(&p);
        assert!(
            best == SparseFormat::Ell || best == SparseFormat::Dia,
            "got {best}"
        );
    }

    #[test]
    fn hypersparse_favours_coo_on_cpu() {
        let n = 4096;
        let t: Vec<_> = (0..40)
            .map(|k| (k * 97 % n, (k * 31) % n, 1.0f32))
            .collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        let intel = PlatformModel::intel_cpu();
        assert_eq!(intel.best_format(&p), SparseFormat::Coo);
    }

    #[test]
    fn skewed_rows_punish_ell() {
        let n = 256;
        let mut t: Vec<_> = (1..n).map(|i| (i, i, 1.0f32)).collect();
        t.extend((0..n).map(|j| (0usize, j, 1.0f32)));
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        let intel = PlatformModel::intel_cpu();
        let ell = intel.estimate(&p, SparseFormat::Ell);
        let csr = intel.estimate(&p, SparseFormat::Csr);
        assert!(ell > 3.0 * csr, "ELL {ell} vs CSR {csr}");
    }

    #[test]
    fn coo_never_wins_on_gpu() {
        // Matches Table 3: "format COO never wins on GPU".
        let gpu = PlatformModel::nvidia_gpu();
        let cases: Vec<CooMatrix<f32>> = vec![
            banded(256, &[0, 1, -1]),
            banded(1024, &[0, -7, 3, 9, 30]),
            CooMatrix::from_triplets(
                256,
                256,
                &(0..2000)
                    .map(|k| ((k * 37) % 256, (k * 101) % 256, 1.0f32))
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        ];
        for m in &cases {
            assert_ne!(gpu.best_format(&profile(m)), SparseFormat::Coo);
        }
    }

    #[test]
    fn block_structure_favours_bsr_on_gpu() {
        let n = 512;
        let mut t = Vec::new();
        for bi in 0..(n / 4) {
            for i in 0..4usize {
                for j in 0..4usize {
                    t.push((bi * 4 + i, bi * 4 + j, 1.0f32));
                }
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let gpu = PlatformModel::nvidia_gpu();
        assert_eq!(gpu.best_format(&profile(&m)), SparseFormat::Bsr);
    }

    #[test]
    fn heavy_skew_on_gpu_prefers_balanced_formats() {
        // Power-law-ish rows: CSR pays divergence, CSR5/HYB do not.
        let n = 2048;
        let mut t = Vec::new();
        for i in 0..n {
            let len = (n / (i + 1)).clamp(1, n / 2);
            for k in 0..len {
                t.push((i, (i * 13 + k * 29) % n, 1.0f32));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        let gpu = PlatformModel::nvidia_gpu();
        let best = gpu.best_format(&p);
        assert!(
            !matches!(best, SparseFormat::Csr | SparseFormat::Coo),
            "row-parallel CSR won despite cv = {}",
            p.stats.row_cv
        );
        let csr = gpu.estimate(&p, SparseFormat::Csr);
        let csr5 = gpu.estimate(&p, SparseFormat::Csr5);
        assert!(csr > 1.5 * csr5);
    }

    #[test]
    fn manycore_power_law_prefers_merge_csr() {
        // Heavy-tailed rows: row-chunked CSR pays the imbalance
        // multiplier on 64 workers, the merge-path kernel does not.
        let n = 2048;
        let mut t = Vec::new();
        for i in 0..n {
            let len = (n / (i + 1)).clamp(1, n / 2);
            for k in 0..len {
                t.push((i, (i * 13 + k * 29) % n, 1.0f32));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        assert!(p.stats.row_cv > 0.6, "cv {}", p.stats.row_cv);
        let many = PlatformModel::manycore_cpu();
        assert_eq!(many.best_format(&p), SparseFormat::MergeCsr);
        let csr = many.estimate(&p, SparseFormat::Csr);
        let mcsr = many.estimate(&p, SparseFormat::MergeCsr);
        assert!(csr > 1.3 * mcsr, "CSR {csr} vs merge {mcsr}");
    }

    #[test]
    fn manycore_jittered_rows_prefer_sell() {
        // Row lengths jitter between 1 and 8 (cv < 0.6): ELL pads every
        // row to 8, SELL's sorted chunks stay near-full, and CSR keeps
        // its full per-row loop overhead.
        let n = 4096;
        let mut t = Vec::new();
        for i in 0..n {
            for k in 0..1 + i % 8 {
                t.push((i, (i * 7 + k * 61) % n, 1.0f32));
            }
        }
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        assert!(p.stats.row_cv < 0.6, "cv {}", p.stats.row_cv);
        let many = PlatformModel::manycore_cpu();
        assert_eq!(many.best_format(&p), SparseFormat::Sell);
        let ell = many.estimate(&p, SparseFormat::Ell);
        let sell = many.estimate(&p, SparseFormat::Sell);
        assert!(ell > 1.2 * sell, "ELL {ell} vs SELL {sell}");
    }

    #[test]
    fn manycore_ranking_covers_widened_set() {
        let m = banded(256, &[0, 1, -3]);
        let p = profile(&m);
        let many = PlatformModel::manycore_cpu();
        assert!(!many.is_gpu);
        assert_eq!(many.formats(), &SparseFormat::MANYCORE_SET);
        let r = many.ranking(&p);
        assert_eq!(r.len(), SparseFormat::MANYCORE_SET.len());
        // Near-uniform rows keep ELL ahead of SELL (almost no padding
        // to save, and SELL pays for its permutation) — the new format
        // must not cannibalise classic labels where those are best.
        let ell = many.estimate(&p, SparseFormat::Ell);
        let sell = many.estimate(&p, SparseFormat::Sell);
        assert!(ell <= sell, "ELL {ell} vs SELL {sell}");
    }

    #[test]
    fn new_format_conversions_are_costed() {
        let m = banded(512, &[0, 2, -5, 9]);
        let p = profile(&m);
        let many = PlatformModel::manycore_cpu();
        for f in [SparseFormat::Sell, SparseFormat::MergeCsr] {
            let c = many.conversion_estimate(&p, f);
            assert!(c > 0.0 && c.is_finite(), "{f}: {c}");
        }
        // Merge-CSR is plain CSR storage: converting must not cost more
        // than SELL's sort-and-pad pipeline.
        assert!(
            many.conversion_estimate(&p, SparseFormat::MergeCsr)
                <= many.conversion_estimate(&p, SparseFormat::Sell)
        );
    }

    #[test]
    fn infeasible_formats_get_infinity() {
        let n = 10_000;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
        let m = CooMatrix::from_triplets(n, n, &t).unwrap();
        let p = profile(&m);
        let intel = PlatformModel::intel_cpu();
        assert!(intel.estimate(&p, SparseFormat::Dia).is_infinite());
        assert!(intel.estimate(&p, SparseFormat::Csr).is_finite());
    }

    #[test]
    fn platforms_disagree_on_some_matrices() {
        // The premise of Section 6: the same matrix can have different
        // best formats on different machines.
        let intel = PlatformModel::intel_cpu();
        let amd = PlatformModel::amd_cpu();
        let mut disagreements = 0;
        let mut total = 0;
        // Sparse matrices with nnz/nrows between the two machines'
        // COO/CSR crossover points: the 24-core Intel box amortises
        // CSR's per-row pointer walk, the 4-core AMD box does not.
        for k in 1..=12usize {
            let n = 4096;
            let nnz = n * k / 12;
            let t: Vec<_> = (0..nnz)
                .map(|e| ((e * 37) % n, (e * 101 + 7) % n, 1.0f32))
                .collect();
            let m = CooMatrix::from_triplets(n, n, &t).unwrap();
            let p = profile(&m);
            total += 1;
            if intel.best_format(&p) != amd.best_format(&p) {
                disagreements += 1;
            }
        }
        assert!(
            disagreements > 0,
            "Intel and AMD agreed on all {total} matrices"
        );
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let m = banded(128, &[0, 1]);
        let p = profile(&m);
        let gpu = PlatformModel::nvidia_gpu();
        let r = gpu.ranking(&p);
        assert_eq!(r.len(), SparseFormat::GPU_SET.len());
        for w in r.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn estimates_are_positive_and_finite_for_csr() {
        for n in [16usize, 256, 4096] {
            let t: Vec<_> = (0..n).map(|i| (i, i, 1.0f32)).collect();
            let m = CooMatrix::from_triplets(n, n, &t).unwrap();
            let p = profile(&m);
            for plat in [
                PlatformModel::intel_cpu(),
                PlatformModel::amd_cpu(),
                PlatformModel::nvidia_gpu(),
            ] {
                let e = plat.estimate(&p, SparseFormat::Csr);
                assert!(e.is_finite() && e > 0.0, "{}: {e}", plat.name);
            }
        }
    }
}

#[cfg(test)]
mod amortized_tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use dnnspmv_sparse::CooMatrix;

    fn banded(n: usize) -> WorkloadProfile {
        let mut t = Vec::new();
        for i in 0..n {
            for d in [-1i64, 0, 1, 4] {
                let j = i as i64 + d;
                if (0..n as i64).contains(&j) {
                    t.push((i, j as usize, 1.0f32));
                }
            }
        }
        WorkloadProfile::compute(&CooMatrix::from_triplets(n, n, &t).unwrap())
    }

    #[test]
    fn conversion_costs_are_positive_and_coo_is_free() {
        let p = banded(256);
        let plat = PlatformModel::intel_cpu();
        assert_eq!(plat.conversion_estimate(&p, SparseFormat::Coo), 0.0);
        for f in [SparseFormat::Csr, SparseFormat::Dia, SparseFormat::Ell] {
            let c = plat.conversion_estimate(&p, f);
            assert!(c > 0.0 && c.is_finite(), "{f}: {c}");
        }
    }

    #[test]
    fn conversion_exceeds_one_spmv_iteration() {
        // Section 7.6: conversion takes "a number of SpMV iterations".
        let p = banded(512);
        let plat = PlatformModel::intel_cpu();
        for f in [SparseFormat::Csr, SparseFormat::Dia] {
            assert!(
                plat.conversion_estimate(&p, f) > plat.estimate(&p, f) * 0.5,
                "{f} conversion implausibly cheap"
            );
        }
    }

    #[test]
    fn few_iterations_favour_cheap_conversions() {
        // At 1 iteration COO (no conversion) is never beaten by much;
        // with many iterations the steady-state winner takes over.
        let p = banded(512);
        let plat = PlatformModel::intel_cpu();
        let one = plat.best_format_amortized(&p, 1);
        let many = plat.best_format_amortized(&p, 100_000);
        assert_eq!(many, plat.best_format(&p));
        let t_one = plat.estimate_amortized(&p, one, 1);
        let t_coo = plat.estimate_amortized(&p, SparseFormat::Coo, 1);
        assert!(t_one <= t_coo + 1e-9);
    }

    #[test]
    fn amortized_estimate_decreases_with_iterations() {
        let p = banded(256);
        let plat = PlatformModel::intel_cpu();
        let e1 = plat.estimate_amortized(&p, SparseFormat::Dia, 1);
        let e10 = plat.estimate_amortized(&p, SparseFormat::Dia, 10);
        let e_inf = plat.estimate(&p, SparseFormat::Dia);
        assert!(e1 > e10 && e10 > e_inf);
    }

    #[test]
    fn infeasible_conversion_is_infinite() {
        let n = 10_000;
        let t: Vec<_> = (0..n).map(|i| (i, n - 1 - i, 1.0f32)).collect();
        let p = WorkloadProfile::compute(&CooMatrix::from_triplets(n, n, &t).unwrap());
        let plat = PlatformModel::intel_cpu();
        assert!(plat
            .conversion_estimate(&p, SparseFormat::Dia)
            .is_infinite());
    }
}
