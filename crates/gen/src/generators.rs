//! Structural matrix families mirroring the SuiteSparse population.
//!
//! Each generator produces a family on which a *different* storage
//! format plausibly wins, which is what gives the format-selection
//! problem its signal:
//!
//! * [`MatrixClass::Banded`] / [`MatrixClass::Stencil`] — few dense
//!   diagonals: DIA territory.
//! * [`MatrixClass::UniformRows`] — identical row lengths: ELL.
//! * [`MatrixClass::Block`] — dense 4x4 blocks: BSR (GPU).
//! * [`MatrixClass::PowerLaw`] — heavy-tailed rows: HYB / CSR5 (GPU),
//!   CSR (CPU).
//! * [`MatrixClass::Random`] — scattered: CSR.
//! * [`MatrixClass::Hypersparse`] — mostly-empty rows: COO (CSR pays
//!   the per-row pointer traversal for nothing).

use dnnspmv_sparse::{CooBuilder, CooMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Structural family of a generated matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixClass {
    /// A few (possibly broken) diagonals around the main diagonal.
    Banded,
    /// 5- or 9-point 2-D grid stencil (discretised PDE operator).
    Stencil,
    /// Every row has the same number of scattered nonzeros.
    UniformRows,
    /// Dense blocks on a sparse block pattern.
    Block,
    /// Power-law (scale-free graph) row-degree distribution.
    PowerLaw,
    /// Uniformly scattered entries.
    Random,
    /// Far fewer nonzeros than rows; most rows empty.
    Hypersparse,
}

impl MatrixClass {
    /// All families, in a stable order.
    pub const ALL: [MatrixClass; 7] = [
        MatrixClass::Banded,
        MatrixClass::Stencil,
        MatrixClass::UniformRows,
        MatrixClass::Block,
        MatrixClass::PowerLaw,
        MatrixClass::Random,
        MatrixClass::Hypersparse,
    ];
}

fn random_value(rng: &mut StdRng) -> f32 {
    // Nonzero magnitudes in [0.1, 2); format selection only cares about
    // structure, but kernels should see non-degenerate values.
    (rng.random::<f32>() * 1.9 + 0.1) * if rng.random::<bool>() { 1.0 } else { -1.0 }
}

/// Generates a matrix of class `class` with edge size around `dim`,
/// fully determined by `seed`.
pub fn generate(class: MatrixClass, dim: usize, seed: u64) -> CooMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    match class {
        MatrixClass::Banded => banded(dim, &mut rng),
        MatrixClass::Stencil => stencil(dim, &mut rng),
        MatrixClass::UniformRows => uniform_rows(dim, &mut rng),
        MatrixClass::Block => block(dim, &mut rng),
        MatrixClass::PowerLaw => power_law(dim, &mut rng),
        MatrixClass::Random => random(dim, &mut rng),
        MatrixClass::Hypersparse => hypersparse(dim, &mut rng),
    }
}

/// Banded matrix: 3–11 diagonals at small offsets, each mostly filled.
fn banded(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let n = n.max(8);
    let ndiags = rng.random_range(3..=11usize);
    // Offsets range from hugging the main diagonal to sitting far out
    // in the corners. Far diagonals are *shorter* (fewer slots and
    // fewer entries), which decouples the true DIA packing from the
    // scalar `dia_fill = nnz / (ndiags * nrows)` feature — only a
    // representation that sees distances can price those correctly.
    let spread = rng.random_range(1..=3u32);
    let max_off = (n as i64 * spread as i64 / 4).max(2);
    let mut offsets = vec![0i64];
    while offsets.len() < ndiags {
        let o = rng.random_range(-max_off..=max_off);
        if !offsets.contains(&o) {
            offsets.push(o);
        }
    }
    // Each diagonal gets its own fill level, so the matrix sits
    // somewhere on the DIA/CSR continuum and the representation must
    // actually see the fill structure to place it (binary down-sampling
    // cannot: every partially-filled stripe looks solid - Figure 4).
    let base_fill: f64 = rng.random_range(0.35..1.0);
    let mut b = CooBuilder::new(n, n).expect("n >= 8");
    for &off in &offsets {
        let fill = (base_fill + rng.random_range(-0.25..0.25)).clamp(0.1, 1.0);
        for i in 0..n {
            let j = i as i64 + off;
            if (0..n as i64).contains(&j) && rng.random::<f64>() < fill {
                b.push(i, j as usize, random_value(rng)).expect("in range");
            }
        }
    }
    b.build()
}

/// 5- or 9-point stencil on a `g x g` grid (`n ~ g^2`).
fn stencil(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let g = (n.max(16) as f64).sqrt() as usize;
    let n = g * g;
    let nine_point = rng.random::<bool>();
    let mut b = CooBuilder::new(n, n).expect("positive dims");
    for y in 0..g {
        for x in 0..g {
            let i = y * g + x;
            b.push(i, i, 4.0 + rng.random::<f32>()).expect("in range");
            let mut neigh: Vec<(i64, i64)> = vec![(-1, 0), (1, 0), (0, -1), (0, 1)];
            if nine_point {
                neigh.extend([(-1, -1), (-1, 1), (1, -1), (1, 1)]);
            }
            for (dy, dx) in neigh {
                let (ny, nx) = (y as i64 + dy, x as i64 + dx);
                if (0..g as i64).contains(&ny) && (0..g as i64).contains(&nx) {
                    let j = (ny as usize) * g + nx as usize;
                    b.push(i, j, -1.0 - rng.random::<f32>() * 0.1)
                        .expect("in range");
                }
            }
        }
    }
    b.build()
}

/// Every row gets exactly `k` nonzeros in a jittered regular pattern —
/// the quasi-structured meshes that actually favour ELL in real
/// collections: per-row counts are identical (zero padding) but the
/// column pattern wobbles a few positions per row, which shatters each
/// nominal diagonal into several sparse ones and prices DIA out.
fn uniform_rows(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let n = n.max(64);
    let jitter = rng.random_range(2..=6i64);
    // Nominal offsets are evenly spaced (mesh-like regularity) with a
    // random origin; spacing leaves room for the per-row jitter so the
    // jittered diagonals do not merge.
    let spacing = 2 * jitter + 2 + rng.random_range(0..=4);
    let span = (n as i64 - 2).min((n as i64) / 2 + 8 * spacing);
    let mut k = rng.random_range(4..=16usize).min(n / 2);
    k = k.min((span / spacing).max(1) as usize);
    let lo = -span / 2;
    let hi = span / 2 - (k as i64 - 1) * spacing;
    let start = if hi > lo {
        rng.random_range(lo..=hi)
    } else {
        lo
    };
    let offsets: Vec<i64> = (0..k as i64).map(|j| start + j * spacing).collect();
    let mut b = CooBuilder::new(n, n).expect("n >= 64");
    for i in 0..n {
        for &off in &offsets {
            let j = (i as i64 + off + rng.random_range(-jitter..=jitter)).rem_euclid(n as i64);
            b.push(i, j as usize, random_value(rng)).expect("in range");
        }
    }
    b.build()
}

/// Rows whose lengths wander inside a bounded band with near-diagonal
/// columns — the structured-but-not-uniform meshes where SELL-C-σ
/// shines: ELL must pad every row to the band's maximum, while σ-window
/// sorting groups similar rows so each C-chunk stays near-full. Not a
/// dataset [`MatrixClass`] (the class mix is pinned by the paper's
/// evaluation); exported for `bench_spmv` and the kernel equivalence
/// tests.
pub fn varied_band_rows(dim: usize, seed: u64) -> CooMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dim.max(64);
    let k_max = rng.random_range(12..=24usize).min(n / 4);
    let spacing = 3i64;
    let mut b = CooBuilder::new(n, n).expect("n >= 64");
    for i in 0..n {
        let len = rng.random_range(2..=k_max);
        let start = rng.random_range(-2..=2i64) - (len as i64 / 2) * spacing;
        for k in 0..len as i64 {
            let j = (i as i64 + start + k * spacing).rem_euclid(n as i64);
            b.push(i, j as usize, random_value(&mut rng))
                .expect("in range");
        }
    }
    b.build()
}

/// Dense `4x4` blocks scattered over the block grid.
fn block(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let bs = 4;
    let nb = (n.max(32) / bs).max(2);
    let n = nb * bs;
    let block_fill: f64 = rng.random_range(0.7..1.0);
    let mut b = CooBuilder::new(n, n).expect("positive dims");
    for br in 0..nb {
        // Per-block-row count varies, so row lengths are non-uniform
        // (keeps the CPU label CSR-ish while the GPU label is BSR).
        let blocks_per_row = rng.random_range(1..=6usize).min(nb);
        let mut bcs = vec![br]; // keep the diagonal block
        while bcs.len() < blocks_per_row {
            let bc = rng.random_range(0..nb);
            if !bcs.contains(&bc) {
                bcs.push(bc);
            }
        }
        for bc in bcs {
            for i in 0..bs {
                for j in 0..bs {
                    if rng.random::<f64>() < block_fill {
                        b.push(br * bs + i, bc * bs + j, random_value(rng))
                            .expect("in range");
                    }
                }
            }
        }
    }
    b.build()
}

/// Scale-free graph rows: degree `d ~ d_min * u^(-1/(alpha-1))`.
fn power_law(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let n = n.max(16);
    let alpha: f64 = rng.random_range(1.8..2.8);
    let d_min: f64 = rng.random_range(1.0..4.0);
    let mut b = CooBuilder::new(n, n).expect("n >= 16");
    for i in 0..n {
        let u: f64 = rng.random::<f64>().max(1e-9);
        let deg = (d_min * u.powf(-1.0 / (alpha - 1.0))).round() as usize;
        let deg = deg.clamp(1, n / 2);
        for _ in 0..deg {
            b.push(i, rng.random_range(0..n), random_value(rng))
                .expect("in range");
        }
    }
    b.build()
}

/// Scattered entries; the mean row population (rather than the
/// density) is drawn log-uniformly, matching how real collections
/// distribute (SuiteSparse rows mostly carry 1–100 nonzeros regardless
/// of dimension). Half of the instances scatter single entries; the
/// other half scatter small dense patches — real matrices (FEM,
/// circuits) cluster their nonzeros, which is what makes 4x4-block BSR
/// viable on GPUs (Table 3's largest class).
fn random(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let n = n.max(8);
    let log_rowpop = rng.random_range(0.5f64.ln()..16.0f64.ln());
    let nnz = (n as f64 * log_rowpop.exp()).max(4.0) as usize;
    let clustered = rng.random::<bool>();
    let mut b = CooBuilder::new(n, n).expect("n >= 8");
    b.reserve(nnz);
    let mut placed = 0usize;
    while placed < nnz {
        let (ph, pw) = if clustered {
            (rng.random_range(1..=3usize), rng.random_range(2..=4usize))
        } else {
            (1, 1)
        };
        let r0 = rng.random_range(0..n);
        let c0 = rng.random_range(0..n);
        for dr in 0..ph {
            for dc in 0..pw {
                if r0 + dr < n && c0 + dc < n {
                    b.push(r0 + dr, c0 + dc, random_value(rng))
                        .expect("in range");
                    placed += 1;
                }
            }
        }
    }
    b.build()
}

/// Hypersparse: nnz is a small fraction of the row count, clustered so
/// most rows stay empty.
fn hypersparse(n: usize, rng: &mut StdRng) -> CooMatrix<f32> {
    let n = n.max(64);
    let nnz = (n / rng.random_range(8..32usize)).max(2);
    let normal = Normal::new(n as f64 / 2.0, n as f64 / 16.0).expect("valid std");
    let mut b = CooBuilder::new(n, n).expect("n >= 64");
    for _ in 0..nnz {
        let r = (normal.sample(rng).round() as i64).clamp(0, n as i64 - 1) as usize;
        b.push(r, rng.random_range(0..n), random_value(rng))
            .expect("in range");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnspmv_sparse::MatrixStats;

    #[test]
    fn generation_is_deterministic() {
        for class in MatrixClass::ALL {
            let a = generate(class, 128, 42);
            let b = generate(class, 128, 42);
            assert_eq!(a, b, "{class:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(MatrixClass::Random, 128, 1);
        let b = generate(MatrixClass::Random, 128, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn banded_has_few_diagonals() {
        for seed in 0..10 {
            let m = generate(MatrixClass::Banded, 200, seed);
            let s = MatrixStats::compute(&m);
            assert!(s.ndiags <= 11, "seed {seed}: {} diagonals", s.ndiags);
            assert!(s.nnz > 0);
        }
    }

    #[test]
    fn stencil_is_banded_and_square_grid() {
        let m = generate(MatrixClass::Stencil, 256, 7);
        let s = MatrixStats::compute(&m);
        let g = (m.nrows() as f64).sqrt() as usize;
        assert_eq!(g * g, m.nrows());
        // 5-point: 5 distinct offsets; 9-point: at most 9 (interior).
        assert!(s.ndiags <= 9);
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn varied_band_rows_vary_within_a_bounded_band() {
        for seed in 0..5u64 {
            let m = varied_band_rows(512, seed);
            assert_eq!(m, varied_band_rows(512, seed), "deterministic");
            let s = MatrixStats::compute(&m);
            assert!(s.row_min >= 2, "seed {seed}: min {}", s.row_min);
            assert!(s.row_max <= 24, "seed {seed}: max {}", s.row_max);
            assert!(s.row_min < s.row_max, "lengths must actually vary");
            // Moderate variance: the SELL-favorable regime, below the
            // cost model's heavy-tail threshold.
            assert!(s.row_cv < 0.6, "seed {seed}: cv {}", s.row_cv);
        }
    }

    #[test]
    fn uniform_rows_have_zero_cv() {
        for seed in 0..5 {
            let m = generate(MatrixClass::UniformRows, 150, seed);
            let s = MatrixStats::compute(&m);
            assert_eq!(s.row_min, s.row_max, "seed {seed}");
            assert_eq!(s.row_cv, 0.0);
        }
    }

    #[test]
    fn block_matrices_have_high_bsr_fill() {
        for seed in 0..5 {
            let m = generate(MatrixClass::Block, 200, seed);
            let s = MatrixStats::compute(&m);
            assert!(s.bsr_fill > 0.5, "seed {seed}: fill {}", s.bsr_fill);
        }
    }

    #[test]
    fn power_law_rows_are_skewed() {
        let mut any_skewed = false;
        for seed in 0..10 {
            let m = generate(MatrixClass::PowerLaw, 512, seed);
            let s = MatrixStats::compute(&m);
            if s.row_cv > 1.0 {
                any_skewed = true;
            }
        }
        assert!(any_skewed, "no power-law sample had high row CV");
    }

    #[test]
    fn hypersparse_is_mostly_empty() {
        for seed in 0..5 {
            let m = generate(MatrixClass::Hypersparse, 512, seed);
            let s = MatrixStats::compute(&m);
            assert!(
                s.empty_rows * 2 > m.nrows(),
                "seed {seed}: only {} empty rows",
                s.empty_rows
            );
            assert!(s.nnz < m.nrows());
        }
    }

    #[test]
    fn all_classes_produce_valid_matrices() {
        for class in MatrixClass::ALL {
            for seed in [0, 99] {
                let m = generate(class, 100, seed);
                m.validate().unwrap();
                assert!(m.nnz() > 0, "{class:?} produced an empty matrix");
            }
        }
    }
}
