//! Dataset augmentation — the paper's derivation operations.
//!
//! Section 7.1: "we use some simple heuristics like cropping,
//! transforming and randomized combinations of the original matrices"
//! to expand 2757 real matrices into 9200 training inputs without
//! deviating too much from real-world structure. This module implements
//! those three heuristics.

use dnnspmv_sparse::{CooBuilder, CooMatrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One augmentation operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Random sub-window of at least half the extent in each dimension.
    Crop,
    /// Transpose.
    Transpose,
    /// Block-diagonal combination with a second matrix.
    Combine,
}

impl Augmentation {
    /// All operations, in a stable order.
    pub const ALL: [Augmentation; 3] = [
        Augmentation::Crop,
        Augmentation::Transpose,
        Augmentation::Combine,
    ];
}

/// Applies `op` to `a` (and `b` for [`Augmentation::Combine`]),
/// deterministically in `seed`.
pub fn augment(
    a: &CooMatrix<f32>,
    b: &CooMatrix<f32>,
    op: Augmentation,
    seed: u64,
) -> CooMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    match op {
        Augmentation::Transpose => a.transpose(),
        Augmentation::Crop => {
            let (m, n) = (a.nrows(), a.ncols());
            if m < 4 || n < 4 {
                return a.clone();
            }
            let h = rng.random_range(m / 2..=m);
            let w = rng.random_range(n / 2..=n);
            let r0 = rng.random_range(0..=m - h);
            let c0 = rng.random_range(0..=n - w);
            a.crop(r0, r0 + h, c0, c0 + w)
                .expect("window within bounds by construction")
        }
        Augmentation::Combine => block_diagonal(a, b),
    }
}

/// Places `a` and `b` on the diagonal of a larger matrix. This keeps
/// both constituents' local structure intact (unlike summing overlays,
/// which would fabricate patterns no real matrix has).
pub fn block_diagonal(a: &CooMatrix<f32>, b: &CooMatrix<f32>) -> CooMatrix<f32> {
    let nrows = a.nrows() + b.nrows();
    let ncols = a.ncols() + b.ncols();
    let mut builder = CooBuilder::new(nrows, ncols).expect("positive dims");
    builder.reserve(a.nnz() + b.nnz());
    for (r, c, v) in a.iter() {
        builder.push(r, c, v).expect("in range");
    }
    for (r, c, v) in b.iter() {
        builder
            .push(a.nrows() + r, a.ncols() + c, v)
            .expect("in range");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, MatrixClass};

    fn sample() -> CooMatrix<f32> {
        generate(MatrixClass::Banded, 64, 3)
    }

    #[test]
    fn transpose_is_involutive() {
        let a = sample();
        let t = augment(&a, &a, Augmentation::Transpose, 0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn crop_shrinks_but_not_below_half() {
        let a = sample();
        for seed in 0..10 {
            let c = augment(&a, &a, Augmentation::Crop, seed);
            assert!(c.nrows() >= a.nrows() / 2 && c.nrows() <= a.nrows());
            assert!(c.ncols() >= a.ncols() / 2 && c.ncols() <= a.ncols());
            assert!(c.nnz() <= a.nnz());
        }
    }

    #[test]
    fn crop_is_deterministic_in_seed() {
        let a = sample();
        assert_eq!(
            augment(&a, &a, Augmentation::Crop, 5),
            augment(&a, &a, Augmentation::Crop, 5)
        );
    }

    #[test]
    fn combine_preserves_both_nnz() {
        let a = sample();
        let b = generate(MatrixClass::Random, 48, 9);
        let c = augment(&a, &b, Augmentation::Combine, 0);
        assert_eq!(c.nnz(), a.nnz() + b.nnz());
        assert_eq!(c.nrows(), a.nrows() + b.nrows());
        // The two diagonal blocks match the originals.
        let top = c.crop(0, a.nrows(), 0, a.ncols()).unwrap();
        assert_eq!(top, a);
        let bot = c.crop(a.nrows(), c.nrows(), a.ncols(), c.ncols()).unwrap();
        assert_eq!(bot, b);
    }

    #[test]
    fn tiny_matrix_crop_is_identity() {
        let a = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0f32)]).unwrap();
        assert_eq!(augment(&a, &a, Augmentation::Crop, 1), a);
    }
}
