//! Dataset assembly: weighted class mix, augmentation, k-fold splits.

use crate::augment::{augment, Augmentation};
use crate::generators::{generate, MatrixClass};
use dnnspmv_sparse::CooMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic dataset.
///
/// `class_weights` mirrors the SuiteSparse population closely enough
/// that the platform cost models produce a CSR-dominated label
/// distribution like the paper's Table 2 (verified by `repro labels`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Matrices generated directly from the structural families.
    pub n_base: usize,
    /// Additional matrices derived via augmentation (paper: ~2.3x the
    /// base count; default here keeps runtimes laptop-friendly).
    pub n_augmented: usize,
    /// Minimum edge size of generated matrices.
    pub dim_min: usize,
    /// Maximum edge size of generated matrices.
    pub dim_max: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Per-class sampling weights, parallel to [`MatrixClass::ALL`].
    pub class_weights: [f64; 7],
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            n_base: 900,
            n_augmented: 2100,
            dim_min: 64,
            dim_max: 512,
            seed: 0xD44A_5EED,
            // Banded, Stencil, UniformRows, Block, PowerLaw, Random,
            // Hypersparse — weighted so the Intel cost model's labels
            // come out CSR-dominated like the paper's Table 2.
            class_weights: [0.08, 0.04, 0.08, 0.16, 0.17, 0.35, 0.05],
        }
    }
}

impl DatasetSpec {
    /// A small spec for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            n_base: 24,
            n_augmented: 8,
            dim_min: 32,
            dim_max: 96,
            seed,
            ..Self::default()
        }
    }

    /// Total dataset size.
    pub fn len(&self) -> usize {
        self.n_base + self.n_augmented
    }

    /// True when the spec produces no matrices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A generated dataset: matrices plus their provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The matrices. Augmented entries follow the base entries.
    pub matrices: Vec<CooMatrix<f32>>,
    /// Structural family of each base matrix; `None` for augmented ones
    /// (their structure is a mix).
    pub classes: Vec<Option<MatrixClass>>,
    /// The spec that produced this dataset.
    pub spec: DatasetSpec,
}

impl Dataset {
    /// Generates the dataset described by `spec` (parallel, seeded).
    pub fn generate(spec: &DatasetSpec) -> Self {
        let total_w: f64 = spec.class_weights.iter().sum();
        assert!(total_w > 0.0, "class weights must not all be zero");

        // Base matrices, one deterministic seed per index.
        let base: Vec<(CooMatrix<f32>, MatrixClass)> = (0..spec.n_base)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    spec.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let class = pick_class(&spec.class_weights, total_w, &mut rng);
                let dim = rng.random_range(spec.dim_min..=spec.dim_max);
                (generate(class, dim, rng.random()), class)
            })
            .collect();

        // Augmented matrices derive from random base pairs.
        let augmented: Vec<CooMatrix<f32>> = (0..spec.n_augmented)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(
                    spec.seed
                        ^ 0xA0A0_A0A0_A0A0_A0A0
                        ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                let a = &base[rng.random_range(0..base.len())].0;
                let b = &base[rng.random_range(0..base.len())].0;
                let op = Augmentation::ALL[rng.random_range(0..Augmentation::ALL.len())];
                augment(a, b, op, rng.random())
            })
            .collect();

        let mut matrices = Vec::with_capacity(spec.len());
        let mut classes = Vec::with_capacity(spec.len());
        for (m, c) in base {
            matrices.push(m);
            classes.push(Some(c));
        }
        for m in augmented {
            matrices.push(m);
            classes.push(None);
        }
        Self {
            matrices,
            classes,
            spec: spec.clone(),
        }
    }

    /// Number of matrices.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// True when the dataset holds no matrices.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }
}

fn pick_class(weights: &[f64; 7], total: f64, rng: &mut StdRng) -> MatrixClass {
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return MatrixClass::ALL[i];
        }
        t -= w;
    }
    *MatrixClass::ALL.last().expect("ALL is non-empty")
}

/// K-fold cross-validation index splits (the paper uses 5-fold).
///
/// Returns `k` pairs of (train indices, test indices); the test sets
/// partition `0..n` and each index appears in exactly one test set.
/// Assignment is a seeded shuffle, so folds are reproducible.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(n >= k, "need at least one sample per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        idx.swap(i, rng.random_range(0..=i));
    }
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * n / k;
        let hi = (f + 1) * n / k;
        let test: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic() {
        let spec = DatasetSpec::tiny(7);
        let a = Dataset::generate(&spec);
        let b = Dataset::generate(&spec);
        assert_eq!(a.matrices, b.matrices);
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn dataset_has_requested_size_and_provenance() {
        let spec = DatasetSpec::tiny(1);
        let d = Dataset::generate(&spec);
        assert_eq!(d.len(), spec.len());
        assert_eq!(
            d.classes.iter().filter(|c| c.is_some()).count(),
            spec.n_base
        );
        assert_eq!(
            d.classes.iter().filter(|c| c.is_none()).count(),
            spec.n_augmented
        );
    }

    #[test]
    fn dataset_covers_multiple_classes() {
        let spec = DatasetSpec {
            n_base: 64,
            n_augmented: 0,
            ..DatasetSpec::tiny(3)
        };
        let d = Dataset::generate(&spec);
        let distinct: std::collections::HashSet<_> = d.classes.iter().flatten().collect();
        assert!(distinct.len() >= 4, "only {} classes drawn", distinct.len());
    }

    #[test]
    fn kfold_partitions_everything() {
        let folds = kfold(103, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kfold_is_seeded() {
        assert_eq!(kfold(50, 5, 4), kfold(50, 5, 4));
        assert_ne!(kfold(50, 5, 4), kfold(50, 5, 5));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn kfold_rejects_k1() {
        let _ = kfold(10, 1, 0);
    }

    #[test]
    fn all_generated_matrices_are_valid() {
        let d = Dataset::generate(&DatasetSpec::tiny(11));
        for m in &d.matrices {
            m.validate().unwrap();
            assert!(m.nnz() > 0);
        }
    }
}
