//! Synthetic sparse matrix generation, augmentation, and dataset
//! management.
//!
//! The paper trains on 2757 SuiteSparse matrices plus ~6400 derived
//! variants (≈400 GB of data we cannot ship). This crate substitutes a
//! deterministic generator that emits the structural *families* that
//! dominate that collection — banded/diagonal operators, 2-D stencil
//! grids, power-law graph matrices, block-structured FEM-style
//! matrices, uniform-row matrices, scattered random matrices and
//! hypersparse matrices — plus the paper's own augmentation operations
//! (cropping, transposing, randomized combination, Section 7.1).
//!
//! Everything is seeded: the same [`DatasetSpec`] always yields the
//! same matrices, so every experiment in the workspace is reproducible.

pub mod augment;
pub mod dataset;
pub mod generators;

pub use augment::{augment, Augmentation};
pub use dataset::{kfold, Dataset, DatasetSpec};
pub use generators::{generate, varied_band_rows, MatrixClass};
