//! FNV-1a 64-bit hashing, shared by the artefact envelopes
//! (`dnnspmv-nn`) and the serving layer's decision-cache keys
//! (`dnnspmv-core`).
//!
//! Not cryptographic; catches truncation and bit rot (the envelope
//! checksum) and disperses structural summaries across cache shards,
//! which is all its two users need. The digest for a given byte
//! sequence is **pinned by tests** below: persisted envelopes store
//! these checksums, so a behavioural change here would invalidate every
//! artefact ever written.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

/// Streaming FNV-1a64 hasher for callers that fold in several fields
/// without materialising one contiguous buffer (the decision cache
/// hashes a matrix's shape, nonzero count, row-length histogram and a
/// coordinate sample this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a64 reference vectors — a refactor that changes
    /// any of these digests would silently orphan every persisted
    /// artefact, so they are pinned here byte for byte.
    #[test]
    fn digests_match_published_fnv1a64_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_hasher_matches_one_shot_hash() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn integer_writes_are_little_endian_byte_folds() {
        let mut a = Fnv1a64::new();
        a.write_u32(0x0403_0201);
        a.write_u64(0x0807_0605_0403_0201);
        let mut b = Fnv1a64::new();
        b.write(&[1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn digest_depends_on_byte_order() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"a\0"));
    }
}
