//! Networks: [`Sequential`] layer stacks and the two-part [`Cnn`] that
//! expresses both of the paper's structures.
//!
//! A [`Cnn`] is N convolutional *towers* plus a fully-connected *head*.
//! The late-merging structure (Figure 7/10) uses one tower per input
//! channel and concatenates their features only at the head — "the
//! outputs of the two networks are put together as joint features, fed
//! to the fully connected layer". The early-merging structure
//! (Figure 6) is the degenerate case of a single tower consuming all
//! channels stacked into one multi-channel image.

use crate::gemm;
use crate::layers::{self, Layer};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A labelled training/evaluation sample: the representation channels
/// of one matrix (each `[h, w]`) plus its best-format class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input channels, each of shape `[h, w]`.
    pub channels: Vec<Tensor>,
    /// Class label (index into the platform's format set).
    pub label: usize,
}

/// A stack of layers applied in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Sequential {
    /// The layers, applied front to back.
    pub layers: Vec<Layer>,
}

/// Per-layer parameter gradients of a [`Sequential`].
pub type SeqGrads = Vec<Vec<Tensor>>;

impl Sequential {
    /// Creates a stack from layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Forward pass with a per-layer cooperative-cancellation
    /// checkpoint: returns `None` as soon as `cancel` reports `true`,
    /// so a caller enforcing a deadline can abandon the pass between
    /// layers instead of wedging a worker on a huge convolution stack.
    pub fn forward_with_cancel(&self, x: &Tensor, cancel: &dyn Fn() -> bool) -> Option<Tensor> {
        let mut cur = x.clone();
        for l in &self.layers {
            if cancel() {
                return None;
            }
            cur = l.forward(&cur);
        }
        Some(cur)
    }

    /// Batched forward pass over same-shaped inputs: each GEMM-backed
    /// layer processes the whole batch in one product.
    pub fn forward_batch(&self, xs: Vec<Tensor>) -> Vec<Tensor> {
        let (mut cur, li) = self
            .forward_batch_prefix(xs, None)
            .expect("uncancellable prefix always completes");
        for l in &self.layers[li..] {
            cur = l.forward_batch(&cur);
        }
        cur
    }

    /// [`Sequential::forward_batch`] with per-layer cancellation
    /// checkpoints, mirroring [`Sequential::forward_with_cancel`] for a
    /// whole batch: returns `None` as soon as `cancel` reports `true`.
    /// The serving layer's micro-batcher passes an "every member's
    /// deadline has expired" predicate here, so a batch is only
    /// abandoned when no member still wants the answer.
    pub fn forward_batch_with_cancel(
        &self,
        xs: Vec<Tensor>,
        cancel: &dyn Fn() -> bool,
    ) -> Option<Vec<Tensor>> {
        if cancel() {
            return None;
        }
        let (mut cur, li) = self.forward_batch_prefix(xs, Some(cancel))?;
        for l in &self.layers[li..] {
            if cancel() {
                return None;
            }
            cur = l.forward_batch(&cur);
        }
        Some(cur)
    }

    /// Runs the packed convolutional prefix of a batched forward pass
    /// and returns the activations plus the index of the first layer
    /// still to run. `cancel` (checked between packed layers) aborts
    /// with `None`; passing `None` never aborts.
    ///
    /// Image-shaped batches run the convolutional prefix packed as one
    /// `[c, n, h, w]` block (see `layers::pack_batch`): each
    /// conv/pool/relu layer hands the whole batch along without
    /// per-sample unpack copies. A leading convolution lowers the
    /// per-sample inputs directly into the packed layout; otherwise the
    /// batch is packed up front. The walk ping-pongs between two
    /// recycled scratch buffers (batch-sized activations live above the
    /// allocator's mmap threshold, so fresh allocations would
    /// page-fault on every layer) and ReLU runs in place. Sample-wise
    /// processing resumes at the first layer that needs individual
    /// tensors (`Flatten`).
    fn forward_batch_prefix(
        &self,
        xs: Vec<Tensor>,
        cancel: Option<&dyn Fn() -> bool>,
    ) -> Option<(Vec<Tensor>, usize)> {
        let mut cur = xs;
        let mut li = 0;
        let packable = matches!(
            self.layers.first(),
            Some(Layer::Conv2d(_) | Layer::MaxPool2d(_) | Layer::Relu)
        );
        if cur.len() > 1 && cur[0].shape().len() == 3 && packable {
            let out = gemm::with_scratch(|s| {
                let mut ping = std::mem::take(&mut s.ping);
                let mut pong = std::mem::take(&mut s.pong);
                let mut shape = match &self.layers[0] {
                    Layer::Conv2d(l) => {
                        li = 1;
                        l.forward_batch_packed_into(&cur, &mut s.col, &mut ping)
                    }
                    _ => layers::pack_batch_into(&cur, &mut ping),
                };
                let mut cancelled = false;
                while li < self.layers.len() {
                    if cancel.is_some_and(|c| c()) {
                        cancelled = true;
                        break;
                    }
                    let [c, n, h, w] = shape;
                    match &self.layers[li] {
                        Layer::Conv2d(l) => {
                            shape = l.forward_packed_into(
                                &ping[..c * n * h * w],
                                n,
                                h,
                                w,
                                &mut s.col,
                                &mut pong,
                            );
                            std::mem::swap(&mut ping, &mut pong);
                        }
                        Layer::MaxPool2d(l) => {
                            let (oh, ow) = l.out_hw(h, w);
                            if pong.len() < c * n * oh * ow {
                                pong.resize(c * n * oh * ow, 0.0);
                            }
                            l.pool_planes(
                                &ping[..c * n * h * w],
                                c * n,
                                h,
                                w,
                                &mut pong[..c * n * oh * ow],
                            );
                            shape = [c, n, oh, ow];
                            std::mem::swap(&mut ping, &mut pong);
                        }
                        Layer::Relu => {
                            for v in &mut ping[..c * n * h * w] {
                                *v = if *v < 0.0 { 0.0 } else { *v };
                            }
                        }
                        Layer::Flatten | Layer::Dense(_) => break,
                    }
                    li += 1;
                }
                let [c, n, h, w] = shape;
                // Scratch goes back even on cancellation, so an
                // abandoned batch never costs the next one its buffers.
                let out = if cancelled {
                    None
                } else {
                    Some(layers::unpack_planes(&ping[..c * n * h * w], c, n, h, w))
                };
                s.ping = ping;
                s.pong = pong;
                out
            });
            cur = out?;
        }
        Some((cur, li))
    }

    /// Forward pass that keeps each layer's input for backprop.
    /// Returns (per-layer inputs, final output).
    pub fn forward_cached(&self, x: &Tensor) -> (Vec<Tensor>, Tensor) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for l in &self.layers {
            let next = l.forward(&cur);
            inputs.push(cur);
            cur = next;
        }
        (inputs, cur)
    }

    /// Backward pass. `inputs` must come from [`Self::forward_cached`].
    /// Returns (gradient w.r.t. the stack input, per-layer parameter
    /// gradients).
    pub fn backward(&self, inputs: &[Tensor], gout: &Tensor) -> (Tensor, SeqGrads) {
        debug_assert_eq!(inputs.len(), self.layers.len());
        let mut grads: SeqGrads = vec![Vec::new(); self.layers.len()];
        let mut g = gout.clone();
        for (i, l) in self.layers.iter().enumerate().rev() {
            let (gin, gparams) = l.backward(&inputs[i], &g);
            grads[i] = gparams;
            g = gin;
        }
        (g, grads)
    }

    /// Index of the first layer that consumes row matrices (`Flatten`
    /// or `Dense`); everything before it runs on the packed
    /// `[c, n, h, w]` layout.
    fn batch_split(&self) -> usize {
        self.layers
            .iter()
            .position(|l| matches!(l, Layer::Flatten | Layer::Dense(_)))
            .unwrap_or(self.layers.len())
    }

    /// Batched forward pass over the packed `[c, n, h, w]` layout that
    /// keeps every layer's input in `cache` for
    /// [`Self::backward_batch`]. The caller fills the stack input via
    /// [`SeqBatchCache::input_packed`] first. The convolutional prefix
    /// runs packed; at the first `Flatten`/`Dense` the activation is
    /// regathered into an `[n, dim]` row matrix (a boundary `Flatten`
    /// is absorbed into that repack) and the tail runs on rows.
    pub(crate) fn forward_batch_cached_packed(&self, cache: &mut SeqBatchCache) {
        let n = cache.n;
        let split = self.batch_split();
        cache.split = split;
        cache.packed_input = true;
        cache.packed.resize_with(split + 1, Vec::new);
        cache.packed_shapes.resize(split + 1, [0; 4]);
        cache.cols.resize_with(split, Vec::new);
        cache.pool_idx.resize_with(split, Vec::new);
        for li in 0..split {
            let [c, _, h, w] = cache.packed_shapes[li];
            let (done, rest) = cache.packed.split_at_mut(li + 1);
            let x = &done[li][..c * n * h * w];
            let out = &mut rest[0];
            cache.packed_shapes[li + 1] = match &self.layers[li] {
                // The im2col lowering lands in the cache so the
                // backward pass can reuse it for the weight-gradient
                // GEMM without re-lowering the activations.
                Layer::Conv2d(l) => l.forward_packed_into(x, n, h, w, &mut cache.cols[li], out),
                // Pooling records each window's argmax so the backward
                // pass scatters instead of rescanning the windows.
                Layer::MaxPool2d(l) => {
                    let (oh, ow) = l.out_hw(h, w);
                    let od = layers::ensure_len(out, c * n * oh * ow);
                    let idx = layers::ensure_len(&mut cache.pool_idx[li], c * n * oh * ow);
                    l.pool_planes_indexed(x, c * n, h, w, od, idx);
                    [c, n, oh, ow]
                }
                Layer::Relu => {
                    let od = layers::ensure_len(out, c * n * h * w);
                    for (o, &v) in od.iter_mut().zip(x) {
                        *o = if v < 0.0 { 0.0 } else { v };
                    }
                    [c, n, h, w]
                }
                Layer::Flatten | Layer::Dense(_) => {
                    unreachable!("rows layer inside the packed prefix")
                }
            };
        }
        // Repack boundary: gather the last packed activation into
        // `[n, c*h*w]` rows — for a boundary `Flatten` this *is* its
        // batched forward pass, so the walk resumes after it.
        cache.rows_start = split
            + match self.layers.get(split) {
                Some(Layer::Flatten) => 1,
                _ => 0,
            };
        let count = self.layers.len() - cache.rows_start;
        cache.rows.resize_with(count + 1, Vec::new);
        cache.row_dims.resize(count + 1, 0);
        let [c, _, h, w] = cache.packed_shapes[split];
        let (hw, chw) = (h * w, c * h * w);
        cache.row_dims[0] = chw;
        {
            let (packed, rows) = (&cache.packed, &mut cache.rows);
            let src = &packed[split][..c * n * hw];
            let dst = layers::ensure_len(&mut rows[0], n * chw);
            for si in 0..n {
                for ic in 0..c {
                    dst[si * chw + ic * hw..][..hw]
                        .copy_from_slice(&src[(ic * n + si) * hw..][..hw]);
                }
            }
        }
        self.forward_rows_walk(cache);
    }

    /// Batched cached forward pass for a stack that starts on row
    /// matrices (the head). The caller fills the stack input via
    /// [`SeqBatchCache::input_rows`] first.
    pub(crate) fn forward_batch_cached_rows(&self, cache: &mut SeqBatchCache) {
        cache.split = 0;
        cache.rows_start = 0;
        cache.packed_input = false;
        let count = self.layers.len();
        cache.rows.resize_with(count + 1, Vec::new);
        cache.row_dims.resize(count + 1, 0);
        self.forward_rows_walk(cache);
    }

    /// Rows-region forward walk shared by both cached entry points:
    /// `cache.rows[0]` / `cache.row_dims[0]` hold the region's input.
    fn forward_rows_walk(&self, cache: &mut SeqBatchCache) {
        let n = cache.n;
        for (j, layer) in self.layers[cache.rows_start..].iter().enumerate() {
            let dim = cache.row_dims[j];
            let (done, rest) = cache.rows.split_at_mut(j + 1);
            let x = &done[j][..n * dim];
            let out = &mut rest[0];
            cache.row_dims[j + 1] = match layer {
                Layer::Dense(l) => {
                    l.forward_rows_into(x, n, out);
                    l.out_dim
                }
                Layer::Relu => {
                    let od = layers::ensure_len(out, n * dim);
                    for (o, &v) in od.iter_mut().zip(x) {
                        *o = if v < 0.0 { 0.0 } else { v };
                    }
                    dim
                }
                Layer::Flatten => {
                    layers::ensure_len(out, n * dim).copy_from_slice(x);
                    dim
                }
                other => panic!(
                    "image layer {} after the flatten boundary",
                    other.describe()
                ),
            };
        }
    }

    /// Batched backward pass from the gradient on the stack's output
    /// rows. Every parameter gradient is computed by a single GEMM with
    /// the batch reduction fused into its inner dimension, ping-ponging
    /// the activation gradient through the recycled scratch buffers;
    /// `grads` (shaped by [`Self::zero_grads`]) is overwritten with the
    /// batch-*summed* gradients. `gin_rows`, honoured only for
    /// rows-input stacks, receives the gradient w.r.t. the stack input;
    /// packed-input stacks skip the first layer's input gradient
    /// entirely — nothing consumes it.
    pub(crate) fn backward_batch(
        &self,
        cache: &SeqBatchCache,
        gout: &[f32],
        grads: &mut SeqGrads,
        gin_rows: Option<&mut Vec<f32>>,
    ) {
        let n = cache.n;
        debug_assert_eq!(grads.len(), self.layers.len());
        let out_dim = *cache.row_dims.last().expect("cache holds a forward pass");
        assert_eq!(gout.len(), n * out_dim, "output-gradient shape mismatch");
        gemm::with_scratch(|s| {
            let mut ping = std::mem::take(&mut s.ping);
            let mut pong = std::mem::take(&mut s.pong);
            layers::ensure_len(&mut ping, n * out_dim).copy_from_slice(gout);
            let want_rows_gin = gin_rows.is_some();
            let rows_count = self.layers.len() - cache.rows_start;
            for j in (0..rows_count).rev() {
                let li = cache.rows_start + j;
                let dim_in = cache.row_dims[j];
                let x = &cache.rows[j][..n * dim_in];
                match &self.layers[li] {
                    Layer::Dense(l) => {
                        let [gw, gb] = &mut grads[li][..] else {
                            panic!("Dense gradient slot holds [gw, gb]")
                        };
                        let need_gin = j > 0 || cache.packed_input || want_rows_gin;
                        l.backward_rows_into(
                            x,
                            n,
                            &ping[..n * l.out_dim],
                            need_gin.then_some(&mut pong),
                            gw,
                            gb,
                        );
                        if need_gin {
                            std::mem::swap(&mut ping, &mut pong);
                        }
                    }
                    Layer::Relu => {
                        for (g, &v) in ping[..n * dim_in].iter_mut().zip(x) {
                            *g = if v <= 0.0 { 0.0 } else { *g };
                        }
                    }
                    Layer::Flatten => {}
                    other => panic!(
                        "image layer {} after the flatten boundary",
                        other.describe()
                    ),
                }
            }
            if cache.packed_input {
                // Boundary: scatter the row gradient back into the
                // packed layout (the adjoint of the forward gather).
                let [c, _, h, w] = cache.packed_shapes[cache.split];
                let (hw, chw) = (h * w, c * h * w);
                {
                    let src = &ping[..n * chw];
                    let dst = layers::ensure_len(&mut pong, c * n * hw);
                    for si in 0..n {
                        for ic in 0..c {
                            dst[(ic * n + si) * hw..][..hw]
                                .copy_from_slice(&src[si * chw + ic * hw..][..hw]);
                        }
                    }
                }
                std::mem::swap(&mut ping, &mut pong);
                // Set when a pool's scatter already applied the gate of
                // the ReLU directly below it (see `unpool_indexed_gated`).
                let mut relu_gated = false;
                for li in (0..cache.split).rev() {
                    let [c, _, h, w] = cache.packed_shapes[li];
                    let [c2, _, oh, ow] = cache.packed_shapes[li + 1];
                    let x = &cache.packed[li][..c * n * h * w];
                    match &self.layers[li] {
                        Layer::Conv2d(l) => {
                            let [gw, gb] = &mut grads[li][..] else {
                                panic!("Conv2d gradient slot holds [gw, gb]")
                            };
                            // The stack input's gradient has no
                            // consumer — the first conv skips its input
                            // GEMM and col2im scatter entirely.
                            let need_gin = li > 0;
                            l.backward_packed_into(
                                n,
                                h,
                                w,
                                &ping[..c2 * n * oh * ow],
                                &cache.cols[li],
                                &mut s.aux,
                                need_gin.then_some(&mut pong),
                                gw,
                                gb,
                            );
                            if need_gin {
                                std::mem::swap(&mut ping, &mut pong);
                            }
                        }
                        Layer::MaxPool2d(l) => {
                            // Pure scatter onto the argmax indices the
                            // forward pass recorded — no window rescan.
                            // When a ReLU feeds this pool, its gate is
                            // folded into the scatter.
                            let god = &ping[..c2 * n * oh * ow];
                            let pidx = &cache.pool_idx[li][..c2 * n * oh * ow];
                            let gind = layers::ensure_len(&mut pong, c * n * h * w);
                            if li > 0 && matches!(self.layers[li - 1], Layer::Relu) {
                                let pooled = &cache.packed[li + 1][..c2 * n * oh * ow];
                                l.unpool_indexed_gated(god, pidx, pooled, gind);
                                relu_gated = true;
                            } else {
                                l.unpool_indexed(god, pidx, gind);
                            }
                            std::mem::swap(&mut ping, &mut pong);
                        }
                        Layer::Relu => {
                            if relu_gated {
                                // The pool above already gated the
                                // scattered gradient; the pass here
                                // would be a no-op.
                                relu_gated = false;
                            } else {
                                for (g, &v) in ping[..c * n * h * w].iter_mut().zip(x) {
                                    *g = if v <= 0.0 { 0.0 } else { *g };
                                }
                            }
                        }
                        Layer::Flatten | Layer::Dense(_) => {
                            unreachable!("rows layer inside the packed prefix")
                        }
                    }
                }
            } else if let Some(gin) = gin_rows {
                let dim0 = cache.row_dims[0];
                layers::ensure_len(gin, n * dim0).copy_from_slice(&ping[..n * dim0]);
            }
            s.ping = ping;
            s.pong = pong;
        });
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let mut s = in_shape.to_vec();
        for l in &self.layers {
            s = l.out_shape(&s);
        }
        s
    }

    /// Zero gradients shaped like this stack's parameters.
    pub fn zero_grads(&self) -> SeqGrads {
        self.layers
            .iter()
            .map(|l| {
                l.params()
                    .iter()
                    .map(|p| Tensor::zeros(p.shape()))
                    .collect()
            })
            .collect()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.len())
            .sum()
    }
}

/// Activation caches of one batched forward pass through a
/// [`Sequential`], consumed by [`Sequential::backward_batch`].
///
/// Layers `[0, split)` ran on the packed `[c, n, h, w]` layout:
/// `packed[i]` holds layer `i`'s input and `packed[split]` the last
/// packed activation. Layers `[rows_start, len)` ran on `[n, dim]` row
/// matrices: `rows[j]` holds layer `rows_start + j`'s input and the
/// last entry the stack output (`rows_start` is `split`, or `split + 1`
/// when the boundary `Flatten` was absorbed into the repack). All
/// buffers grow and are never shrunk; only the extents named by
/// `packed_shapes` / `row_dims` for the cached batch size `n` are
/// meaningful, so re-running a pass reuses every allocation.
#[derive(Debug, Clone, Default)]
pub struct SeqBatchCache {
    n: usize,
    split: usize,
    rows_start: usize,
    packed_input: bool,
    packed: Vec<Vec<f32>>,
    packed_shapes: Vec<[usize; 4]>,
    /// Per-layer im2col lowerings from the forward pass (filled only at
    /// `Conv2d` indices); the backward weight-gradient GEMM reuses them
    /// instead of re-lowering the activations.
    cols: Vec<Vec<f32>>,
    /// Per-layer pooling argmax indices from the forward pass (filled
    /// only at `MaxPool2d` indices); backward scatters onto them.
    pool_idx: Vec<Vec<u32>>,
    rows: Vec<Vec<f32>>,
    row_dims: Vec<usize>,
}

impl SeqBatchCache {
    /// Declares a packed `[c, n, h, w]` stack input and returns its
    /// buffer for the caller to fill.
    fn input_packed(&mut self, shape: [usize; 4]) -> &mut [f32] {
        self.n = shape[1];
        if self.packed.is_empty() {
            self.packed.push(Vec::new());
        }
        if self.packed_shapes.is_empty() {
            self.packed_shapes.push([0; 4]);
        }
        self.packed_shapes[0] = shape;
        layers::ensure_len(&mut self.packed[0], shape.iter().product())
    }

    /// Declares an `[n, dim]` rows stack input and returns its buffer
    /// for the caller to fill.
    fn input_rows(&mut self, n: usize, dim: usize) -> &mut [f32] {
        self.n = n;
        if self.rows.is_empty() {
            self.rows.push(Vec::new());
        }
        if self.row_dims.is_empty() {
            self.row_dims.push(0);
        }
        self.row_dims[0] = dim;
        layers::ensure_len(&mut self.rows[0], n * dim)
    }

    /// Stack output of the cached pass as `[n, dim]` rows.
    pub fn out_rows(&self) -> (&[f32], usize) {
        let dim = *self.row_dims.last().expect("cache holds a forward pass");
        let last = self.rows.last().expect("cache holds a forward pass");
        (&last[..self.n * dim], dim)
    }
}

/// The paper's CNN: convolutional towers plus a fully-connected head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cnn {
    /// Feature-extraction towers (one per channel when late-merging,
    /// exactly one when early-merging).
    pub towers: Vec<Sequential>,
    /// Classification head operating on the concatenated tower outputs.
    pub head: Sequential,
    /// Expected per-channel input shape `[h, w]`.
    pub channel_shape: (usize, usize),
    /// Number of input channels the network consumes.
    pub num_channels: usize,
}

/// Activation caches of one forward pass, consumed by backprop.
#[derive(Debug, Clone)]
pub struct CnnCache {
    tower_inputs: Vec<Tensor>,
    tower_layer_inputs: Vec<Vec<Tensor>>,
    tower_out_lens: Vec<usize>,
    head_layer_inputs: Vec<Tensor>,
    /// Network output (logits).
    pub logits: Tensor,
}

/// Activation caches and gradient scratch of one batched training
/// step through a [`Cnn`], reused across steps by
/// [`crate::train::train`] so the whole loop runs allocation-free in
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct CnnBatchCache {
    towers: Vec<SeqBatchCache>,
    head: SeqBatchCache,
    tower_feat: Vec<usize>,
    n: usize,
    /// Head-input gradient rows, split per tower during backward.
    gmerged: Vec<f32>,
    /// One tower's output-gradient rows (columns gathered out of
    /// `gmerged`).
    gtower: Vec<f32>,
}

impl CnnBatchCache {
    /// Logits of the cached pass as `[n, classes]` rows.
    pub fn logits_rows(&self) -> (&[f32], usize) {
        self.head.out_rows()
    }

    /// Batch size of the cached pass.
    pub fn batch_len(&self) -> usize {
        self.n
    }
}

/// Parameter gradients of a whole [`Cnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct CnnGrads {
    /// Per-tower stacks of per-layer gradients.
    pub towers: Vec<SeqGrads>,
    /// Head gradients.
    pub head: SeqGrads,
}

impl CnnGrads {
    /// `self += other`.
    pub fn add_assign(&mut self, other: &CnnGrads) {
        for (a, b) in self.towers.iter_mut().zip(&other.towers) {
            add_seq(a, b);
        }
        add_seq(&mut self.head, &other.head);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for t in &mut self.towers {
            for l in t {
                for p in l {
                    p.scale(alpha);
                }
            }
        }
        for l in &mut self.head {
            for p in l {
                p.scale(alpha);
            }
        }
    }

    /// Zeroes every gradient tensor in place (shape-preserving), so
    /// the buffer can be reused as a fresh accumulator.
    pub fn clear(&mut self) {
        for t in &mut self.towers {
            clear_seq(t);
        }
        clear_seq(&mut self.head);
    }

    /// Global L2 norm over every gradient tensor, accumulated in f64.
    ///
    /// Non-finite gradients propagate: any NaN yields NaN, any ±Inf
    /// yields +Inf — so a single `!norm.is_finite()` check covers the
    /// divergence guard's whole "poisoned gradient" class.
    pub fn global_norm(&self) -> f64 {
        let mut acc = 0.0f64;
        for t in self.flat() {
            for &v in t.data() {
                let v = v as f64;
                acc += v * v;
            }
        }
        acc.sqrt()
    }

    /// Flat view of every gradient tensor, tower layers first then head
    /// (the order [`Cnn::params_mut_flat`] uses).
    pub fn flat(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        for t in &self.towers {
            for l in t {
                out.extend(l.iter());
            }
        }
        for l in &self.head {
            out.extend(l.iter());
        }
        out
    }
}

fn add_seq(a: &mut SeqGrads, b: &SeqGrads) {
    for (la, lb) in a.iter_mut().zip(b) {
        for (pa, pb) in la.iter_mut().zip(lb) {
            pa.add_assign(pb);
        }
    }
}

fn clear_seq(g: &mut SeqGrads) {
    for l in g {
        for p in l {
            p.data_mut().fill(0.0);
        }
    }
}

impl Cnn {
    /// Maps a sample's `[h, w]` channels to tower inputs: one `[1, h, w]`
    /// tensor per tower (late merging) or a single stacked `[c, h, w]`
    /// tensor (early merging).
    fn tower_inputs(&self, channels: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(
            channels.len(),
            self.num_channels,
            "sample has {} channels, network expects {}",
            channels.len(),
            self.num_channels
        );
        let (h, w) = self.channel_shape;
        for ch in channels {
            assert_eq!(ch.shape(), &[h, w], "channel shape mismatch");
        }
        if self.towers.len() == channels.len() {
            channels
                .iter()
                .map(|c| c.clone().reshape(&[1, h, w]))
                .collect()
        } else if self.towers.len() == 1 {
            let refs: Vec<&Tensor> = channels.iter().collect();
            vec![Tensor::stack_channels(&refs)]
        } else {
            panic!(
                "{} towers cannot consume {} channels",
                self.towers.len(),
                channels.len()
            );
        }
    }

    /// Forward pass returning raw logits.
    pub fn forward(&self, channels: &[Tensor]) -> Tensor {
        let inputs = self.tower_inputs(channels);
        let feats: Vec<Tensor> = self
            .towers
            .iter()
            .zip(&inputs)
            .map(|(t, x)| t.forward(x))
            .collect();
        let refs: Vec<&Tensor> = feats.iter().collect();
        let merged = Tensor::concat_flat(&refs);
        self.head.forward(&merged)
    }

    /// [`Cnn::forward`] with per-layer cancellation checkpoints through
    /// every tower and the head; `None` once `cancel` reports `true`.
    pub fn forward_with_cancel(
        &self,
        channels: &[Tensor],
        cancel: &dyn Fn() -> bool,
    ) -> Option<Tensor> {
        let inputs = self.tower_inputs(channels);
        let mut feats = Vec::with_capacity(self.towers.len());
        for (t, x) in self.towers.iter().zip(&inputs) {
            feats.push(t.forward_with_cancel(x, cancel)?);
        }
        let refs: Vec<&Tensor> = feats.iter().collect();
        let merged = Tensor::concat_flat(&refs);
        self.head.forward_with_cancel(&merged, cancel)
    }

    /// Batched forward pass over many samples' channel sets, returning
    /// one logits tensor per sample. Samples are packed so every
    /// convolution and dense layer runs a single GEMM per tower (or
    /// head) for the whole batch — this is the inference path behind
    /// [`crate::train::evaluate`] and the selector's batched
    /// prediction.
    pub fn forward_batch(&self, batch: &[&[Tensor]]) -> Vec<Tensor> {
        if batch.is_empty() {
            return Vec::new();
        }
        // Transpose the per-sample tower inputs into per-tower batches
        // up front so each tensor moves (rather than clones) into its
        // tower's batched forward pass.
        let mut by_tower: Vec<Vec<Tensor>> = (0..self.towers.len())
            .map(|_| Vec::with_capacity(batch.len()))
            .collect();
        for ch in batch {
            for (ti, x) in self.tower_inputs(ch).into_iter().enumerate() {
                by_tower[ti].push(x);
            }
        }
        let mut feats: Vec<Vec<Tensor>> = vec![Vec::with_capacity(self.towers.len()); batch.len()];
        for (tower, xs) in self.towers.iter().zip(by_tower) {
            for (f, o) in feats.iter_mut().zip(tower.forward_batch(xs)) {
                f.push(o);
            }
        }
        let merged: Vec<Tensor> = feats
            .iter()
            .map(|fs| {
                let refs: Vec<&Tensor> = fs.iter().collect();
                Tensor::concat_flat(&refs)
            })
            .collect();
        self.head.forward_batch(merged)
    }

    /// [`Cnn::forward_batch`] with cancellation checkpoints between
    /// tower layers and head layers: `None` once `cancel` reports
    /// `true`. A serving layer batches several requests' deadlines into
    /// one predicate (typically "all members expired"), so the whole
    /// batch is abandoned only when nobody is left waiting.
    pub fn forward_batch_with_cancel(
        &self,
        batch: &[&[Tensor]],
        cancel: &dyn Fn() -> bool,
    ) -> Option<Vec<Tensor>> {
        if batch.is_empty() {
            return Some(Vec::new());
        }
        let mut by_tower: Vec<Vec<Tensor>> = (0..self.towers.len())
            .map(|_| Vec::with_capacity(batch.len()))
            .collect();
        for ch in batch {
            for (ti, x) in self.tower_inputs(ch).into_iter().enumerate() {
                by_tower[ti].push(x);
            }
        }
        let mut feats: Vec<Vec<Tensor>> = vec![Vec::with_capacity(self.towers.len()); batch.len()];
        for (tower, xs) in self.towers.iter().zip(by_tower) {
            for (f, o) in feats
                .iter_mut()
                .zip(tower.forward_batch_with_cancel(xs, cancel)?)
            {
                f.push(o);
            }
        }
        let merged: Vec<Tensor> = feats
            .iter()
            .map(|fs| {
                let refs: Vec<&Tensor> = fs.iter().collect();
                Tensor::concat_flat(&refs)
            })
            .collect();
        self.head.forward_batch_with_cancel(merged, cancel)
    }

    /// Batched argmax predictions, parallel to `batch`.
    pub fn predict_batch(&self, batch: &[&[Tensor]]) -> Vec<usize> {
        self.forward_batch(batch)
            .iter()
            .map(|logits| argmax(logits.data()))
            .collect()
    }

    /// Batched forward pass that keeps every layer's input in `cache`
    /// for [`Self::backward_batch`] — the forward half of the batched
    /// training step. Tower inputs are packed straight from the
    /// samples' channel tensors into each tower's `[c, n, h, w]` input
    /// buffer, tower output rows are gathered into the head's merged
    /// `[n, feat_total]` input, and the cached logits come back through
    /// [`CnnBatchCache::logits_rows`].
    pub fn forward_batch_cached(&self, batch: &[&[Tensor]], cache: &mut CnnBatchCache) {
        let n = batch.len();
        assert!(n > 0, "batched training needs at least one sample");
        let (h, w) = self.channel_shape;
        let early = self.towers.len() == 1;
        let per_tower_c = if early { self.num_channels } else { 1 };
        assert!(
            early || self.towers.len() == self.num_channels,
            "{} towers cannot consume {} channels",
            self.towers.len(),
            self.num_channels
        );
        for ch in batch {
            assert_eq!(
                ch.len(),
                self.num_channels,
                "sample has {} channels, network expects {}",
                ch.len(),
                self.num_channels
            );
            for c in ch.iter() {
                assert_eq!(c.shape(), &[h, w], "channel shape mismatch");
            }
        }
        cache.n = n;
        cache
            .towers
            .resize_with(self.towers.len(), Default::default);
        for (ti, (tower, tc)) in self.towers.iter().zip(&mut cache.towers).enumerate() {
            let dst = tc.input_packed([per_tower_c, n, h, w]);
            for (si, ch) in batch.iter().enumerate() {
                for ic in 0..per_tower_c {
                    let src = if early { ch[ic].data() } else { ch[ti].data() };
                    dst[(ic * n + si) * (h * w)..][..h * w].copy_from_slice(src);
                }
            }
            tower.forward_batch_cached_packed(tc);
        }
        cache.tower_feat.clear();
        for tc in &cache.towers {
            cache.tower_feat.push(tc.out_rows().1);
        }
        let feat_total: usize = cache.tower_feat.iter().sum();
        {
            let CnnBatchCache {
                towers: tcs,
                head,
                tower_feat,
                ..
            } = cache;
            let merged = head.input_rows(n, feat_total);
            let mut off = 0usize;
            for (tc, &feat) in tcs.iter().zip(tower_feat.iter()) {
                let (src, dim) = tc.out_rows();
                debug_assert_eq!(dim, feat);
                for si in 0..n {
                    merged[si * feat_total + off..][..feat]
                        .copy_from_slice(&src[si * dim..][..dim]);
                }
                off += feat;
            }
        }
        self.head.forward_batch_cached_rows(&mut cache.head);
    }

    /// Batched backward pass from the gradient on the cached logits
    /// rows (`[n, classes]`, e.g. the output of
    /// [`crate::loss::softmax_cross_entropy_batch`]). Overwrites
    /// `grads` (shaped by [`Self::zero_grads`]) with the batch-summed
    /// parameter gradients: one weight-gradient GEMM per layer with the
    /// batch reduction fused into its inner dimension, no per-sample
    /// gradient sets. With `freeze_towers` the tower gradients are
    /// zeroed and their backward walks — and the head-input gradient
    /// feeding them — are skipped entirely.
    pub fn backward_batch(
        &self,
        cache: &mut CnnBatchCache,
        glogits: &[f32],
        freeze_towers: bool,
        grads: &mut CnnGrads,
    ) {
        let n = cache.n;
        let CnnBatchCache {
            towers: tcs,
            head,
            tower_feat,
            gmerged,
            gtower,
            ..
        } = cache;
        let gin = (!freeze_towers).then_some(&mut *gmerged);
        self.head
            .backward_batch(head, glogits, &mut grads.head, gin);
        if freeze_towers {
            for t in &mut grads.towers {
                clear_seq(t);
            }
            return;
        }
        let feat_total: usize = tower_feat.iter().sum();
        let mut off = 0usize;
        for ((tower, tc), (tg, &feat)) in self
            .towers
            .iter()
            .zip(tcs.iter())
            .zip(grads.towers.iter_mut().zip(tower_feat.iter()))
        {
            let g = layers::ensure_len(gtower, n * feat);
            for si in 0..n {
                g[si * feat..][..feat].copy_from_slice(&gmerged[si * feat_total + off..][..feat]);
            }
            tower.backward_batch(tc, &gtower[..n * feat], tg, None);
            off += feat;
        }
    }

    /// Forward pass with activation caching for backprop.
    pub fn forward_cached(&self, channels: &[Tensor]) -> CnnCache {
        let tower_inputs = self.tower_inputs(channels);
        let mut tower_layer_inputs = Vec::with_capacity(self.towers.len());
        let mut feats = Vec::with_capacity(self.towers.len());
        for (t, x) in self.towers.iter().zip(&tower_inputs) {
            let (inputs, out) = t.forward_cached(x);
            tower_layer_inputs.push(inputs);
            feats.push(out);
        }
        let tower_out_lens: Vec<usize> = feats.iter().map(|f| f.len()).collect();
        let refs: Vec<&Tensor> = feats.iter().collect();
        let merged = Tensor::concat_flat(&refs);
        let (head_layer_inputs, logits) = self.head.forward_cached(&merged);
        CnnCache {
            tower_inputs,
            tower_layer_inputs,
            tower_out_lens,
            head_layer_inputs,
            logits,
        }
    }

    /// Backward pass from a loss gradient on the logits.
    pub fn backward(&self, cache: &CnnCache, grad_logits: &Tensor) -> CnnGrads {
        let (gmerged, head_grads) = self.head.backward(&cache.head_layer_inputs, grad_logits);
        // Split the merged-feature gradient back into tower pieces.
        let mut tower_grads = Vec::with_capacity(self.towers.len());
        let mut offset = 0usize;
        for (i, t) in self.towers.iter().enumerate() {
            let len = cache.tower_out_lens[i];
            let piece = Tensor::from_vec(&[len], gmerged.data()[offset..offset + len].to_vec());
            offset += len;
            let (_gin, grads) = t.backward(&cache.tower_layer_inputs[i], &piece);
            let _ = &cache.tower_inputs; // inputs live in layer_inputs[0]
            tower_grads.push(grads);
        }
        CnnGrads {
            towers: tower_grads,
            head: head_grads,
        }
    }

    /// Zero gradients shaped like this network.
    pub fn zero_grads(&self) -> CnnGrads {
        CnnGrads {
            towers: self.towers.iter().map(|t| t.zero_grads()).collect(),
            head: self.head.zero_grads(),
        }
    }

    /// Flat mutable parameter list (tower layers first, then head),
    /// each tagged with whether it belongs to a tower. Order matches
    /// [`CnnGrads::flat`].
    pub fn params_mut_flat(&mut self) -> Vec<(&mut Tensor, bool)> {
        let mut out = Vec::new();
        for t in &mut self.towers {
            for l in &mut t.layers {
                out.extend(l.params_mut().into_iter().map(|p| (p, true)));
            }
        }
        for l in &mut self.head.layers {
            out.extend(l.params_mut().into_iter().map(|p| (p, false)));
        }
        out
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.towers
            .iter()
            .map(Sequential::num_params)
            .sum::<usize>()
            + self.head.num_params()
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&self, channels: &[Tensor]) -> usize {
        let logits = self.forward(channels);
        argmax(logits.data())
    }

    /// Number of classes this network emits (the width of its output
    /// vector), or `None` if the layer chain is malformed.
    pub fn out_dim(&self) -> Option<usize> {
        let shape = self.validated_out_shape().ok()?;
        match shape.as_slice() {
            [d] => Some(*d),
            _ => None,
        }
    }

    /// Structural validation for deserialised networks.
    ///
    /// The forward paths assert their invariants (channel counts, tensor
    /// shapes, layer ordering) with panics — fine for networks built by
    /// [`crate::structures::build_cnn`], fatal for networks read from
    /// disk. This walks every invariant those asserts rely on and
    /// reports the first violation as `Err`, so `load_model` can reject
    /// a corrupted or hand-mangled file up front and inference never
    /// panics on artefact contents.
    pub fn validate(&self) -> Result<(), String> {
        self.validated_out_shape().map(|_| ())
    }

    /// Shared walk behind [`Self::validate`] / [`Self::out_dim`]:
    /// checks every parameter tensor and propagates shapes through the
    /// towers and head, returning the head's output shape.
    fn validated_out_shape(&self) -> Result<Vec<usize>, String> {
        let (h, w) = self.channel_shape;
        if h == 0 || w == 0 {
            return Err(format!("channel shape {h}x{w} has a zero extent"));
        }
        if self.num_channels == 0 {
            return Err("network declares zero input channels".into());
        }
        let per_tower_c = if self.towers.len() == 1 {
            self.num_channels
        } else if self.towers.len() == self.num_channels {
            1
        } else {
            return Err(format!(
                "{} towers cannot consume {} channels",
                self.towers.len(),
                self.num_channels
            ));
        };
        let mut feat_total = 0usize;
        for (ti, tower) in self.towers.iter().enumerate() {
            let mut shape = vec![per_tower_c, h, w];
            for (li, layer) in tower.layers.iter().enumerate() {
                layer
                    .validate_params()
                    .map_err(|e| format!("tower {ti} layer {li}: {e}"))?;
                shape = layer
                    .try_out_shape(&shape)
                    .map_err(|e| format!("tower {ti} layer {li}: {e}"))?;
            }
            // The merge flattens each tower's output; any shape concats.
            feat_total += shape.iter().product::<usize>();
        }
        let mut shape = vec![feat_total];
        for (li, layer) in self.head.layers.iter().enumerate() {
            layer
                .validate_params()
                .map_err(|e| format!("head layer {li}: {e}"))?;
            if matches!(layer, Layer::Conv2d(_) | Layer::MaxPool2d(_)) {
                return Err(format!(
                    "head layer {li}: image layer {} after the flatten boundary",
                    layer.describe()
                ));
            }
            shape = layer
                .try_out_shape(&shape)
                .map_err(|e| format!("head layer {li}: {e}"))?;
        }
        match shape.as_slice() {
            [d] if *d > 0 => Ok(shape),
            _ => Err(format!("head output shape {shape:?} is not a class vector")),
        }
    }
}

/// Index of the largest element (first wins ties).
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, MaxPool2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cnn(towers: usize, channels: usize, seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let in_ch = if towers == 1 { channels } else { 1 };
        let make_tower = |rng: &mut StdRng| {
            Sequential::new(vec![
                Layer::Conv2d(Conv2d::new(in_ch, 4, 3, 1, rng)),
                Layer::Relu,
                Layer::MaxPool2d(MaxPool2d { size: 2 }),
                Layer::Flatten,
            ])
        };
        let tower_list: Vec<Sequential> = (0..towers).map(|_| make_tower(&mut rng)).collect();
        let feat: usize = tower_list
            .iter()
            .map(|t| t.out_shape(&[in_ch, 8, 8]).iter().product::<usize>())
            .sum();
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(feat, 8, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::new(8, 3, &mut rng)),
        ]);
        Cnn {
            towers: tower_list,
            head,
            channel_shape: (8, 8),
            num_channels: channels,
        }
    }

    fn sample_channels(channels: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand_distr::{Distribution, Normal};
        let d = Normal::new(0.0, 1.0).unwrap();
        (0..channels)
            .map(|_| {
                Tensor::from_vec(
                    &[8, 8],
                    (0..64).map(|_| d.sample(&mut rng) as f32).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn late_merge_forward_produces_logits() {
        let net = tiny_cnn(2, 2, 1);
        let logits = net.forward(&sample_channels(2, 9));
        assert_eq!(logits.shape(), &[3]);
    }

    #[test]
    fn cancellable_forward_matches_plain_and_aborts() {
        use std::cell::Cell;
        let net = tiny_cnn(2, 2, 1);
        let x = sample_channels(2, 9);
        // Uncancelled: bit-identical to the plain pass.
        let got = net.forward_with_cancel(&x, &|| false).unwrap();
        assert_eq!(got.data(), net.forward(&x).data());
        // Cancelled immediately: no output.
        assert!(net.forward_with_cancel(&x, &|| true).is_none());
        // Cancelled mid-pass: the checkpoint fires between layers.
        let polls = Cell::new(0u32);
        let cancel_late = || {
            polls.set(polls.get() + 1);
            polls.get() > 3
        };
        assert!(net.forward_with_cancel(&x, &cancel_late).is_none());
        assert!(polls.get() >= 4);
    }

    #[test]
    fn early_merge_forward_produces_logits() {
        let net = tiny_cnn(1, 2, 2);
        let logits = net.forward(&sample_channels(2, 9));
        assert_eq!(logits.shape(), &[3]);
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let net = tiny_cnn(2, 2, 3);
        let ch = sample_channels(2, 5);
        let plain = net.forward(&ch);
        let cache = net.forward_cached(&ch);
        assert_eq!(cache.logits, plain);
    }

    #[test]
    fn batched_forward_matches_single_samples() {
        for (towers, channels, seed) in [(2usize, 2usize, 21u64), (1, 2, 22)] {
            let net = tiny_cnn(towers, channels, seed);
            let samples: Vec<Vec<Tensor>> =
                (0..5).map(|i| sample_channels(channels, 100 + i)).collect();
            let refs: Vec<&[Tensor]> = samples.iter().map(|s| s.as_slice()).collect();
            let batched = net.forward_batch(&refs);
            assert_eq!(batched.len(), samples.len());
            for (s, got) in samples.iter().zip(&batched) {
                let want = net.forward(s);
                assert_eq!(got.shape(), want.shape());
                for (g, w) in got.data().iter().zip(want.data()) {
                    assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
                }
            }
            let preds = net.predict_batch(&refs);
            assert_eq!(preds.len(), samples.len());
            assert!(net.forward_batch(&[]).is_empty());
        }
    }

    #[test]
    fn cancellable_batched_forward_matches_plain_and_aborts() {
        use std::cell::Cell;
        for (towers, channels, seed) in [(2usize, 2usize, 41u64), (1, 2, 42)] {
            let net = tiny_cnn(towers, channels, seed);
            let samples: Vec<Vec<Tensor>> =
                (0..4).map(|i| sample_channels(channels, 200 + i)).collect();
            let refs: Vec<&[Tensor]> = samples.iter().map(|s| s.as_slice()).collect();
            // Uncancelled: bit-identical to the plain batched pass.
            let got = net.forward_batch_with_cancel(&refs, &|| false).unwrap();
            let want = net.forward_batch(&refs);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.data(), w.data());
            }
            // Cancelled immediately: no output.
            assert!(net.forward_batch_with_cancel(&refs, &|| true).is_none());
            // Cancelled mid-pass: the checkpoint is polled repeatedly.
            let polls = Cell::new(0u32);
            let cancel_late = || {
                polls.set(polls.get() + 1);
                polls.get() > 2
            };
            assert!(net.forward_batch_with_cancel(&refs, &cancel_late).is_none());
            assert!(polls.get() >= 3);
            // Empty batch short-circuits without consulting the hook.
            assert!(net
                .forward_batch_with_cancel(&[], &|| true)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn batched_cached_forward_and_backward_match_per_sample() {
        for (towers, channels, seed) in [(2usize, 2usize, 31u64), (1, 2, 32)] {
            let net = tiny_cnn(towers, channels, seed);
            let samples: Vec<Vec<Tensor>> =
                (0..4).map(|i| sample_channels(channels, 200 + i)).collect();
            let refs: Vec<&[Tensor]> = samples.iter().map(|s| s.as_slice()).collect();
            let mut cache = CnnBatchCache::default();
            net.forward_batch_cached(&refs, &mut cache);
            assert_eq!(cache.batch_len(), samples.len());
            let (logits, classes) = cache.logits_rows();
            assert_eq!(classes, 3);
            for (si, s) in samples.iter().enumerate() {
                let want = net.forward(s);
                for (g, w) in logits[si * classes..][..classes].iter().zip(want.data()) {
                    assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
                }
            }
            // Batch-summed gradients against the per-sample sum.
            let glogits: Vec<f32> = (0..samples.len() * classes)
                .map(|i| (i as f32 * 0.37).sin())
                .collect();
            let mut want = net.zero_grads();
            for (si, s) in samples.iter().enumerate() {
                let c = net.forward_cached(s);
                let gl = Tensor::from_vec(&[classes], glogits[si * classes..][..classes].to_vec());
                want.add_assign(&net.backward(&c, &gl));
            }
            let mut got = net.zero_grads();
            net.backward_batch(&mut cache, &glogits, false, &mut got);
            for (a, b) in got.flat().iter().zip(want.flat()) {
                for (x, y) in a.data().iter().zip(b.data()) {
                    assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
                }
            }
            // Frozen towers: identical head gradients, zeroed tower
            // gradients (their backward walks are skipped).
            let mut frozen = net.zero_grads();
            net.backward_batch(&mut cache, &glogits, true, &mut frozen);
            for (a, b) in frozen.head.iter().flatten().zip(got.head.iter().flatten()) {
                assert_eq!(a, b, "frozen head gradients must be unchanged");
            }
            assert!(frozen
                .towers
                .iter()
                .flatten()
                .flatten()
                .all(|t| t.data().iter().all(|&v| v == 0.0)));
        }
    }

    #[test]
    fn whole_network_gradcheck() {
        // Finite-difference check through towers, merge and head.
        let mut net = tiny_cnn(2, 2, 4);
        let ch = sample_channels(2, 6);
        let loss_w = [0.3f32, -0.7, 1.1];
        let loss = |n: &Cnn| -> f64 {
            n.forward(&ch)
                .data()
                .iter()
                .zip(&loss_w)
                .map(|(&o, &w)| (o * w) as f64)
                .sum()
        };
        let cache = net.forward_cached(&ch);
        let gl = Tensor::from_vec(&[3], loss_w.to_vec());
        let grads = net.backward(&cache, &gl);
        let flat_grads: Vec<Tensor> = grads.flat().into_iter().cloned().collect();
        let eps = 1e-2f32;
        let n_params = net.params_mut_flat().len();
        assert_eq!(n_params, flat_grads.len());
        // ReLU gates and pool argmaxes can flip under the finite
        // perturbation, making individual numeric derivatives wrong at
        // kinks; require the overwhelming majority to match instead of
        // every single one.
        let mut checked = 0usize;
        let mut mismatched = 0usize;
        for p in 0..n_params {
            let plen = flat_grads[p].len();
            for idx in (0..plen).step_by((plen / 5).max(1)) {
                let orig = {
                    let mut ps = net.params_mut_flat();
                    let v = ps[p].0.data()[idx];
                    ps[p].0.data_mut()[idx] = v + eps;
                    v
                };
                let lp = loss(&net);
                net.params_mut_flat()[p].0.data_mut()[idx] = orig - eps;
                let lm = loss(&net);
                net.params_mut_flat()[p].0.data_mut()[idx] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                let ana = flat_grads[p].data()[idx] as f64;
                checked += 1;
                if (num - ana).abs() > 2e-2 * (1.0 + num.abs().max(ana.abs())) {
                    mismatched += 1;
                }
            }
        }
        assert!(checked >= 20, "gradcheck sampled too few points");
        assert!(
            mismatched * 20 <= checked,
            "{mismatched}/{checked} gradient checks failed"
        );
    }

    #[test]
    fn grads_add_and_scale() {
        let net = tiny_cnn(2, 2, 7);
        let ch = sample_channels(2, 8);
        let cache = net.forward_cached(&ch);
        let gl = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let g1 = net.backward(&cache, &gl);
        let mut g2 = g1.clone();
        g2.add_assign(&g1);
        g2.scale(0.5);
        for (a, b) in g1.flat().iter().zip(g2.flat()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn params_mut_flat_tags_towers() {
        let mut net = tiny_cnn(2, 2, 1);
        let tags: Vec<bool> = net.params_mut_flat().iter().map(|(_, t)| *t).collect();
        // Two towers with one conv each (2 tensors) then head (4).
        assert_eq!(
            tags,
            vec![true, true, true, true, false, false, false, false]
        );
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn channel_count_mismatch_panics() {
        let net = tiny_cnn(2, 2, 1);
        let _ = net.forward(&sample_channels(1, 0));
    }
}
