//! Networks: [`Sequential`] layer stacks and the two-part [`Cnn`] that
//! expresses both of the paper's structures.
//!
//! A [`Cnn`] is N convolutional *towers* plus a fully-connected *head*.
//! The late-merging structure (Figure 7/10) uses one tower per input
//! channel and concatenates their features only at the head — "the
//! outputs of the two networks are put together as joint features, fed
//! to the fully connected layer". The early-merging structure
//! (Figure 6) is the degenerate case of a single tower consuming all
//! channels stacked into one multi-channel image.

use crate::gemm;
use crate::layers::{self, Layer};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A labelled training/evaluation sample: the representation channels
/// of one matrix (each `[h, w]`) plus its best-format class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input channels, each of shape `[h, w]`.
    pub channels: Vec<Tensor>,
    /// Class label (index into the platform's format set).
    pub label: usize,
}

/// A stack of layers applied in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Sequential {
    /// The layers, applied front to back.
    pub layers: Vec<Layer>,
}

/// Per-layer parameter gradients of a [`Sequential`].
pub type SeqGrads = Vec<Vec<Tensor>>;

impl Sequential {
    /// Creates a stack from layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Plain forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for l in &self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    /// Batched forward pass over same-shaped inputs: each GEMM-backed
    /// layer processes the whole batch in one product.
    pub fn forward_batch(&self, xs: Vec<Tensor>) -> Vec<Tensor> {
        let mut cur = xs;
        let mut li = 0;
        // Image-shaped batches run the convolutional prefix packed as
        // one `[c, n, h, w]` block (see `layers::pack_batch`): each
        // conv/pool/relu layer hands the whole batch along without
        // per-sample unpack copies. A leading convolution lowers the
        // per-sample inputs directly into the packed layout; otherwise
        // the batch is packed up front. The walk ping-pongs between two
        // recycled scratch buffers (batch-sized activations live above
        // the allocator's mmap threshold, so fresh allocations would
        // page-fault on every layer) and ReLU runs in place.
        // Sample-wise processing resumes at the first layer that needs
        // individual tensors (`Flatten`).
        let packable = matches!(
            self.layers.first(),
            Some(Layer::Conv2d(_) | Layer::MaxPool2d(_) | Layer::Relu)
        );
        if cur.len() > 1 && cur[0].shape().len() == 3 && packable {
            cur = gemm::with_scratch(|s| {
                let mut ping = std::mem::take(&mut s.ping);
                let mut pong = std::mem::take(&mut s.pong);
                let mut shape = match &self.layers[0] {
                    Layer::Conv2d(l) => {
                        li = 1;
                        l.forward_batch_packed_into(&cur, &mut s.col, &mut ping)
                    }
                    _ => layers::pack_batch_into(&cur, &mut ping),
                };
                while li < self.layers.len() {
                    let [c, n, h, w] = shape;
                    match &self.layers[li] {
                        Layer::Conv2d(l) => {
                            shape = l.forward_packed_into(
                                &ping[..c * n * h * w],
                                n,
                                h,
                                w,
                                &mut s.col,
                                &mut pong,
                            );
                            std::mem::swap(&mut ping, &mut pong);
                        }
                        Layer::MaxPool2d(l) => {
                            let (oh, ow) = l.out_hw(h, w);
                            if pong.len() < c * n * oh * ow {
                                pong.resize(c * n * oh * ow, 0.0);
                            }
                            l.pool_planes(
                                &ping[..c * n * h * w],
                                c * n,
                                h,
                                w,
                                &mut pong[..c * n * oh * ow],
                            );
                            shape = [c, n, oh, ow];
                            std::mem::swap(&mut ping, &mut pong);
                        }
                        Layer::Relu => {
                            for v in &mut ping[..c * n * h * w] {
                                *v = if *v < 0.0 { 0.0 } else { *v };
                            }
                        }
                        Layer::Flatten | Layer::Dense(_) => break,
                    }
                    li += 1;
                }
                let [c, n, h, w] = shape;
                let out = layers::unpack_planes(&ping[..c * n * h * w], c, n, h, w);
                s.ping = ping;
                s.pong = pong;
                out
            });
        }
        for l in &self.layers[li..] {
            cur = l.forward_batch(&cur);
        }
        cur
    }

    /// Forward pass that keeps each layer's input for backprop.
    /// Returns (per-layer inputs, final output).
    pub fn forward_cached(&self, x: &Tensor) -> (Vec<Tensor>, Tensor) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for l in &self.layers {
            let next = l.forward(&cur);
            inputs.push(cur);
            cur = next;
        }
        (inputs, cur)
    }

    /// Backward pass. `inputs` must come from [`Self::forward_cached`].
    /// Returns (gradient w.r.t. the stack input, per-layer parameter
    /// gradients).
    pub fn backward(&self, inputs: &[Tensor], gout: &Tensor) -> (Tensor, SeqGrads) {
        debug_assert_eq!(inputs.len(), self.layers.len());
        let mut grads: SeqGrads = vec![Vec::new(); self.layers.len()];
        let mut g = gout.clone();
        for (i, l) in self.layers.iter().enumerate().rev() {
            let (gin, gparams) = l.backward(&inputs[i], &g);
            grads[i] = gparams;
            g = gin;
        }
        (g, grads)
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let mut s = in_shape.to_vec();
        for l in &self.layers {
            s = l.out_shape(&s);
        }
        s
    }

    /// Zero gradients shaped like this stack's parameters.
    pub fn zero_grads(&self) -> SeqGrads {
        self.layers
            .iter()
            .map(|l| {
                l.params()
                    .iter()
                    .map(|p| Tensor::zeros(p.shape()))
                    .collect()
            })
            .collect()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.len())
            .sum()
    }
}

/// The paper's CNN: convolutional towers plus a fully-connected head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cnn {
    /// Feature-extraction towers (one per channel when late-merging,
    /// exactly one when early-merging).
    pub towers: Vec<Sequential>,
    /// Classification head operating on the concatenated tower outputs.
    pub head: Sequential,
    /// Expected per-channel input shape `[h, w]`.
    pub channel_shape: (usize, usize),
    /// Number of input channels the network consumes.
    pub num_channels: usize,
}

/// Activation caches of one forward pass, consumed by backprop.
#[derive(Debug, Clone)]
pub struct CnnCache {
    tower_inputs: Vec<Tensor>,
    tower_layer_inputs: Vec<Vec<Tensor>>,
    tower_out_lens: Vec<usize>,
    head_layer_inputs: Vec<Tensor>,
    /// Network output (logits).
    pub logits: Tensor,
}

/// Parameter gradients of a whole [`Cnn`].
#[derive(Debug, Clone, PartialEq)]
pub struct CnnGrads {
    /// Per-tower stacks of per-layer gradients.
    pub towers: Vec<SeqGrads>,
    /// Head gradients.
    pub head: SeqGrads,
}

impl CnnGrads {
    /// `self += other`.
    pub fn add_assign(&mut self, other: &CnnGrads) {
        for (a, b) in self.towers.iter_mut().zip(&other.towers) {
            add_seq(a, b);
        }
        add_seq(&mut self.head, &other.head);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for t in &mut self.towers {
            for l in t {
                for p in l {
                    p.scale(alpha);
                }
            }
        }
        for l in &mut self.head {
            for p in l {
                p.scale(alpha);
            }
        }
    }

    /// Flat view of every gradient tensor, tower layers first then head
    /// (the order [`Cnn::params_mut_flat`] uses).
    pub fn flat(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        for t in &self.towers {
            for l in t {
                out.extend(l.iter());
            }
        }
        for l in &self.head {
            out.extend(l.iter());
        }
        out
    }
}

fn add_seq(a: &mut SeqGrads, b: &SeqGrads) {
    for (la, lb) in a.iter_mut().zip(b) {
        for (pa, pb) in la.iter_mut().zip(lb) {
            pa.add_assign(pb);
        }
    }
}

impl Cnn {
    /// Maps a sample's `[h, w]` channels to tower inputs: one `[1, h, w]`
    /// tensor per tower (late merging) or a single stacked `[c, h, w]`
    /// tensor (early merging).
    fn tower_inputs(&self, channels: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(
            channels.len(),
            self.num_channels,
            "sample has {} channels, network expects {}",
            channels.len(),
            self.num_channels
        );
        let (h, w) = self.channel_shape;
        for ch in channels {
            assert_eq!(ch.shape(), &[h, w], "channel shape mismatch");
        }
        if self.towers.len() == channels.len() {
            channels
                .iter()
                .map(|c| c.clone().reshape(&[1, h, w]))
                .collect()
        } else if self.towers.len() == 1 {
            let refs: Vec<&Tensor> = channels.iter().collect();
            vec![Tensor::stack_channels(&refs)]
        } else {
            panic!(
                "{} towers cannot consume {} channels",
                self.towers.len(),
                channels.len()
            );
        }
    }

    /// Forward pass returning raw logits.
    pub fn forward(&self, channels: &[Tensor]) -> Tensor {
        let inputs = self.tower_inputs(channels);
        let feats: Vec<Tensor> = self
            .towers
            .iter()
            .zip(&inputs)
            .map(|(t, x)| t.forward(x))
            .collect();
        let refs: Vec<&Tensor> = feats.iter().collect();
        let merged = Tensor::concat_flat(&refs);
        self.head.forward(&merged)
    }

    /// Batched forward pass over many samples' channel sets, returning
    /// one logits tensor per sample. Samples are packed so every
    /// convolution and dense layer runs a single GEMM per tower (or
    /// head) for the whole batch — this is the inference path behind
    /// [`crate::train::evaluate`] and the selector's batched
    /// prediction.
    pub fn forward_batch(&self, batch: &[&[Tensor]]) -> Vec<Tensor> {
        if batch.is_empty() {
            return Vec::new();
        }
        // Transpose the per-sample tower inputs into per-tower batches
        // up front so each tensor moves (rather than clones) into its
        // tower's batched forward pass.
        let mut by_tower: Vec<Vec<Tensor>> = (0..self.towers.len())
            .map(|_| Vec::with_capacity(batch.len()))
            .collect();
        for ch in batch {
            for (ti, x) in self.tower_inputs(ch).into_iter().enumerate() {
                by_tower[ti].push(x);
            }
        }
        let mut feats: Vec<Vec<Tensor>> = vec![Vec::with_capacity(self.towers.len()); batch.len()];
        for (tower, xs) in self.towers.iter().zip(by_tower) {
            for (f, o) in feats.iter_mut().zip(tower.forward_batch(xs)) {
                f.push(o);
            }
        }
        let merged: Vec<Tensor> = feats
            .iter()
            .map(|fs| {
                let refs: Vec<&Tensor> = fs.iter().collect();
                Tensor::concat_flat(&refs)
            })
            .collect();
        self.head.forward_batch(merged)
    }

    /// Batched argmax predictions, parallel to `batch`.
    pub fn predict_batch(&self, batch: &[&[Tensor]]) -> Vec<usize> {
        self.forward_batch(batch)
            .iter()
            .map(|logits| argmax(logits.data()))
            .collect()
    }

    /// Forward pass with activation caching for backprop.
    pub fn forward_cached(&self, channels: &[Tensor]) -> CnnCache {
        let tower_inputs = self.tower_inputs(channels);
        let mut tower_layer_inputs = Vec::with_capacity(self.towers.len());
        let mut feats = Vec::with_capacity(self.towers.len());
        for (t, x) in self.towers.iter().zip(&tower_inputs) {
            let (inputs, out) = t.forward_cached(x);
            tower_layer_inputs.push(inputs);
            feats.push(out);
        }
        let tower_out_lens: Vec<usize> = feats.iter().map(|f| f.len()).collect();
        let refs: Vec<&Tensor> = feats.iter().collect();
        let merged = Tensor::concat_flat(&refs);
        let (head_layer_inputs, logits) = self.head.forward_cached(&merged);
        CnnCache {
            tower_inputs,
            tower_layer_inputs,
            tower_out_lens,
            head_layer_inputs,
            logits,
        }
    }

    /// Backward pass from a loss gradient on the logits.
    pub fn backward(&self, cache: &CnnCache, grad_logits: &Tensor) -> CnnGrads {
        let (gmerged, head_grads) = self.head.backward(&cache.head_layer_inputs, grad_logits);
        // Split the merged-feature gradient back into tower pieces.
        let mut tower_grads = Vec::with_capacity(self.towers.len());
        let mut offset = 0usize;
        for (i, t) in self.towers.iter().enumerate() {
            let len = cache.tower_out_lens[i];
            let piece = Tensor::from_vec(&[len], gmerged.data()[offset..offset + len].to_vec());
            offset += len;
            let (_gin, grads) = t.backward(&cache.tower_layer_inputs[i], &piece);
            let _ = &cache.tower_inputs; // inputs live in layer_inputs[0]
            tower_grads.push(grads);
        }
        CnnGrads {
            towers: tower_grads,
            head: head_grads,
        }
    }

    /// Zero gradients shaped like this network.
    pub fn zero_grads(&self) -> CnnGrads {
        CnnGrads {
            towers: self.towers.iter().map(|t| t.zero_grads()).collect(),
            head: self.head.zero_grads(),
        }
    }

    /// Flat mutable parameter list (tower layers first, then head),
    /// each tagged with whether it belongs to a tower. Order matches
    /// [`CnnGrads::flat`].
    pub fn params_mut_flat(&mut self) -> Vec<(&mut Tensor, bool)> {
        let mut out = Vec::new();
        for t in &mut self.towers {
            for l in &mut t.layers {
                out.extend(l.params_mut().into_iter().map(|p| (p, true)));
            }
        }
        for l in &mut self.head.layers {
            out.extend(l.params_mut().into_iter().map(|p| (p, false)));
        }
        out
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.towers
            .iter()
            .map(Sequential::num_params)
            .sum::<usize>()
            + self.head.num_params()
    }

    /// Predicted class (argmax of the logits).
    pub fn predict(&self, channels: &[Tensor]) -> usize {
        let logits = self.forward(channels);
        argmax(logits.data())
    }
}

/// Index of the largest element (first wins ties).
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, MaxPool2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cnn(towers: usize, channels: usize, seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let in_ch = if towers == 1 { channels } else { 1 };
        let make_tower = |rng: &mut StdRng| {
            Sequential::new(vec![
                Layer::Conv2d(Conv2d::new(in_ch, 4, 3, 1, rng)),
                Layer::Relu,
                Layer::MaxPool2d(MaxPool2d { size: 2 }),
                Layer::Flatten,
            ])
        };
        let tower_list: Vec<Sequential> = (0..towers).map(|_| make_tower(&mut rng)).collect();
        let feat: usize = tower_list
            .iter()
            .map(|t| t.out_shape(&[in_ch, 8, 8]).iter().product::<usize>())
            .sum();
        let head = Sequential::new(vec![
            Layer::Dense(Dense::new(feat, 8, &mut rng)),
            Layer::Relu,
            Layer::Dense(Dense::new(8, 3, &mut rng)),
        ]);
        Cnn {
            towers: tower_list,
            head,
            channel_shape: (8, 8),
            num_channels: channels,
        }
    }

    fn sample_channels(channels: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand_distr::{Distribution, Normal};
        let d = Normal::new(0.0, 1.0).unwrap();
        (0..channels)
            .map(|_| {
                Tensor::from_vec(
                    &[8, 8],
                    (0..64).map(|_| d.sample(&mut rng) as f32).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn late_merge_forward_produces_logits() {
        let net = tiny_cnn(2, 2, 1);
        let logits = net.forward(&sample_channels(2, 9));
        assert_eq!(logits.shape(), &[3]);
    }

    #[test]
    fn early_merge_forward_produces_logits() {
        let net = tiny_cnn(1, 2, 2);
        let logits = net.forward(&sample_channels(2, 9));
        assert_eq!(logits.shape(), &[3]);
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let net = tiny_cnn(2, 2, 3);
        let ch = sample_channels(2, 5);
        let plain = net.forward(&ch);
        let cache = net.forward_cached(&ch);
        assert_eq!(cache.logits, plain);
    }

    #[test]
    fn batched_forward_matches_single_samples() {
        for (towers, channels, seed) in [(2usize, 2usize, 21u64), (1, 2, 22)] {
            let net = tiny_cnn(towers, channels, seed);
            let samples: Vec<Vec<Tensor>> =
                (0..5).map(|i| sample_channels(channels, 100 + i)).collect();
            let refs: Vec<&[Tensor]> = samples.iter().map(|s| s.as_slice()).collect();
            let batched = net.forward_batch(&refs);
            assert_eq!(batched.len(), samples.len());
            for (s, got) in samples.iter().zip(&batched) {
                let want = net.forward(s);
                assert_eq!(got.shape(), want.shape());
                for (g, w) in got.data().iter().zip(want.data()) {
                    assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{g} vs {w}");
                }
            }
            let preds = net.predict_batch(&refs);
            assert_eq!(preds.len(), samples.len());
            assert!(net.forward_batch(&[]).is_empty());
        }
    }

    #[test]
    fn whole_network_gradcheck() {
        // Finite-difference check through towers, merge and head.
        let mut net = tiny_cnn(2, 2, 4);
        let ch = sample_channels(2, 6);
        let loss_w = [0.3f32, -0.7, 1.1];
        let loss = |n: &Cnn| -> f64 {
            n.forward(&ch)
                .data()
                .iter()
                .zip(&loss_w)
                .map(|(&o, &w)| (o * w) as f64)
                .sum()
        };
        let cache = net.forward_cached(&ch);
        let gl = Tensor::from_vec(&[3], loss_w.to_vec());
        let grads = net.backward(&cache, &gl);
        let flat_grads: Vec<Tensor> = grads.flat().into_iter().cloned().collect();
        let eps = 1e-2f32;
        let n_params = net.params_mut_flat().len();
        assert_eq!(n_params, flat_grads.len());
        // ReLU gates and pool argmaxes can flip under the finite
        // perturbation, making individual numeric derivatives wrong at
        // kinks; require the overwhelming majority to match instead of
        // every single one.
        let mut checked = 0usize;
        let mut mismatched = 0usize;
        for p in 0..n_params {
            let plen = flat_grads[p].len();
            for idx in (0..plen).step_by((plen / 5).max(1)) {
                let orig = {
                    let mut ps = net.params_mut_flat();
                    let v = ps[p].0.data()[idx];
                    ps[p].0.data_mut()[idx] = v + eps;
                    v
                };
                let lp = loss(&net);
                net.params_mut_flat()[p].0.data_mut()[idx] = orig - eps;
                let lm = loss(&net);
                net.params_mut_flat()[p].0.data_mut()[idx] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                let ana = flat_grads[p].data()[idx] as f64;
                checked += 1;
                if (num - ana).abs() > 2e-2 * (1.0 + num.abs().max(ana.abs())) {
                    mismatched += 1;
                }
            }
        }
        assert!(checked >= 20, "gradcheck sampled too few points");
        assert!(
            mismatched * 20 <= checked,
            "{mismatched}/{checked} gradient checks failed"
        );
    }

    #[test]
    fn grads_add_and_scale() {
        let net = tiny_cnn(2, 2, 7);
        let ch = sample_channels(2, 8);
        let cache = net.forward_cached(&ch);
        let gl = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let g1 = net.backward(&cache, &gl);
        let mut g2 = g1.clone();
        g2.add_assign(&g1);
        g2.scale(0.5);
        for (a, b) in g1.flat().iter().zip(g2.flat()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn params_mut_flat_tags_towers() {
        let mut net = tiny_cnn(2, 2, 1);
        let tags: Vec<bool> = net.params_mut_flat().iter().map(|(_, t)| *t).collect();
        // Two towers with one conv each (2 tensors) then head (4).
        assert_eq!(
            tags,
            vec![true, true, true, true, false, false, false, false]
        );
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn channel_count_mismatch_panics() {
        let net = tiny_cnn(2, 2, 1);
        let _ = net.forward(&sample_channels(1, 0));
    }
}
