//! Minimal dense `f32` tensor with shape metadata.
//!
//! Deliberately small: the layers index raw data with explicit strides,
//! so the tensor only needs construction, shape bookkeeping, and a few
//! element-wise helpers used by the optimisers.

use serde::{Deserialize, Serialize};

/// Dense row-major tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Builds from raw data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match shape volume"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Whether the data length matches the shape's volume.
    ///
    /// Construction through [`Tensor::from_vec`] guarantees this, but
    /// serde's derived `Deserialize` rebuilds the fields verbatim — a
    /// hand-edited or corrupted JSON file can declare any shape next to
    /// any buffer. Validation passes call this before the strided
    /// kernels (which index by shape) ever touch the data. The volume
    /// is computed with checked multiplication so absurd shapes from
    /// hostile files read as inconsistent rather than wrapping around.
    pub fn is_consistent(&self) -> bool {
        let mut vol = 1usize;
        for &d in &self.shape {
            match vol.checked_mul(d) {
                Some(v) => vol = v,
                None => return false,
            }
        }
        vol == self.data.len()
    }

    /// Whether every element is finite (no NaN/Inf).
    ///
    /// serde_json writes non-finite floats as `null` and reads them
    /// back as NaN, and out-of-range literals (`1e40`) overflow to
    /// infinity — so a round trip cannot be assumed finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-element tensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Same data, new shape (volume must match).
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve volume"
        );
        self.shape = shape.to_vec();
        self
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` element-wise (the optimiser's axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha` element-wise.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Concatenates flat tensors into one vector tensor.
    pub fn concat_flat(parts: &[&Tensor]) -> Tensor {
        let total: usize = parts.iter().map(|t| t.len()).sum();
        let mut data = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(&[total], data)
    }

    /// Stacks single-channel `[1, h, w]` (or `[h, w]`) tensors into one
    /// `[c, h, w]` tensor — how the early-merging structure combines
    /// its input channels.
    pub fn stack_channels(channels: &[&Tensor]) -> Tensor {
        assert!(!channels.is_empty(), "need at least one channel");
        let (h, w) = match channels[0].shape() {
            [h, w] => (*h, *w),
            [1, h, w] => (*h, *w),
            s => panic!("stack_channels expects [h, w] or [1, h, w], got {s:?}"),
        };
        let mut data = Vec::with_capacity(channels.len() * h * w);
        for ch in channels {
            assert_eq!(ch.len(), h * w, "all channels must share one shape");
            data.extend_from_slice(ch.data());
        }
        Tensor::from_vec(&[channels.len(), h, w], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert_eq!(z.shape(), &[2, 3]);
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.data()[3], 4.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[16.0, 32.0, 48.0]);
        a.scale(0.25);
        assert_eq!(a.data(), &[4.0, 8.0, 12.0]);
    }

    #[test]
    fn concat_flat_joins_buffers() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[1, 3], vec![3.0, 4.0, 5.0]);
        let c = Tensor::concat_flat(&[&a, &b]);
        assert_eq!(c.shape(), &[5]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stack_channels_builds_chw() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[1, 2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let s = Tensor::stack_channels(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.data()[4..], [5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn stack_channels_checks_shapes() {
        let a = Tensor::from_vec(&[2, 2], vec![0.0; 4]);
        let b = Tensor::from_vec(&[3, 3], vec![0.0; 9]);
        let _ = Tensor::stack_channels(&[&a, &b]);
    }
}
