//! Transfer learning for cross-architecture model migration
//! (Section 6 of the paper).
//!
//! Labels for format selection are architecture-dependent, so a CNN
//! trained on machine A mispredicts on machine B. Rebuilding from
//! scratch costs ~75 hours of label collection in the paper's setup;
//! transfer learning reuses the machine-A model to reach target
//! accuracy with far fewer machine-B labels. Two materialisations are
//! compared (Figure 9):
//!
//! * [`continuous_evolvement`] — keep structure *and* parameters, then
//!   continue training everything on the new labels. Highest ceiling,
//!   slower convergence per label.
//! * [`top_evolvement`] — freeze the convolutional towers (the "CNN
//!   codes" feature extractor) and retrain only the fully connected
//!   head. Fewer parameters to fit, so fewer labels needed.
//! * [`from_scratch`] — the baseline: fresh random parameters.
//!
//! All strategies fine-tune through [`train`]'s batched GEMM path, so
//! each step is one forward/backward pass over the whole mini-batch.
//! Under top evolvement the optimiser's `freeze_towers` flag makes
//! [`crate::network::Cnn::backward_batch`] skip the tower backward
//! walks entirely — frozen fine-tuning pays only for the head's
//! gradients, and tower parameters stay bit-identical to the source.

use crate::network::{Cnn, Sample};
use crate::structures::{build_cnn, CnnConfig, Merging};
use crate::train::{train, TrainConfig, TrainReport};

/// Migration strategy identifier (the three curves of Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Migration {
    /// Fresh random initialisation.
    FromScratch,
    /// Warm-start everything from the source model.
    ContinuousEvolvement,
    /// Reuse the towers, retrain only the head.
    TopEvolvement,
}

impl Migration {
    /// All strategies, in Figure 9 legend order.
    pub const ALL: [Migration; 3] = [
        Migration::FromScratch,
        Migration::ContinuousEvolvement,
        Migration::TopEvolvement,
    ];

    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            Migration::FromScratch => "Train from scratch",
            Migration::ContinuousEvolvement => "Continuous evolvement",
            Migration::TopEvolvement => "Top evolvement",
        }
    }
}

impl std::str::FromStr for Migration {
    type Err = String;

    /// Parses the CLI spellings (`scratch`, `continuous`, `top`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scratch" | "from-scratch" => Ok(Migration::FromScratch),
            "continuous" | "continuous-evolvement" => Ok(Migration::ContinuousEvolvement),
            "top" | "top-evolvement" => Ok(Migration::TopEvolvement),
            other => Err(format!(
                "unknown migration strategy '{other}' (expected scratch | continuous | top)"
            )),
        }
    }
}

/// Migrates `source` to a new platform's `target_samples` with the
/// chosen strategy; returns the migrated network and its training
/// report. `structure` must describe how `source` was built (used only
/// by [`Migration::FromScratch`] to build a fresh twin).
pub fn migrate(
    source: &Cnn,
    strategy: Migration,
    target_samples: &[Sample],
    structure: (Merging, usize, (usize, usize), usize, CnnConfig),
    train_cfg: &TrainConfig,
) -> (Cnn, TrainReport) {
    match strategy {
        Migration::FromScratch => from_scratch(target_samples, structure, train_cfg),
        Migration::ContinuousEvolvement => continuous_evolvement(source, target_samples, train_cfg),
        Migration::TopEvolvement => top_evolvement(source, target_samples, train_cfg),
    }
}

/// Baseline: new random network trained only on the target labels.
pub fn from_scratch(
    target_samples: &[Sample],
    (merging, channels, shape, classes, cfg): (Merging, usize, (usize, usize), usize, CnnConfig),
    train_cfg: &TrainConfig,
) -> (Cnn, TrainReport) {
    let mut net = build_cnn(merging, channels, shape, classes, &cfg);
    let report = train(&mut net, target_samples, train_cfg);
    (net, report)
}

/// Continue training the full source network on the target labels.
pub fn continuous_evolvement(
    source: &Cnn,
    target_samples: &[Sample],
    train_cfg: &TrainConfig,
) -> (Cnn, TrainReport) {
    let mut net = source.clone();
    let cfg = TrainConfig {
        freeze_towers: false,
        ..train_cfg.clone()
    };
    let report = train(&mut net, target_samples, &cfg);
    (net, report)
}

/// Freeze the feature towers; retrain only the head on the target
/// labels.
pub fn top_evolvement(
    source: &Cnn,
    target_samples: &[Sample],
    train_cfg: &TrainConfig,
) -> (Cnn, TrainReport) {
    let mut net = source.clone();
    let cfg = TrainConfig {
        freeze_towers: true,
        ..train_cfg.clone()
    };
    let report = train(&mut net, target_samples, &cfg);
    (net, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use crate::train::evaluate;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn structure() -> (Merging, usize, (usize, usize), usize, CnnConfig) {
        (
            Merging::Late,
            1,
            (16, 16),
            2,
            CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 5,
            },
        )
    }

    /// Source task: bright top-left = class 0, bottom-right = class 1.
    /// Target task: the *same features* but labels flipped on a subset —
    /// like a new platform that mostly agrees with the old one.
    fn samples(n: usize, seed: u64, flip: bool) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let mut label = i % 2;
                let mut img = vec![0.0f32; 256];
                for y in 0..8 {
                    for x in 0..8 {
                        let (yy, xx) = if label == 0 { (y, x) } else { (y + 8, x + 8) };
                        img[yy * 16 + xx] = 0.8 + 0.2 * rng.random::<f32>();
                    }
                }
                if flip {
                    label = 1 - label;
                }
                Sample {
                    channels: vec![Tensor::from_vec(&[16, 16], img)],
                    label,
                }
            })
            .collect()
    }

    fn trained_source() -> Cnn {
        let (m, c, s, k, cfg) = structure();
        let mut net = build_cnn(m, c, s, k, &cfg);
        train(
            &mut net,
            &samples(40, 1, false),
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        net
    }

    #[test]
    fn top_evolvement_adapts_even_to_inverted_labels() {
        // Worst-case migration: the new platform disagrees on *every*
        // label. The frozen features still separate the classes, so a
        // retrained head must be able to relearn the mapping given
        // enough steps.
        let source = trained_source();
        let target = samples(12, 9, true);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 4,
            lr: 1e-2,
            ..TrainConfig::default()
        };
        let (net, _) = top_evolvement(&source, &target, &cfg);
        let acc = evaluate(&net, &samples(40, 11, true));
        assert!(acc >= 0.9, "top evolvement accuracy {acc}");
        // Towers untouched.
        assert_eq!(net.towers, source.towers);
    }

    #[test]
    fn continuous_evolvement_updates_towers() {
        let source = trained_source();
        let target = samples(12, 9, true);
        let (net, _) = continuous_evolvement(
            &source,
            &target,
            &TrainConfig {
                epochs: 3,
                batch_size: 4,
                ..TrainConfig::default()
            },
        );
        assert_ne!(net.towers, source.towers);
    }

    #[test]
    fn migrate_dispatches_all_strategies() {
        let source = trained_source();
        let target = samples(8, 21, true);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            ..TrainConfig::default()
        };
        for strat in Migration::ALL {
            let (net, report) = migrate(&source, strat, &target, structure(), &cfg);
            assert_eq!(net.num_channels, 1);
            assert!(!report.loss_history.is_empty());
        }
    }

    #[test]
    fn transfer_beats_scratch_on_small_target_sets() {
        // The headline claim of Figure 9, miniaturised. Real platforms
        // mostly agree on labels, so the target task here is the same
        // task; the migrated model must reach high accuracy with a
        // label budget (and step budget) far too small for training
        // from scratch. A four-class task (one bright quadrant each)
        // rules out a lucky random initialisation acing the test.
        let quad_samples = |n: usize, seed: u64| -> Vec<Sample> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|i| {
                    let label = i % 4;
                    let (oy, ox) = [(0, 0), (0, 8), (8, 0), (8, 8)][label];
                    let mut img = vec![0.0f32; 256];
                    for y in 0..8 {
                        for x in 0..8 {
                            img[(y + oy) * 16 + x + ox] = 0.8 + 0.2 * rng.random::<f32>();
                        }
                    }
                    Sample {
                        channels: vec![Tensor::from_vec(&[16, 16], img)],
                        label,
                    }
                })
                .collect()
        };
        let quad_structure = (
            Merging::Late,
            1,
            (16usize, 16usize),
            4,
            CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed: 5,
            },
        );
        let (m, c, s, k, cfg) = quad_structure.clone();
        let mut source = build_cnn(m, c, s, k, &cfg);
        train(
            &mut source,
            &quad_samples(80, 1),
            &TrainConfig {
                epochs: 10,
                batch_size: 8,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let target_train = quad_samples(8, 33);
        let target_test = quad_samples(80, 35);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 3e-3,
            seed: 41,
            ..TrainConfig::default()
        };
        let (scratch_net, _) = from_scratch(&target_train, quad_structure.clone(), &cfg);
        let (top_net, _) = top_evolvement(&source, &target_train, &cfg);
        let scratch_acc = evaluate(&scratch_net, &target_test);
        let top_acc = evaluate(&top_net, &target_test);
        assert!(
            top_acc > scratch_acc + 0.15,
            "top {top_acc} should clearly beat scratch {scratch_acc}"
        );
        assert!(top_acc >= 0.9, "migrated accuracy only {top_acc}");
    }

    #[test]
    fn names_match_figure_legend() {
        assert_eq!(Migration::TopEvolvement.name(), "Top evolvement");
        assert_eq!(Migration::ALL.len(), 3);
    }
}
