//! Optimisers: SGD with momentum and Adam.
//!
//! State is kept as flat tensor lists parallel to
//! [`Cnn::params_mut_flat`] / [`CnnGrads::flat`], so the same optimiser
//! drives any network shape. `freeze_towers` implements the *top
//! evolvement* transfer-learning method: tower parameters are left
//! untouched and only the head learns.

use crate::network::{Cnn, CnnGrads};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which update rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba) with the usual defaults.
    Adam {
        /// First-moment decay (default 0.9).
        beta1: f32,
        /// Second-moment decay (default 0.999).
        beta2: f32,
        /// Denominator fuzz (default 1e-8).
        eps: f32,
    },
}

impl OptimizerKind {
    /// Adam with standard hyper-parameters.
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Stateful optimiser bound to one network's parameter layout.
///
/// Serialisable so checkpoints capture the full training state: the
/// moment buffers and step counter resume bit-for-bit, keeping a
/// resumed run's loss history identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f32,
    /// Skip tower parameters (top evolvement).
    freeze_towers: bool,
    /// Momentum / first-moment buffers, one per parameter tensor.
    m: Vec<Tensor>,
    /// Second-moment buffers (Adam only).
    v: Vec<Tensor>,
    /// Step counter for Adam bias correction.
    t: u64,
}

impl Optimizer {
    /// Creates an optimiser whose state matches `net`'s parameters.
    pub fn new(net: &mut Cnn, kind: OptimizerKind, lr: f32, freeze_towers: bool) -> Self {
        let shapes: Vec<Vec<usize>> = net
            .params_mut_flat()
            .iter()
            .map(|(p, _)| p.shape().to_vec())
            .collect();
        let zeros: Vec<Tensor> = shapes.iter().map(|s| Tensor::zeros(s)).collect();
        Self {
            kind,
            lr,
            freeze_towers,
            m: zeros.clone(),
            v: zeros,
            t: 0,
        }
    }

    /// Learning rate accessor.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Whether tower parameters are frozen (top evolvement).
    pub fn freeze_towers(&self) -> bool {
        self.freeze_towers
    }

    /// Applies one update step with effective gradients
    /// `scale * grads` — a single accumulated gradient set per step.
    /// The batched training path hands over already-averaged gradients
    /// with `scale == 1.0`; the per-sample reference hands over the
    /// batch *sum* with `scale == 1/batch`, fusing the mean into the
    /// update instead of sweeping the whole gradient set first.
    pub fn step(&mut self, net: &mut Cnn, grads: &CnnGrads, scale: f32) {
        self.t += 1;
        let flat = grads.flat();
        let params = net.params_mut_flat();
        assert_eq!(
            flat.len(),
            params.len(),
            "gradient/parameter layout mismatch"
        );
        for (i, (param, in_tower)) in params.into_iter().enumerate() {
            if self.freeze_towers && in_tower {
                continue;
            }
            let g = flat[i];
            match self.kind {
                OptimizerKind::Sgd { momentum } => {
                    // m = momentum * m + scale * g; p -= lr * m
                    self.m[i].scale(momentum);
                    self.m[i].axpy(scale, g);
                    param.axpy(-self.lr, &self.m[i]);
                }
                OptimizerKind::Adam { beta1, beta2, eps } => {
                    let (md, vd) = (self.m[i].data_mut(), self.v[i].data_mut());
                    let gd = g.data();
                    let bc1 = 1.0 - beta1.powi(self.t as i32);
                    let bc2 = 1.0 - beta2.powi(self.t as i32);
                    let pd = param.data_mut();
                    for j in 0..gd.len() {
                        let gj = scale * gd[j];
                        md[j] = beta1 * md[j] + (1.0 - beta1) * gj;
                        vd[j] = beta2 * vd[j] + (1.0 - beta2) * gj * gj;
                        let mhat = md[j] / bc1;
                        let vhat = vd[j] / bc2;
                        pd[j] -= self.lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Layer, MaxPool2d};
    use crate::network::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Cnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let tower = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, &mut rng)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Flatten,
        ]);
        let head = Sequential::new(vec![Layer::Dense(Dense::new(8, 2, &mut rng))]);
        Cnn {
            towers: vec![tower],
            head,
            channel_shape: (4, 4),
            num_channels: 1,
        }
    }

    fn unit_grads(n: &Cnn) -> CnnGrads {
        let mut g = n.zero_grads();
        for t in &mut g.towers {
            for l in t {
                for p in l {
                    for v in p.data_mut() {
                        *v = 1.0;
                    }
                }
            }
        }
        for l in &mut g.head {
            for p in l {
                for v in p.data_mut() {
                    *v = 1.0;
                }
            }
        }
        g
    }

    #[test]
    fn sgd_moves_parameters_against_gradient() {
        let mut n = net(1);
        let before: Vec<f32> = n
            .params_mut_flat()
            .iter()
            .map(|(p, _)| p.data()[0])
            .collect();
        let g = unit_grads(&n);
        let mut opt = Optimizer::new(&mut n, OptimizerKind::Sgd { momentum: 0.0 }, 0.1, false);
        opt.step(&mut n, &g, 1.0);
        for (i, (p, _)) in n.params_mut_flat().iter().enumerate() {
            assert!((p.data()[0] - (before[i] - 0.1)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates() {
        let mut n = net(2);
        let start = n.params_mut_flat()[0].0.data()[0];
        let g = unit_grads(&n);
        let mut opt = Optimizer::new(&mut n, OptimizerKind::Sgd { momentum: 0.9 }, 0.1, false);
        opt.step(&mut n, &g, 1.0);
        opt.step(&mut n, &g, 1.0);
        // After two steps: lr*(1) + lr*(1 + 0.9) = 0.1 + 0.19 = 0.29.
        let now = n.params_mut_flat()[0].0.data()[0];
        assert!((start - now - 0.29).abs() < 1e-6, "moved {}", start - now);
    }

    #[test]
    fn adam_step_is_bounded_by_lr() {
        let mut n = net(3);
        let start: Vec<f32> = n
            .params_mut_flat()
            .iter()
            .map(|(p, _)| p.data()[0])
            .collect();
        let g = unit_grads(&n);
        let mut opt = Optimizer::new(&mut n, OptimizerKind::adam(), 0.01, false);
        opt.step(&mut n, &g, 1.0);
        for (i, (p, _)) in n.params_mut_flat().iter().enumerate() {
            let delta = (start[i] - p.data()[0]).abs();
            // First Adam step with constant gradient is ~lr.
            assert!(delta > 0.005 && delta < 0.015, "delta {delta}");
        }
    }

    #[test]
    fn scaled_step_matches_prescaled_gradients() {
        // step(g, s) must equal step(s * g, 1.0) for both update rules
        // — the contract that lets the reference path hand over batch
        // sums with scale = 1/batch.
        for kind in [OptimizerKind::Sgd { momentum: 0.9 }, OptimizerKind::adam()] {
            let mut a = net(9);
            let mut b = a.clone();
            let g = unit_grads(&a);
            let mut pre = unit_grads(&a);
            pre.scale(0.25);
            let mut oa = Optimizer::new(&mut a, kind, 0.05, false);
            let mut ob = Optimizer::new(&mut b, kind, 0.05, false);
            for _ in 0..3 {
                oa.step(&mut a, &g, 0.25);
                ob.step(&mut b, &pre, 1.0);
            }
            for ((pa, _), (pb, _)) in a.params_mut_flat().iter().zip(b.params_mut_flat().iter()) {
                for (x, y) in pa.data().iter().zip(pb.data()) {
                    assert!((x - y).abs() < 1e-6, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn freeze_towers_only_updates_head() {
        let mut n = net(4);
        let before: Vec<(f32, bool)> = n
            .params_mut_flat()
            .iter()
            .map(|(p, t)| (p.data()[0], *t))
            .collect();
        let g = unit_grads(&n);
        let mut opt = Optimizer::new(&mut n, OptimizerKind::Sgd { momentum: 0.0 }, 0.1, true);
        opt.step(&mut n, &g, 1.0);
        for (i, (p, in_tower)) in n.params_mut_flat().iter().enumerate() {
            if *in_tower {
                assert_eq!(p.data()[0], before[i].0, "tower param {i} moved");
            } else {
                assert!(p.data()[0] != before[i].0, "head param {i} frozen");
            }
        }
    }
}
