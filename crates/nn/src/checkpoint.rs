//! Crash-safe training checkpoints.
//!
//! A [`TrainCheckpoint`] captures everything [`crate::train::train`]
//! needs to continue a run as if it had never stopped: the network, the
//! optimiser (moment buffers and step counter included), the report so
//! far, and the wall-clock accumulators. The shuffle RNG is *not*
//! stored — its state after `epoch` completed epochs is reproduced by
//! replaying `epoch` Fisher–Yates passes from the config seed, which
//! keeps the checkpoint small and the resumed batch order bit-identical
//! to the uninterrupted run.
//!
//! Checkpoints ride in the same envelope as models
//! ([`crate::serialize`]): versioned, checksummed, written atomically
//! via temp-file-and-rename. The envelope fingerprint binds a
//! checkpoint to the run that wrote it ([`train_fingerprint`]), so
//! resuming against a different dataset size, batch size, seed,
//! optimiser or network structure fails with a typed error instead of
//! silently training nonsense.

use crate::error::NnError;
use crate::network::Cnn;
use crate::optimizer::Optimizer;
use crate::serialize::{fnv1a64, model_fingerprint, read_envelope_path, write_envelope_atomic};
use crate::train::{TrainConfig, TrainReport};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Envelope kind tag for training checkpoints.
pub const KIND_CHECKPOINT: &str = "train-checkpoint";

/// File name used inside a checkpoint directory. A single name is
/// overwritten atomically each time, so the directory always holds
/// exactly one complete checkpoint (plus, after a crash mid-write, at
/// most one stray `.tmp`).
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// `<dir>/checkpoint.json` for a checkpoint directory.
pub fn checkpoint_path<P: AsRef<Path>>(dir: P) -> PathBuf {
    dir.as_ref().join(CHECKPOINT_FILE)
}

/// Full training state at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Completed epochs (resume starts at this epoch index).
    pub epoch: usize,
    /// Optimisation steps taken so far (drives gradient hooks).
    pub step_counter: u64,
    /// Training-set size the run was started with.
    pub samples_len: usize,
    /// The network, mid-training.
    pub net: Cnn,
    /// Optimiser state: kind, current learning rate (including any
    /// divergence backoff), moment buffers, Adam step counter.
    pub opt: Optimizer,
    /// Loss history / accuracies recorded so far.
    pub report: TrainReport,
    /// Timed steps so far (includes rolled-back steps).
    pub time_steps: usize,
    /// Total step wall-time so far, seconds.
    pub total_s: f64,
    /// Fastest step so far, seconds (0 when no steps were timed —
    /// JSON cannot represent the `+inf` sentinel).
    pub min_s: f64,
    /// Slowest step so far, seconds.
    pub max_s: f64,
}

/// Fingerprint binding a checkpoint to its run. Covers everything that
/// determines the batch sequence and parameter layout: the network
/// structure, dataset size, batch size, shuffle seed, update rule and
/// freeze flag. Deliberately excludes `epochs` (resuming with a higher
/// target extends the run) and `lr` (divergence backoff rewrites it;
/// the live value travels inside the optimiser).
pub fn train_fingerprint(cfg: &TrainConfig, net: &Cnn, samples_len: usize) -> u64 {
    let kind = serde_json::to_string(&cfg.optimizer).unwrap_or_default();
    let desc = format!(
        "model={:#018x}|samples={samples_len}|batch={}|seed={}|freeze={}|opt={kind}",
        model_fingerprint(net),
        cfg.batch_size,
        cfg.seed,
        cfg.freeze_towers,
    );
    fnv1a64(desc.as_bytes())
}

/// Writes a checkpoint atomically to `path`.
pub fn save_checkpoint<P: AsRef<Path>>(
    ck: &TrainCheckpoint,
    fingerprint: u64,
    path: P,
) -> Result<(), NnError> {
    write_envelope_atomic(KIND_CHECKPOINT, fingerprint, ck, path)
}

/// Reads and validates a checkpoint, returning it with its stored
/// fingerprint. The embedded network must pass [`Cnn::validate`] and
/// the report's per-epoch vectors must agree with the epoch count —
/// a corrupted or hand-edited file yields `Err`, never a later panic.
pub fn load_checkpoint<P: AsRef<Path>>(path: P) -> Result<(TrainCheckpoint, u64), NnError> {
    let (ck, fingerprint): (TrainCheckpoint, u64) = read_envelope_path(KIND_CHECKPOINT, path)?;
    ck.net.validate().map_err(NnError::InvalidModel)?;
    if ck.report.epoch_train_acc.len() != ck.epoch
        || ck.report.epoch_samples_per_sec.len() != ck.epoch
    {
        return Err(NnError::InvalidModel(format!(
            "checkpoint claims {} epochs but carries {} accuracies / {} throughput entries",
            ck.epoch,
            ck.report.epoch_train_acc.len(),
            ck.report.epoch_samples_per_sec.len()
        )));
    }
    if !ck.total_s.is_finite() || !ck.min_s.is_finite() || !ck.max_s.is_finite() {
        return Err(NnError::InvalidModel(
            "checkpoint wall-clock accumulators are not finite".into(),
        ));
    }
    if ck.report.loss_history.iter().any(|l| !l.is_finite()) {
        return Err(NnError::InvalidModel(
            "checkpoint loss history contains non-finite entries".into(),
        ));
    }
    Ok((ck, fingerprint))
}
