//! Micro-kernel variants and their once-per-process runtime dispatch.
//!
//! The blocked `sgemm` path funnels every packed `MR x NR` tile
//! through one [`MicroKernel`] function pointer. Which pointer is
//! decided once per process by CPU feature detection
//! ([`KernelVariant::detect`], cached in a `OnceLock`): the explicit
//! AVX2/FMA kernel where `is_x86_feature_detected!` says so, the
//! portable `mul_add` kernel otherwise (NEON on aarch64, where the
//! feature is architecturally guaranteed). Tests force a specific
//! variant with [`with_forced_kernel`]; the override is thread-local
//! and resolved on the *calling* thread at `sgemm` entry, then handed
//! to the worker tasks as a plain fn pointer — so concurrent tests
//! forcing different variants never race, and workers never consult
//! (possibly unset) thread-locals of their own.
//!
//! Every variant computes each C element with the same operation
//! sequence — fused multiply-add accumulation in ascending `p` order,
//! then an *unfused* `C += alpha * acc` write-back (the write-back
//! must not fuse: tile raggedness depends on the span partition, so a
//! fused full-tile path would let the thread count change output
//! bits). A fixed variant is therefore bit-deterministic across runs
//! and thread counts; the equivalence suite additionally bounds every
//! variant at 1e-4 against an f64 reference.

use std::cell::Cell;
use std::sync::OnceLock;

/// Micro-kernel tile rows.
pub(super) const MR: usize = 8;
/// Micro-kernel tile columns.
pub(super) const NR: usize = 8;

/// One packed-panel rank-`kc` update of an `MR x NR` tile of C.
///
/// `ap`/`bp` are the packed micro-panels (`kc * MR` / `kc * NR`,
/// zero-padded), `cblk` a row-major block of C with leading dimension
/// `ldc`, and `(i0, j0, ni, nj)` the live tile inside it.
pub(super) type MicroKernel = fn(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    alpha: f32,
    cblk: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    ni: usize,
    nj: usize,
);

/// The micro-kernel implementations compiled into this binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Scalar `mul_add` lanes; compiles everywhere, autovectorises
    /// under `target-cpu=native`. The fallback every arch keeps live.
    Portable,
    /// Explicit `std::arch` AVX2 + FMA: one 256-bit row of B per
    /// `_mm256_loadu_ps`, A broadcast with `_mm256_set1_ps`, eight
    /// `_mm256_fmadd_ps` accumulators.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// Explicit `std::arch` NEON: two `float32x4_t` halves per row,
    /// `vfmaq_f32` accumulation.
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl KernelVariant {
    /// Stable lowercase name (bench JSON, test labels).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            KernelVariant::Avx2Fma => "avx2_fma",
            #[cfg(target_arch = "aarch64")]
            KernelVariant::Neon => "neon",
        }
    }

    /// Every variant compiled on this host, portable first. The
    /// dispatch test runs the equivalence suite over each entry so no
    /// compiled path is dead untested code.
    pub fn compiled() -> &'static [KernelVariant] {
        &[
            KernelVariant::Portable,
            #[cfg(target_arch = "x86_64")]
            KernelVariant::Avx2Fma,
            #[cfg(target_arch = "aarch64")]
            KernelVariant::Neon,
        ]
    }

    /// Whether this host's CPU can execute the variant.
    pub fn available(self) -> bool {
        match self {
            KernelVariant::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelVariant::Avx2Fma => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            // NEON is baseline on aarch64.
            #[cfg(target_arch = "aarch64")]
            KernelVariant::Neon => true,
        }
    }

    /// The best available variant, detected once per process.
    pub fn detect() -> KernelVariant {
        static DETECTED: OnceLock<KernelVariant> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            KernelVariant::compiled()
                .iter()
                .rev()
                .copied()
                .find(|v| v.available())
                .unwrap_or(KernelVariant::Portable)
        })
    }

    fn kernel(self) -> MicroKernel {
        match self {
            KernelVariant::Portable => portable_kernel,
            #[cfg(target_arch = "x86_64")]
            KernelVariant::Avx2Fma => x86::avx2_fma_kernel,
            #[cfg(target_arch = "aarch64")]
            KernelVariant::Neon => arm::neon_kernel,
        }
    }
}

thread_local! {
    static FORCED: Cell<Option<KernelVariant>> = const { Cell::new(None) };
}

/// Runs `f` with every `sgemm` on this thread pinned to `variant`,
/// restoring the previous override afterwards (also on unwind).
///
/// Test hook for the per-variant dispatch suite. Panics if the host
/// cannot execute `variant` — forcing an unavailable kernel would be
/// undefined behaviour, not a slow path.
pub fn with_forced_kernel<R>(variant: KernelVariant, f: impl FnOnce() -> R) -> R {
    assert!(
        variant.available(),
        "kernel variant {} is not executable on this host",
        variant.name()
    );
    struct Restore(Option<KernelVariant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED.with(|c| c.replace(Some(variant))));
    f()
}

/// The variant `sgemm` will use on this thread right now: the forced
/// override if one is installed, otherwise the process-wide detection.
pub fn active_variant() -> KernelVariant {
    FORCED
        .with(|c| c.get())
        .unwrap_or_else(KernelVariant::detect)
}

/// Resolves [`active_variant`] to its function pointer. Called once at
/// `sgemm` entry on the calling thread; the pointer is what crosses
/// into worker tasks.
pub(super) fn active_kernel() -> MicroKernel {
    active_variant().kernel()
}

/// `MR x NR` register tile: accumulates one packed-A / packed-B panel
/// pair, then writes `alpha * acc` into the live part of C. Scalar
/// `mul_add` lanes; the compiler's autovectoriser does the rest.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(super) fn portable_kernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    alpha: f32,
    cblk: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    ni: usize,
    nj: usize,
) {
    let mut acc = [0.0f32; MR * NR];
    for p in 0..kc {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bp[p * NR..p * NR + NR];
        for ii in 0..MR {
            let av = arow[ii];
            let dst = &mut acc[ii * NR..(ii + 1) * NR];
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d = av.mul_add(bv, *d);
            }
        }
    }
    for ii in 0..ni {
        let crow = &mut cblk[(i0 + ii) * ldc + j0..][..nj];
        let arow = &acc[ii * NR..ii * NR + nj];
        for (cv, &v) in crow.iter_mut().zip(arow) {
            *cv += alpha * v;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps,
    };

    /// AVX2/FMA twin of the portable kernel: same `p`-ordered fused
    /// accumulation per element, eight `__m256` accumulator rows.
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA. `ap`/`bp` must hold at least
    /// `kc * MR` / `kc * NR` elements and `cblk` must contain the
    /// `(i0..i0+ni) x (j0..j0+nj)` tile at leading dimension `ldc`
    /// (all guaranteed by the packed-path caller; the full-tile
    /// write-back additionally relies on `ni == MR && nj == NR`).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn avx2_fma_impl(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        alpha: f32,
        cblk: &mut [f32],
        ldc: usize,
        i0: usize,
        j0: usize,
        ni: usize,
        nj: usize,
    ) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        // SAFETY: loads stay inside ap/bp (checked above); C pointers
        // stay inside cblk per this function's contract.
        unsafe {
            let mut acc = [_mm256_setzero_ps(); MR];
            for p in 0..kc {
                let brow = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
                let arow = ap.as_ptr().add(p * MR);
                for (ii, accrow) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arow.add(ii));
                    *accrow = _mm256_fmadd_ps(av, brow, *accrow);
                }
            }
            if ni == MR && nj == NR {
                // Full tile: write straight back to memory, no spill.
                // Deliberately NOT a fused `alpha*acc + C`: whether a
                // row lands in a full or ragged tile depends on the
                // span partition, so both write-backs must round
                // identically (mul, then add — matching the portable
                // kernel bit-for-bit) or thread counts would change
                // output bits.
                let alpha_v = _mm256_set1_ps(alpha);
                for (ii, &accrow) in acc.iter().enumerate() {
                    let cptr = cblk.as_mut_ptr().add((i0 + ii) * ldc + j0);
                    let cv = _mm256_loadu_ps(cptr);
                    _mm256_storeu_ps(cptr, _mm256_add_ps(cv, _mm256_mul_ps(alpha_v, accrow)));
                }
            } else {
                // Ragged edge tile: spill the accumulators and let the
                // scalar loop respect the live bounds.
                let mut tile = [0.0f32; MR * NR];
                for (ii, &accrow) in acc.iter().enumerate() {
                    _mm256_storeu_ps(tile.as_mut_ptr().add(ii * NR), accrow);
                }
                for ii in 0..ni {
                    let crow = &mut cblk[(i0 + ii) * ldc + j0..][..nj];
                    for (cv, &v) in crow.iter_mut().zip(&tile[ii * NR..ii * NR + nj]) {
                        *cv += alpha * v;
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn avx2_fma_kernel(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        alpha: f32,
        cblk: &mut [f32],
        ldc: usize,
        i0: usize,
        j0: usize,
        ni: usize,
        nj: usize,
    ) {
        // SAFETY: this pointer is only ever handed out by the dispatch
        // table after `KernelVariant::Avx2Fma.available()` confirmed
        // AVX2+FMA at runtime; slice bounds are the packed-path
        // invariants documented on `avx2_fma_impl`.
        unsafe { avx2_fma_impl(kc, ap, bp, alpha, cblk, ldc, i0, j0, ni, nj) }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{MR, NR};
    use std::arch::aarch64::{vdupq_n_f32, vfmaq_f32, vld1q_f32, vst1q_f32};

    /// NEON twin of the portable kernel: each 8-wide accumulator row
    /// is a pair of `float32x4_t`, accumulated with `vfmaq_f32` in the
    /// same `p` order as every other variant.
    ///
    /// # Safety
    /// Same packed-path slice invariants as the AVX2 kernel; NEON
    /// itself is baseline on aarch64.
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn neon_impl(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        alpha: f32,
        cblk: &mut [f32],
        ldc: usize,
        i0: usize,
        j0: usize,
        ni: usize,
        nj: usize,
    ) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        // SAFETY: loads stay inside ap/bp (checked above); C pointers
        // stay inside cblk per this function's contract.
        unsafe {
            let zero = vdupq_n_f32(0.0);
            let mut lo = [zero; MR];
            let mut hi = [zero; MR];
            for p in 0..kc {
                let blo = vld1q_f32(bp.as_ptr().add(p * NR));
                let bhi = vld1q_f32(bp.as_ptr().add(p * NR + 4));
                let arow = ap.as_ptr().add(p * MR);
                for ii in 0..MR {
                    let av = vdupq_n_f32(*arow.add(ii));
                    lo[ii] = vfmaq_f32(lo[ii], av, blo);
                    hi[ii] = vfmaq_f32(hi[ii], av, bhi);
                }
            }
            let mut tile = [0.0f32; MR * NR];
            for ii in 0..MR {
                vst1q_f32(tile.as_mut_ptr().add(ii * NR), lo[ii]);
                vst1q_f32(tile.as_mut_ptr().add(ii * NR + 4), hi[ii]);
            }
            for ii in 0..ni {
                let crow = &mut cblk[(i0 + ii) * ldc + j0..][..nj];
                for (cv, &v) in crow.iter_mut().zip(&tile[ii * NR..ii * NR + nj]) {
                    *cv += alpha * v;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn neon_kernel(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        alpha: f32,
        cblk: &mut [f32],
        ldc: usize,
        i0: usize,
        j0: usize,
        ni: usize,
        nj: usize,
    ) {
        // SAFETY: NEON is architecturally guaranteed on aarch64; slice
        // bounds are the packed-path invariants documented on
        // `neon_impl`.
        unsafe { neon_impl(kc, ap, bp, alpha, cblk, ldc, i0, j0, ni, nj) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_compiled_and_available() {
        assert!(KernelVariant::compiled().contains(&KernelVariant::Portable));
        assert!(KernelVariant::Portable.available());
    }

    #[test]
    fn detection_picks_an_available_variant_and_is_stable() {
        let v = KernelVariant::detect();
        assert!(v.available());
        assert_eq!(v, KernelVariant::detect(), "detection must be cached");
    }

    #[test]
    fn forced_kernel_nests_and_restores() {
        let base = active_variant();
        with_forced_kernel(KernelVariant::Portable, || {
            assert_eq!(active_variant(), KernelVariant::Portable);
        });
        assert_eq!(active_variant(), base);
        let r = std::panic::catch_unwind(|| {
            with_forced_kernel(KernelVariant::Portable, || panic!("boom"))
        });
        assert!(r.is_err());
        assert_eq!(active_variant(), base, "override must restore on unwind");
    }

    #[test]
    fn every_compiled_available_variant_matches_portable_on_one_tile() {
        // Tiny smoke here; the full cross-variant equivalence battery
        // lives in tests/gemm_equivalence.rs.
        let kc = 13;
        let ap: Vec<f32> = (0..kc * MR).map(|i| (i as f32 * 0.37).sin()).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|i| (i as f32 * 0.61).cos()).collect();
        let mut want = vec![0.5f32; MR * NR];
        portable_kernel(kc, &ap, &bp, 1.25, &mut want, NR, 0, 0, MR, NR);
        for &v in KernelVariant::compiled() {
            if !v.available() {
                continue;
            }
            for (ni, nj) in [(MR, NR), (3, 5)] {
                let mut got = vec![0.5f32; MR * NR];
                let mut reference = vec![0.5f32; MR * NR];
                (v.kernel())(kc, &ap, &bp, 1.25, &mut got, NR, 0, 0, ni, nj);
                portable_kernel(kc, &ap, &bp, 1.25, &mut reference, NR, 0, 0, ni, nj);
                for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-5 * (1.0 + w.abs()),
                        "{}[{i}] ({ni}x{nj}): {g} vs {w}",
                        v.name()
                    );
                }
            }
        }
    }
}
