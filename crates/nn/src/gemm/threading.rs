//! The GEMM threading model: a per-call-site *budget* resolved into a
//! slot count, and the partitioning that turns slots into disjoint row
//! spans of C.
//!
//! # Model
//!
//! Every [`crate::gemm::sgemm`] call resolves an ambient
//! [`GemmThreading`] policy into `slots = min(budget, rows)` and
//! splits the output rows of C into `slots` contiguous spans, one per
//! fork-join task (`rayon::scope`; the caller runs span 0 itself).
//! The policy is scoped, not global: [`with_gemm_threading`] installs
//! it on the current thread for the duration of a closure, and the
//! innermost scope wins. Training installs its `TrainConfig` policy
//! around the whole run; server workers install `Serial` around their
//! drain loop (the workers *are* the parallelism there — nested
//! fork-join would only add contention); everything else defaults to
//! `Auto`.
//!
//! # Determinism contract
//!
//! The slot partition decides only *which task* computes a row span —
//! never the order in which any C element accumulates its `k`
//! products. Each element's reduction order is a function of the
//! blocking constants alone (`KC` panels outermost, then the fixed
//! `p` loop of the micro-kernel or axpy/dot sweep), so `sgemm` output
//! is bit-identical across runs *and across thread counts*. The
//! equivalence suite pins this for thread counts 1–8.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread budget for one GEMM call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GemmThreading {
    /// One slot per pool worker (`rayon::current_num_threads`).
    #[default]
    Auto,
    /// Exactly one slot: the calling thread does all the work and the
    /// pool is never touched. What server workers run under.
    Serial,
    /// A fixed slot count, regardless of pool size. Used by the
    /// determinism/equivalence suites and the bench thread sweep;
    /// counts above the pool size still partition (and still produce
    /// identical bits), they just share workers.
    Fixed(usize),
}

impl GemmThreading {
    /// The raw slot budget this policy asks for.
    fn budget(self) -> usize {
        match self {
            GemmThreading::Auto => rayon::current_num_threads().max(1),
            GemmThreading::Serial => 1,
            GemmThreading::Fixed(n) => n.max(1),
        }
    }
}

thread_local! {
    static AMBIENT: Cell<Option<GemmThreading>> = const { Cell::new(None) };
}

/// Runs `f` with `policy` as the calling thread's GEMM threading
/// policy, restoring the previous policy afterwards (also on unwind).
/// Scopes nest; the innermost wins.
pub fn with_gemm_threading<R>(policy: GemmThreading, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<GemmThreading>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT.with(|c| c.replace(Some(policy))));
    f()
}

/// The calling thread's current policy (`Auto` when no scope is
/// installed).
pub fn current_gemm_threading() -> GemmThreading {
    AMBIENT.with(|c| c.get()).unwrap_or_default()
}

/// Resolves the ambient policy against the available work: at most one
/// slot per row, at least one slot. Records the decision in the probe.
pub(crate) fn effective_slots(rows: usize) -> usize {
    let slots = current_gemm_threading().budget().min(rows.max(1));
    MAX_SLOTS_SEEN.fetch_max(slots, Ordering::Relaxed);
    slots
}

/// High-water mark of slot counts chosen by `sgemm` since the last
/// [`slots_probe_reset`]. One relaxed `fetch_max` per GEMM call — the
/// observable the "server GEMM stays single-threaded" tests assert on.
static MAX_SLOTS_SEEN: AtomicUsize = AtomicUsize::new(0);

/// Resets the slot probe. Test instrumentation: process-global, so
/// concurrent tests in one binary must serialise around it.
pub fn slots_probe_reset() {
    MAX_SLOTS_SEEN.store(0, Ordering::Relaxed);
}

/// Largest slot count any `sgemm` call used since the last reset.
pub fn slots_probe_max() -> usize {
    MAX_SLOTS_SEEN.load(Ordering::Relaxed)
}

/// Splits `rows` into at most `slots` contiguous, non-empty,
/// balanced spans covering `0..rows` in order.
pub(crate) fn partition_rows(rows: usize, slots: usize) -> Vec<Range<usize>> {
    let slots = slots.clamp(1, rows.max(1));
    let base = rows / slots;
    let rem = rows % slots;
    let mut spans = Vec::with_capacity(slots);
    let mut start = 0;
    for s in 0..slots {
        let len = base + usize::from(s < rem);
        if len == 0 {
            break;
        }
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// Runs `f(first_row, rows_block)` once per span, each span getting
/// the disjoint `&mut` block of `c` holding its rows (`ld` elements
/// per row). Span 0 runs on the calling thread; the rest are spawned
/// on the pool. Single-span calls never touch the pool.
pub(crate) fn for_each_row_span(
    c: &mut [f32],
    ld: usize,
    spans: &[Range<usize>],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(spans.first().map(|s| s.start) == Some(0) || spans.is_empty());
    if spans.len() <= 1 {
        if let Some(span) = spans.first() {
            f(span.start, &mut c[span.start * ld..span.end * ld]);
        }
        return;
    }
    let mut rest = c;
    let mut parts = Vec::with_capacity(spans.len());
    for span in spans {
        let (head, tail) = rest.split_at_mut((span.end - span.start) * ld);
        parts.push((span.start, head));
        rest = tail;
    }
    let f = &f;
    let mut parts = parts.into_iter();
    let (row0, first) = parts.next().expect("at least one span");
    rayon::scope(|s| {
        for (r0, block) in parts {
            s.spawn(move |_| f(r0, block));
        }
        f(row0, first);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_balanced_and_complete() {
        for rows in [0usize, 1, 2, 7, 8, 64, 65, 1000] {
            for slots in [1usize, 2, 3, 4, 8, 13] {
                let spans = partition_rows(rows, slots);
                assert!(spans.len() <= slots.max(1));
                let mut next = 0;
                for sp in &spans {
                    assert_eq!(sp.start, next, "gap at {rows}x{slots}");
                    assert!(!sp.is_empty());
                    next = sp.end;
                }
                assert_eq!(next, rows, "coverage at {rows}x{slots}");
                if let (Some(max), Some(min)) = (
                    spans.iter().map(|s| s.len()).max(),
                    spans.iter().map(|s| s.len()).min(),
                ) {
                    assert!(max - min <= 1, "imbalance at {rows}x{slots}");
                }
            }
        }
    }

    #[test]
    fn scoped_policy_nests_and_restores() {
        assert_eq!(current_gemm_threading(), GemmThreading::Auto);
        with_gemm_threading(GemmThreading::Fixed(4), || {
            assert_eq!(current_gemm_threading(), GemmThreading::Fixed(4));
            with_gemm_threading(GemmThreading::Serial, || {
                assert_eq!(current_gemm_threading(), GemmThreading::Serial);
            });
            assert_eq!(current_gemm_threading(), GemmThreading::Fixed(4));
        });
        assert_eq!(current_gemm_threading(), GemmThreading::Auto);
    }

    #[test]
    fn policy_restores_across_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_gemm_threading(GemmThreading::Fixed(2), || panic!("boom"))
        });
        assert!(r.is_err());
        assert_eq!(current_gemm_threading(), GemmThreading::Auto);
    }

    #[test]
    fn row_spans_receive_disjoint_blocks() {
        let mut c = vec![0.0f32; 10 * 3];
        let spans = partition_rows(10, 4);
        for_each_row_span(&mut c, 3, &spans, |r0, block| {
            for (i, row) in block.chunks_mut(3).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        for (i, row) in c.chunks(3).enumerate() {
            assert!(row.iter().all(|&v| v == i as f32), "row {i} wrong");
        }
    }

    #[test]
    fn serial_policy_resolves_to_one_slot() {
        with_gemm_threading(GemmThreading::Serial, || {
            assert_eq!(effective_slots(1000), 1);
        });
        with_gemm_threading(GemmThreading::Fixed(8), || {
            assert_eq!(effective_slots(1000), 8);
            assert_eq!(effective_slots(3), 3, "never more slots than rows");
        });
    }
}
