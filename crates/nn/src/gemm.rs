//! The GEMM compute core: a cache-blocked, parallel `sgemm` kernel
//! plus the im2col/col2im packing that turns convolution into matrix
//! multiply.
//!
//! Every FLOP-heavy path in the crate funnels into [`sgemm`]:
//! [`crate::layers::Conv2d`] lowers its input with [`im2col_into`] and
//! multiplies against the filter bank, [`crate::layers::Dense`] is a
//! GEMM (or its `n == 1` matvec fast path) directly, and the batched
//! inference API packs many samples into one product per layer. The
//! kernel follows the classic BLIS/GotoBLAS decomposition: `NC`-wide
//! column panels of B, `KC`-deep rank-k updates, `MC`-tall row blocks
//! of A, operands repacked into `MR x NR` micro-panels so the
//! innermost micro-kernel reads contiguously and runs as an explicit
//! SIMD 8x8 accumulator ([`simd`]: AVX2/FMA or NEON where the CPU has
//! them, a portable `mul_add` twin everywhere, chosen once per process
//! at runtime). Rows of C are disjoint, so every parallelisable regime
//! splits them into contiguous spans — one per [`threading`] slot —
//! and fans the spans out over `rayon::scope`; each span packs its own
//! A blocks (no false sharing), the B panel is packed once on the
//! calling thread and shared read-only. How many slots a call may use
//! is the ambient [`GemmThreading`] policy: training runs `Auto` (all
//! pool workers), server workers pin `Serial` (the workers are already
//! the parallelism there). The span partition never changes any
//! element's accumulation order — see [`threading`] for the
//! bit-determinism contract.
//!
//! Scratch buffers (im2col matrices, packing panels) are reused across
//! calls through a thread-local [`Scratch`] pool. [`with_scratch`]
//! *moves* the buffers out for the duration of the closure instead of
//! holding a `RefCell` borrow — re-entrant calls (e.g. under a
//! work-stealing scheduler) simply see an empty pool and allocate.

pub mod simd;
pub mod threading;

use crate::tensor::Tensor;
pub use simd::{with_forced_kernel, KernelVariant};
use simd::{MicroKernel, MR, NR};
pub use threading::{
    current_gemm_threading, slots_probe_max, slots_probe_reset, with_gemm_threading, GemmThreading,
};

/// Whether a GEMM operand is consumed as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored (row-major).
    No,
    /// Use the transpose of the stored operand.
    Yes,
}

/// Row-block height (rows of C per A pack within a span).
const MC: usize = 64;
/// Rank-k update depth (rows of the packed B panel).
const KC: usize = 256;
/// Column-panel width (columns of the packed B panel).
const NC: usize = 1024;
/// Below this inner dimension the packed/blocked machinery costs more
/// than it saves; a direct axpy sweep wins (covers every im2col
/// convolution in the Figure 10 schedule, where `k = in_ch * ksize^2`
/// tops out at 288).
const SMALL_K: usize = 384;

/// `C = alpha * op(A) . op(B) + beta * C` in single precision.
///
/// `op(A)` is `m x k` and `op(B)` is `k x n`; all buffers are dense
/// row-major. With `ta == Trans::No` the `a` buffer is `m x k`, with
/// `ta == Trans::Yes` it is the stored transpose `k x m` (and
/// symmetrically for `b`). `beta` is applied to `C` exactly once, so
/// `beta == 0.0` overwrites any garbage (including NaN) in `c`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A buffer must hold m*k elements");
    assert_eq!(b.len(), k * n, "B buffer must hold k*n elements");
    assert_eq!(c.len(), m * n, "C buffer must hold m*n elements");
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    if n == 1 {
        // Matrix-vector product: op(B) is a contiguous k-vector under
        // either transpose flag.
        matvec(m, k, alpha, a, ta, b, c);
        return;
    }
    if k == 1 {
        // Rank-1 update: op(A) is a contiguous m-vector and op(B) a
        // contiguous n-vector under either transpose flag.
        for i in 0..m {
            let av = alpha * a[i];
            if av != 0.0 {
                let row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in row.iter_mut().zip(b) {
                    *cv += av * bv;
                }
            }
        }
        return;
    }
    if ta == Trans::No && tb == Trans::Yes && m * n <= 64 * 1024 {
        // Inner-product regime: both operands walk `k` contiguously, so
        // each C element is a straight dot product — no packing needed
        // (the blocked path's packing costs more than the whole product
        // at these shapes). This is the shape of every weight-gradient
        // GEMM (`gW = gout . act^T` with the batch reduction fused into
        // `k`), where C is tiny and `k` is huge; the `m * n` cap keeps
        // genuinely large C matrices on the blocked path where B panels
        // get reused. Sixteen lane-wise partial sums keep enough
        // independent dependency chains in flight for the loop to
        // vectorise and hide FP-add latency; a plain (or 4-way) dot is
        // one serial chain and runs several times slower. The huge-`k`
        // rows are walked in `DOT_KC`-element chunks: every `(i, j)`
        // pair touches each chunk while it is cache-resident, where
        // unchunked dots would re-stream whole megabyte-scale rows
        // from memory `n` (resp. `m`) times over.
        // Rows are fanned out in contiguous spans, one per threading
        // slot; the chunked `p0` loop runs *inside* each span so every
        // element still accumulates its chunks in the same order at
        // any slot count.
        const DOT_KC: usize = 16 * 1024;
        let spans = threading::partition_rows(m, threading::effective_slots(m));
        threading::for_each_row_span(c, n, &spans, |r0, cblk| {
            for p0 in (0..k).step_by(DOT_KC) {
                let p1 = (p0 + DOT_KC).min(k);
                for (i, crow) in cblk.chunks_mut(n).enumerate() {
                    let row = r0 + i;
                    let ach = &a[row * k + p0..row * k + p1];
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv += alpha * lane_dot(ach, &b[j * k + p0..j * k + p1]);
                    }
                }
            }
        });
        return;
    }
    if k <= SMALL_K && tb == Trans::No {
        // Short-inner-dimension regime (im2col convolutions: k is
        // in_ch * ksize^2, n is the whole output plane). Packing into
        // micro-panels costs more than it saves here; a row-per-output
        // sweep of contiguous axpy updates streams B at full width.
        // Four rank-1 updates are fused per sweep so each C row is
        // read/written k/4 times instead of k. The column dimension is
        // tiled so the B tile (k rows x AXPY_NB) stays cache-resident
        // while every C row revisits it — batched calls have B far
        // larger than cache, and untiled sweeps would re-stream it
        // from memory once per output row. Tiling never splits the k
        // loop, so accumulation order per element is unchanged.
        // Rows of C are disjoint, so fan them out in contiguous spans,
        // one per threading slot; the column tiling runs inside each
        // span and never splits the k loop, so accumulation order per
        // element is independent of the slot count too.
        const AXPY_NB: usize = 1024;
        let spans = threading::partition_rows(m, threading::effective_slots(m));
        threading::for_each_row_span(c, n, &spans, |r0, cblk| {
            for j0 in (0..n).step_by(AXPY_NB) {
                let j1 = n.min(j0 + AXPY_NB);
                for (di, crow) in cblk.chunks_mut(n).enumerate() {
                    let i = r0 + di;
                    let crow = &mut crow[j0..j1];
                    let at = |p: usize| {
                        alpha
                            * match ta {
                                Trans::No => a[i * k + p],
                                Trans::Yes => a[p * m + i],
                            }
                    };
                    let nb = j1 - j0;
                    let mut p = 0;
                    while p + 4 <= k {
                        let (a0, a1, a2, a3) = (at(p), at(p + 1), at(p + 2), at(p + 3));
                        let b0 = &b[p * n + j0..][..nb];
                        let b1 = &b[(p + 1) * n + j0..][..nb];
                        let b2 = &b[(p + 2) * n + j0..][..nb];
                        let b3 = &b[(p + 3) * n + j0..][..nb];
                        for (t, cv) in crow.iter_mut().enumerate() {
                            *cv = b3[t].mul_add(
                                a3,
                                b2[t].mul_add(a2, b1[t].mul_add(a1, b0[t].mul_add(a0, *cv))),
                            );
                        }
                        p += 4;
                    }
                    while p < k {
                        let av = at(p);
                        if av != 0.0 {
                            let brow = &b[p * n + j0..][..nb];
                            for (t, cv) in crow.iter_mut().enumerate() {
                                *cv = brow[t].mul_add(av, *cv);
                            }
                        }
                        p += 1;
                    }
                }
            }
        });
        return;
    }

    // Packed blocked path. The micro-kernel variant and the slot
    // partition are both resolved here on the calling thread (the
    // thread-local kernel override and threading policy must not be
    // re-read inside pool workers); the kernel crosses into the spans
    // as a plain fn pointer. Each span packs its own A micro-panels —
    // per-task buffers, so packed panels are never falsely shared —
    // while the B panel is packed once per (jc, pc) and read by every
    // span. Per-element accumulation order is one KC panel at a time,
    // `p` ascending inside the micro-kernel tile: a function of the
    // blocking constants only, identical at every slot count.
    let kernel: MicroKernel = simd::active_kernel();
    let spans = threading::partition_rows(m, threading::effective_slots(m));
    let mut bpack = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, tb, k, n, pc, kc, jc, nc, &mut bpack);
            let bpack = &bpack;
            threading::for_each_row_span(c, n, &spans, |r0, cblk| {
                let rows = cblk.len() / n;
                let mut apack = Vec::new();
                for ic in (0..rows).step_by(MC) {
                    let mc = MC.min(rows - ic);
                    pack_a(a, ta, m, k, r0 + ic, mc, pc, kc, &mut apack);
                    for sj in 0..nc.div_ceil(NR) {
                        let j0 = jc + sj * NR;
                        let nj = NR.min(jc + nc - j0);
                        let bp = &bpack[sj * kc * NR..][..kc * NR];
                        for si in 0..mc.div_ceil(MR) {
                            let i0 = ic + si * MR;
                            let ni = MR.min(mc - si * MR);
                            let ap = &apack[si * kc * MR..][..kc * MR];
                            kernel(kc, ap, bp, alpha, cblk, n, i0, j0, ni, nj);
                        }
                    }
                }
            });
        }
    }
}

/// `c += alpha * op(A) . x` for a single output column.
fn matvec(m: usize, k: usize, alpha: f32, a: &[f32], ta: Trans, x: &[f32], c: &mut [f32]) {
    match ta {
        Trans::No => {
            for (i, cv) in c.iter_mut().enumerate() {
                let row = &a[i * k..(i + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &xv) in row.iter().zip(x) {
                    acc = av.mul_add(xv, acc);
                }
                *cv += alpha * acc;
            }
        }
        Trans::Yes => {
            // a is stored k x m; accumulate one scaled row at a time so
            // the inner loop stays contiguous.
            for (p, &xv) in x.iter().enumerate() {
                let s = alpha * xv;
                if s != 0.0 {
                    let row = &a[p * m..(p + 1) * m];
                    for (cv, &av) in c.iter_mut().zip(row) {
                        *cv = av.mul_add(s, *cv);
                    }
                }
            }
        }
    }
}

/// Packs `op(A)[ic..ic+mc][pc..pc+kc]` into `MR`-row micro-panels,
/// zero-padding the ragged bottom strip.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f32],
    ta: Trans,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let strips = mc.div_ceil(MR);
    out.clear();
    out.resize(strips * kc * MR, 0.0);
    for s in 0..strips {
        let i0 = ic + s * MR;
        let ni = MR.min(ic + mc - i0);
        let dst = &mut out[s * kc * MR..][..kc * MR];
        match ta {
            Trans::No => {
                for ii in 0..ni {
                    let row = &a[(i0 + ii) * k + pc..][..kc];
                    for (p, &v) in row.iter().enumerate() {
                        dst[p * MR + ii] = v;
                    }
                }
            }
            Trans::Yes => {
                for p in 0..kc {
                    let row = &a[(pc + p) * m + i0..][..ni];
                    dst[p * MR..p * MR + ni].copy_from_slice(row);
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kc][jc..jc+nc]` into `NR`-column micro-panels,
/// zero-padding the ragged right strip.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f32],
    tb: Trans,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    out: &mut Vec<f32>,
) {
    let strips = nc.div_ceil(NR);
    out.clear();
    out.resize(strips * kc * NR, 0.0);
    for s in 0..strips {
        let j0 = jc + s * NR;
        let nj = NR.min(jc + nc - j0);
        let dst = &mut out[s * kc * NR..][..kc * NR];
        match tb {
            Trans::No => {
                for p in 0..kc {
                    let row = &b[(pc + p) * n + j0..][..nj];
                    dst[p * NR..p * NR + nj].copy_from_slice(row);
                }
            }
            Trans::Yes => {
                for jj in 0..nj {
                    let col = &b[(j0 + jj) * k + pc..][..kc];
                    for (p, &v) in col.iter().enumerate() {
                        dst[p * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// Convolution output extent for an `h x w` input, square `ksize`
/// kernel, `stride`, and symmetric zero `pad`.
/// Dot product with sixteen independent fused partial sums, so the
/// accumulation vectorises and pipelines instead of forming one serial
/// latency chain. Slice-level core of the inner-product GEMM path,
/// reused directly by the fused per-sample weight-gradient
/// accumulation. `mul_add` lowers to a fused instruction under the
/// workspace's `target-cpu=native` build; rustc never contracts
/// `a * b + c` on its own, so the explicit call halves the arithmetic
/// uops (the same reasoning applies to every kernel in this module).
pub fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 16];
    let mut pa = a.chunks_exact(16);
    let mut pb = b.chunks_exact(16);
    for (ca, cb) in (&mut pa).zip(&mut pb) {
        for (l, s) in acc.iter_mut().enumerate() {
            *s = ca[l].mul_add(cb[l], *s);
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in pa.remainder().iter().zip(pb.remainder()) {
        tail = x.mul_add(*y, tail);
    }
    acc.iter().sum::<f32>() + tail
}

/// Sum of a slice with sixteen independent partial sums, so the adds
/// vectorise and pipeline instead of forming one serial latency chain.
/// The batched bias gradients reduce rows of `n * oh * ow` elements —
/// a naive sequential sum is the latency-bound outlier in an
/// otherwise GEMM-shaped backward pass.
pub fn lane_sum(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 16];
    let mut chunks = xs.chunks_exact(16);
    for ch in &mut chunks {
        for (s, &v) in acc.iter_mut().zip(ch) {
            *s += v;
        }
    }
    let tail: f32 = chunks.remainder().iter().sum();
    acc.iter().sum::<f32>() + tail
}

pub fn conv_out_hw(h: usize, w: usize, ksize: usize, stride: usize, pad: usize) -> (usize, usize) {
    (
        (h + 2 * pad - ksize) / stride + 1,
        (w + 2 * pad - ksize) / stride + 1,
    )
}

/// Lowers one `[c, h, w]` image into im2col layout.
///
/// Writes the `c*ksize*ksize x oh*ow` column matrix of `x` into `col`
/// at row stride `ld` and column offset `col_off`: entry
/// `((ic*ksize + ky)*ksize + kx, oy*ow + ox)` holds
/// `x[ic, oy*stride + ky - pad, ox*stride + kx - pad]`, or `0.0` where
/// the receptive field hangs over the border. Every cell of the block
/// is written, so `col` may hold stale data from a previous use. The
/// `ld`/`col_off` pair lets batched callers pack N images side by side
/// into one `c*ksize*ksize x N*oh*ow` matrix.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    col: &mut [f32],
    ld: usize,
    col_off: usize,
) {
    assert_eq!(x.len(), c * h * w, "input buffer shape mismatch");
    let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
    assert!(col_off + oh * ow <= ld, "column block exceeds row stride");
    for ic in 0..c {
        let xc = &x[ic * h * w..(ic + 1) * h * w];
        im2col_channel(xc, ic, h, w, ksize, stride, pad, oh, ow, col, ld, col_off);
    }
}

/// Lowers a packed `[c, n, h, w]` batch (every channel holds its `n`
/// per-sample planes side by side, the layout the batched inference
/// path keeps between convolutional layers) into one
/// `c*ksize*ksize x n*oh*ow` im2col matrix; sample `si`'s columns land
/// in the block starting at `si*oh*ow`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_packed_into(
    x: &[f32],
    c: usize,
    n: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    col: &mut [f32],
) {
    assert_eq!(x.len(), c * n * h * w, "input buffer shape mismatch");
    let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
    let ld = n * oh * ow;
    for si in 0..n {
        for ic in 0..c {
            let xc = &x[(ic * n + si) * h * w..][..h * w];
            im2col_channel(
                xc,
                ic,
                h,
                w,
                ksize,
                stride,
                pad,
                oh,
                ow,
                col,
                ld,
                si * oh * ow,
            );
        }
    }
}

/// Writes channel `ic`'s `ksize*ksize` im2col rows for one `[h, w]`
/// plane `xc`. Shared body of [`im2col_into`] and
/// [`im2col_packed_into`].
#[allow(clippy::too_many_arguments)]
fn im2col_channel(
    xc: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    col: &mut [f32],
    ld: usize,
    col_off: usize,
) {
    for ky in 0..ksize {
        for kx in 0..ksize {
            let r = (ic * ksize + ky) * ksize + kx;
            let row = &mut col[r * ld + col_off..][..oh * ow];
            if stride == 1 && ow == w {
                // "Same" convolution: every output row is exactly one
                // input row shifted by `kx - pad`, and consecutive rows
                // advance by `w` on both sides — so the whole vertical
                // run of valid rows is ONE contiguous copy. The copy
                // bleeds neighbouring-row values into the padded edge
                // columns, which the fixup loop below zeroes (at most
                // two scalar writes per row); that replaces `oh`
                // short per-row copies with one streaming memcpy.
                let ylo = pad.saturating_sub(ky);
                let yhi = (h + pad - ky).min(oh);
                row[..ylo * ow].fill(0.0);
                row[yhi * ow..].fill(0.0);
                if yhi <= ylo {
                    continue;
                }
                let (lo, hi) = valid_ox_range(w, ow, kx, stride, pad);
                let d0 = ylo * ow + lo;
                let d1 = (yhi - 1) * ow + hi;
                let s0 = (ylo + ky - pad) * w + lo + kx - pad;
                row[d0..d1].copy_from_slice(&xc[s0..s0 + (d1 - d0)]);
                for oy in ylo..yhi {
                    row[oy * ow..oy * ow + lo].fill(0.0);
                    row[oy * ow + hi..(oy + 1) * ow].fill(0.0);
                }
                continue;
            }
            for oy in 0..oh {
                let iy = (oy * stride + ky) as isize - pad as isize;
                let dst = &mut row[oy * ow..(oy + 1) * ow];
                if iy < 0 || iy >= h as isize {
                    dst.fill(0.0);
                    continue;
                }
                let src = &xc[iy as usize * w..(iy as usize + 1) * w];
                let (lo, hi) = valid_ox_range(w, ow, kx, stride, pad);
                dst[..lo].fill(0.0);
                dst[hi..].fill(0.0);
                if stride == 1 {
                    let sx = lo + kx - pad;
                    dst[lo..hi].copy_from_slice(&src[sx..sx + (hi - lo)]);
                } else if stride == 2 && hi > lo {
                    // Strided gather as a pair-wise deinterleave so the
                    // copy vectorises (shuffles instead of scalar loads).
                    let sx = 2 * lo + kx - pad;
                    let s = &src[sx..sx + 2 * (hi - lo) - 1];
                    let d = &mut dst[lo..hi];
                    for (dv, sp) in d.iter_mut().zip(s.chunks_exact(2)) {
                        *dv = sp[0];
                    }
                    d[hi - lo - 1] = s[2 * (hi - lo - 1)];
                } else {
                    for (ox, d) in dst.iter_mut().enumerate().take(hi).skip(lo) {
                        *d = src[ox * stride + kx - pad];
                    }
                }
            }
        }
    }
}

/// Scatter-adds an im2col-layout gradient back onto the image grid:
/// the adjoint of [`im2col_into`]. `gin` accumulates (`+=`), since
/// overlapping receptive fields each contribute to the same pixel.
#[allow(clippy::too_many_arguments)]
pub fn col2im_into(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    gin: &mut [f32],
    ld: usize,
    col_off: usize,
) {
    assert_eq!(gin.len(), c * h * w, "output buffer shape mismatch");
    let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
    assert!(col_off + oh * ow <= ld, "column block exceeds row stride");
    for ic in 0..c {
        let gc = &mut gin[ic * h * w..(ic + 1) * h * w];
        col2im_channel(gc, ic, h, w, ksize, stride, pad, oh, ow, col, ld, col_off);
    }
}

/// Scatter-adds an im2col-layout gradient of a packed `[c, n, h, w]`
/// batch back onto the image grid: the adjoint of
/// [`im2col_packed_into`]. `gin` accumulates (`+=`) and must be zeroed
/// by the caller when a fresh gradient is wanted.
#[allow(clippy::too_many_arguments)]
pub fn col2im_packed_into(
    col: &[f32],
    c: usize,
    n: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    gin: &mut [f32],
) {
    assert_eq!(gin.len(), c * n * h * w, "output buffer shape mismatch");
    let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
    let ld = n * oh * ow;
    for si in 0..n {
        for ic in 0..c {
            let gc = &mut gin[(ic * n + si) * h * w..][..h * w];
            col2im_channel(
                gc,
                ic,
                h,
                w,
                ksize,
                stride,
                pad,
                oh,
                ow,
                col,
                ld,
                si * oh * ow,
            );
        }
    }
}

/// Scatter-adds channel `ic`'s `ksize*ksize` im2col rows back onto one
/// `[h, w]` plane `gc`. Shared body of [`col2im_into`] and
/// [`col2im_packed_into`].
#[allow(clippy::too_many_arguments)]
fn col2im_channel(
    gc: &mut [f32],
    ic: usize,
    h: usize,
    w: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    col: &[f32],
    ld: usize,
    col_off: usize,
) {
    for ky in 0..ksize {
        for kx in 0..ksize {
            let r = (ic * ksize + ky) * ksize + kx;
            let row = &col[r * ld + col_off..][..oh * ow];
            for oy in 0..oh {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let src = &row[oy * ow..(oy + 1) * ow];
                let dst = &mut gc[iy as usize * w..(iy as usize + 1) * w];
                let (lo, hi) = valid_ox_range(w, ow, kx, stride, pad);
                if stride == 1 {
                    // Contiguous mirror of the im2col copy: a straight
                    // slice accumulate, which vectorises.
                    let sx = lo + kx - pad;
                    for (d, &s) in dst[sx..sx + (hi - lo)].iter_mut().zip(&src[lo..hi]) {
                        *d += s;
                    }
                } else if stride == 2 && hi > lo {
                    // Strided scatter as a pair-wise interleave so the
                    // accumulate vectorises, mirroring the im2col
                    // deinterleave.
                    let sx = 2 * lo + kx - pad;
                    let d = &mut dst[sx..sx + 2 * (hi - lo) - 1];
                    let s = &src[lo..hi];
                    for (dp, &sv) in d.chunks_exact_mut(2).zip(s) {
                        dp[0] += sv;
                    }
                    d[2 * (hi - lo - 1)] += s[hi - lo - 1];
                } else {
                    for ox in lo..hi {
                        dst[ox * stride + kx - pad] += src[ox];
                    }
                }
            }
        }
    }
}

/// Output-column range `[lo, hi)` whose source column
/// `ox*stride + kx - pad` lands inside `[0, w)`.
fn valid_ox_range(w: usize, ow: usize, kx: usize, stride: usize, pad: usize) -> (usize, usize) {
    let lo = if pad > kx {
        (pad - kx).div_ceil(stride).min(ow)
    } else {
        0
    };
    let hi = if w + pad > kx {
        ((w - 1 + pad - kx) / stride + 1).min(ow)
    } else {
        0
    };
    (lo, hi.max(lo))
}

/// Reusable per-thread workspace for the convolution lowering.
#[derive(Debug, Default)]
pub struct Scratch {
    /// im2col matrix of the layer input.
    pub col: Vec<f32>,
    /// Second column matrix (gradient w.r.t. the im2col output).
    pub aux: Vec<f32>,
    /// Ping/pong activation buffers for the packed batched forward
    /// walk. Batch-sized activations sit above the allocator's mmap
    /// threshold, so freshly allocating them every layer costs a page
    /// fault per 4 KiB; recycling keeps the pages warm.
    pub ping: Vec<f32>,
    /// See [`Scratch::ping`].
    pub pong: Vec<f32>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Option<Scratch>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with this thread's scratch workspace, returning the
/// buffers to the pool afterwards so repeated layer calls reuse their
/// allocations. The workspace is moved out (not borrowed) for the
/// duration of `f`, so nested or re-entrant calls are safe — they just
/// start from empty buffers.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut s = SCRATCH.with(|c| c.borrow_mut().take()).unwrap_or_default();
    let r = f(&mut s);
    SCRATCH.with(|c| *c.borrow_mut() = Some(s));
    r
}

impl Tensor {
    /// 2-D matrix product over borrowed tensors: `self [m, k] . other
    /// [k, n] -> [m, n]`, evaluated by [`sgemm`] without copying
    /// either operand. Slice-level callers can invoke [`sgemm`]
    /// directly for transposed operands or accumulation.
    pub fn matmul_view(&self, other: &Tensor) -> Tensor {
        let [m, k] = *self.shape() else {
            panic!("matmul_view lhs expects [m, k], got {:?}", self.shape())
        };
        let [k2, n] = *other.shape() else {
            panic!("matmul_view rhs expects [k, n], got {:?}", other.shape())
        };
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        sgemm(
            m,
            n,
            k,
            1.0,
            self.data(),
            Trans::No,
            other.data(),
            Trans::No,
            0.0,
            &mut out,
        );
        Tensor::from_vec(&[m, n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Reference triple loop in f64 (order-insensitive to tolerance).
    #[allow(clippy::too_many_arguments)]
    fn naive_gemm(
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        ta: Trans,
        b: &[f32],
        tb: Trans,
        beta: f32,
        c: &mut [f32],
    ) {
        let at = |i: usize, p: usize| match ta {
            Trans::No => a[i * k + p],
            Trans::Yes => a[p * m + i],
        };
        let bt = |p: usize, j: usize| match tb {
            Trans::No => b[p * n + j],
            Trans::Yes => b[j * k + p],
        };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += f64::from(at(i, p)) * f64::from(bt(p, j));
                }
                let old = if beta == 0.0 {
                    0.0
                } else {
                    beta * c[i * n + j]
                };
                c[i * n + j] = old + alpha * acc as f32;
            }
        }
    }

    fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32, what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= tol * (1.0 + w.abs()),
                "{what}[{i}]: {g} vs {w}"
            );
        }
    }

    #[test]
    fn sgemm_matches_naive_across_block_boundaries() {
        // Sizes straddling MR/NR, MC, KC and NC edges, in both the
        // small-k axpy regime (k <= SMALL_K) and the packed regime.
        let cases = [
            (1, 1, 1),
            (7, 5, 9),
            (8, 8, 8),
            (9, 17, 8),
            (13, 17, 300),  // axpy regime, wider than NR
            (70, 30, 260),  // axpy regime, crosses MC
            (3, 1030, 40),  // axpy regime, crosses NC
            (13, 17, 400),  // packed regime, crosses KC
            (70, 30, 390),  // packed regime, crosses MC and KC
            (3, 1030, 385), // packed regime, crosses NC
            (65, 9, 513),   // packed regime, two KC panels + ragged tiles
        ];
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, n, k) in &cases {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut c = rand_vec(&mut rng, m * n);
            let mut want = c.clone();
            sgemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            naive_gemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut want);
            assert_close(&c, &want, 1e-4, &format!("C({m}x{n}x{k})"));
        }
    }

    #[test]
    fn sgemm_handles_all_transpose_combinations() {
        // k = 70 exercises the axpy regime (and, for No/Yes, the dot
        // fast path), k = 400 the packed one; (80, 900, 70) pushes
        // m * n past the dot path's cap so No/Yes also lands on the
        // packed kernel.
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n, k) in &[(19usize, 23usize, 70usize), (19, 23, 400), (80, 900, 70)] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = rand_vec(&mut rng, m * k);
                    let b = rand_vec(&mut rng, k * n);
                    let mut c = vec![0.0f32; m * n];
                    let mut want = vec![0.0f32; m * n];
                    sgemm(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c);
                    naive_gemm(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut want);
                    assert_close(&c, &want, 1e-4, &format!("C({m}x{n}x{k},{ta:?},{tb:?})"));
                }
            }
        }
    }

    #[test]
    fn sgemm_applies_alpha_and_beta_once() {
        let (m, n, k) = (12, 34, 300); // two KC panels: beta must not reapply
        let mut rng = StdRng::seed_from_u64(3);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = rand_vec(&mut rng, m * n);
        let mut want = c.clone();
        sgemm(m, n, k, 0.5, &a, Trans::No, &b, Trans::No, 2.0, &mut c);
        naive_gemm(m, n, k, 0.5, &a, Trans::No, &b, Trans::No, 2.0, &mut want);
        assert_close(&c, &want, 1e-4, "alpha/beta");
    }

    #[test]
    fn sgemm_beta_zero_overwrites_nan() {
        let (m, n, k) = (4, 5, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut c = vec![f32::NAN; m * n];
        sgemm(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
        assert!(c.iter().all(|v| v.is_finite()), "NaN survived beta = 0");
    }

    #[test]
    fn matvec_fast_path_matches_naive_both_transposes() {
        let (m, k) = (37, 90);
        let mut rng = StdRng::seed_from_u64(9);
        for &ta in &[Trans::No, Trans::Yes] {
            let a = rand_vec(&mut rng, m * k);
            let x = rand_vec(&mut rng, k);
            let mut c = rand_vec(&mut rng, m);
            let mut want = c.clone();
            sgemm(m, 1, k, 1.5, &a, ta, &x, Trans::No, 1.0, &mut c);
            naive_gemm(m, 1, k, 1.5, &a, ta, &x, Trans::No, 1.0, &mut want);
            assert_close(&c, &want, 1e-4, &format!("matvec({ta:?})"));
        }
    }

    #[test]
    fn im2col_center_column_is_the_full_receptive_field() {
        // 3x3 input, 3x3 kernel, stride 1, pad 1: the centre output's
        // column is the whole image; the corner output's column has the
        // padded positions zeroed.
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let (oh, ow) = conv_out_hw(3, 3, 3, 1, 1);
        assert_eq!((oh, ow), (3, 3));
        let mut col = vec![f32::NAN; 9 * 9];
        im2col_into(&x, 1, 3, 3, 3, 1, 1, &mut col, 9, 0);
        let center: Vec<f32> = (0..9).map(|r| col[r * 9 + 4]).collect();
        assert_eq!(center, x);
        let corner: Vec<f32> = (0..9).map(|r| col[r * 9]).collect();
        assert_eq!(corner, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 4.0, 5.0]);
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — pins the
        // scatter-add against the gather over every stride/pad case.
        let mut rng = StdRng::seed_from_u64(17);
        for &(c, h, w, ksize, stride, pad) in &[
            (1usize, 5usize, 7usize, 3usize, 1usize, 1usize),
            (2, 6, 6, 3, 2, 1),
            (3, 8, 5, 3, 1, 0),
            (1, 7, 7, 5, 2, 2),
        ] {
            let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
            let rows = c * ksize * ksize;
            let x = rand_vec(&mut rng, c * h * w);
            let y = rand_vec(&mut rng, rows * oh * ow);
            let mut col = vec![0.0f32; rows * oh * ow];
            im2col_into(&x, c, h, w, ksize, stride, pad, &mut col, oh * ow, 0);
            let lhs: f64 = col
                .iter()
                .zip(&y)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            let mut back = vec![0.0f32; c * h * w];
            col2im_into(&y, c, h, w, ksize, stride, pad, &mut back, oh * ow, 0);
            let rhs: f64 = x
                .iter()
                .zip(&back)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
                "adjoint mismatch ({c},{h},{w},k{ksize},s{stride},p{pad}): {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn packed_col2im_is_the_adjoint_of_packed_im2col() {
        // Same inner-product identity as the per-sample test, but over
        // the `[c, n, h, w]` batch layout the training path scatters
        // into.
        let mut rng = StdRng::seed_from_u64(29);
        for &(c, n, h, w, ksize, stride, pad) in &[
            (2usize, 3usize, 6usize, 6usize, 3usize, 1usize, 1usize),
            (1, 4, 7, 5, 3, 2, 1),
            (3, 1, 8, 8, 3, 1, 1),
        ] {
            let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
            let rows = c * ksize * ksize;
            let x = rand_vec(&mut rng, c * n * h * w);
            let y = rand_vec(&mut rng, rows * n * oh * ow);
            let mut col = vec![0.0f32; rows * n * oh * ow];
            im2col_packed_into(&x, c, n, h, w, ksize, stride, pad, &mut col);
            let lhs: f64 = col
                .iter()
                .zip(&y)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            let mut back = vec![0.0f32; c * n * h * w];
            col2im_packed_into(&y, c, n, h, w, ksize, stride, pad, &mut back);
            let rhs: f64 = x
                .iter()
                .zip(&back)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
                "packed adjoint mismatch ({c},{n},{h},{w},k{ksize},s{stride},p{pad}): {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn batched_im2col_offsets_are_independent_blocks() {
        let mut rng = StdRng::seed_from_u64(23);
        let (c, h, w, ksize, stride, pad) = (2, 6, 6, 3, 1, 1);
        let (oh, ow) = conv_out_hw(h, w, ksize, stride, pad);
        let l = oh * ow;
        let rows = c * ksize * ksize;
        let x0 = rand_vec(&mut rng, c * h * w);
        let x1 = rand_vec(&mut rng, c * h * w);
        let mut big = vec![f32::NAN; rows * 2 * l];
        im2col_into(&x0, c, h, w, ksize, stride, pad, &mut big, 2 * l, 0);
        im2col_into(&x1, c, h, w, ksize, stride, pad, &mut big, 2 * l, l);
        let mut single = vec![0.0f32; rows * l];
        im2col_into(&x1, c, h, w, ksize, stride, pad, &mut single, l, 0);
        for r in 0..rows {
            assert_eq!(&big[r * 2 * l + l..][..l], &single[r * l..][..l]);
        }
    }

    #[test]
    fn matmul_view_known_answer() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul_view(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn with_scratch_reuses_and_survives_nesting() {
        with_scratch(|s| {
            s.col.resize(128, 1.0);
            // A nested call must not observe (or clobber) the outer
            // workspace.
            with_scratch(|inner| {
                assert!(inner.col.is_empty());
                inner.col.resize(4, 2.0);
            });
            assert_eq!(s.col.len(), 128);
        });
        // The outermost workspace went back to the pool last.
        with_scratch(|s| assert_eq!(s.col.len(), 128));
    }
}
