//! Typed errors for model persistence, checkpointing and training.
//!
//! Everything that can go wrong while reading an on-disk artefact —
//! I/O failures, malformed JSON, envelope/version mismatches, corrupted
//! payloads, structurally invalid networks — maps to a [`NnError`]
//! variant so callers can branch on the failure class instead of
//! string-matching, and so no panic is reachable from file contents.

use std::fmt;

/// Why a model, checkpoint or training run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Underlying I/O failure (open/read/write/rename).
    Io(String),
    /// The device ran out of space mid-write (`ENOSPC`). Split from
    /// [`NnError::Io`] because callers degrade differently: a training
    /// loop keeps its last good checkpoint and continues, a feedback
    /// lane sheds and counts — neither should treat a full disk like a
    /// permissions error.
    StorageFull(String),
    /// JSON (de)serialisation failure.
    Serde(String),
    /// The artefact's envelope declares a format version this build
    /// does not speak — newer than it, or older (trained against a
    /// previous, differently-sized format universe).
    FormatVersion {
        /// Version found in the file.
        found: u32,
        /// The one version this build reads and writes.
        supported: u32,
    },
    /// The envelope holds a different kind of artefact than requested
    /// (e.g. a checkpoint passed where a model was expected).
    WrongKind {
        /// Kind tag found in the file.
        found: String,
        /// Kind tag the caller expected.
        expected: String,
    },
    /// The payload bytes do not hash to the stored checksum — the file
    /// was truncated or corrupted after writing.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The artefact belongs to a different configuration (fingerprint
    /// mismatch) — e.g. resuming a checkpoint under changed
    /// hyper-parameters or a different dataset size.
    ConfigMismatch(String),
    /// The deserialised value is structurally inconsistent (tensor
    /// shape/data mismatch, impossible layer chain, wrong head width).
    InvalidModel(String),
    /// Training diverged and exhausted its rollback budget.
    Diverged(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Io(m) => write!(f, "i/o error: {m}"),
            NnError::StorageFull(m) => write!(f, "storage full: {m}"),
            NnError::Serde(m) => write!(f, "deserialise: {m}"),
            NnError::FormatVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build requires {supported}; \
                 pre-{supported} artefacts predate the current format universe and \
                 must be retrained)"
            ),
            NnError::WrongKind { found, expected } => {
                write!(f, "artefact kind '{found}' where '{expected}' was expected")
            }
            NnError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            NnError::ConfigMismatch(m) => write!(f, "configuration mismatch: {m}"),
            NnError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            NnError::Diverged(m) => write!(f, "training diverged: {m}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        if is_storage_full(&e) {
            NnError::StorageFull(e.to_string())
        } else {
            NnError::Io(e.to_string())
        }
    }
}

/// Whether an OS error means the device is out of space (`ENOSPC` or
/// the quota-exceeded sibling) — the write-side failure class that
/// callers degrade on rather than abort.
pub fn is_storage_full(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::StorageFull | std::io::ErrorKind::QuotaExceeded
    ) || e.raw_os_error() == Some(28)
}
