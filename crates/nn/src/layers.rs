//! Network layers: convolution, max-pooling, ReLU, flatten, dense.
//!
//! Layers are an enum (not trait objects) so whole networks serialise
//! with serde and clone cheaply. Forward passes are *stateless*: the
//! training loop keeps each layer's input and hands it back to
//! [`Layer::backward`], which lets one shared network reference serve
//! many rayon workers computing per-sample gradients concurrently.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// 2-D convolution with square kernels and "same"-style zero padding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (number of filters).
    pub out_ch: usize,
    /// Kernel edge length.
    pub ksize: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each border (`(ksize - 1) / 2` keeps size at
    /// stride 1).
    pub pad: usize,
    /// Filter weights, shape `[out_ch, in_ch, ksize, ksize]`.
    pub weight: Tensor,
    /// Per-filter bias, shape `[out_ch]`.
    pub bias: Tensor,
}

impl Conv2d {
    /// He-initialised convolution.
    pub fn new(in_ch: usize, out_ch: usize, ksize: usize, stride: usize, rng: &mut StdRng) -> Self {
        let fan_in = (in_ch * ksize * ksize) as f64;
        let dist = Normal::new(0.0, (2.0 / fan_in).sqrt()).expect("positive std");
        let weight = Tensor::from_vec(
            &[out_ch, in_ch, ksize, ksize],
            (0..out_ch * in_ch * ksize * ksize)
                .map(|_| dist.sample(rng) as f32)
                .collect(),
        );
        Self {
            in_ch,
            out_ch,
            ksize,
            stride,
            pad: (ksize - 1) / 2,
            weight,
            bias: Tensor::zeros(&[out_ch]),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.ksize) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.ksize) / self.stride + 1;
        (oh, ow)
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let k = self.ksize;
        let mut out = Tensor::zeros(&[self.out_ch, oh, ow]);
        let xd = x.data();
        let wd = self.weight.data();
        let bd = self.bias.data();
        let od = out.data_mut();
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bd[oc];
                    for ic in 0..c {
                        let wbase = ((oc * c + ic) * k) * k;
                        let xbase = ic * h * w;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = xbase + iy as usize * w;
                            let wrow = wbase + ky * k;
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += xd[xrow + ix as usize] * wd[wrow + kx];
                            }
                        }
                    }
                    od[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        debug_assert_eq!(gout.shape(), &[self.out_ch, oh, ow]);
        let k = self.ksize;
        let mut gin = Tensor::zeros(x.shape());
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gb = Tensor::zeros(self.bias.shape());
        let xd = x.data();
        let wd = self.weight.data();
        let god = gout.data();
        let gind = gin.data_mut();
        let gwd = gw.data_mut();
        let gbd = gb.data_mut();
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = god[(oc * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gbd[oc] += g;
                    for ic in 0..c {
                        let wbase = ((oc * c + ic) * k) * k;
                        let xbase = ic * h * w;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = xbase + iy as usize * w;
                            let wrow = wbase + ky * k;
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                gwd[wrow + kx] += g * xd[xrow + ix as usize];
                                gind[xrow + ix as usize] += g * wd[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
        (gin, vec![gw, gb])
    }
}

/// Non-overlapping max pooling (`size == stride`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Pooling window edge (and stride).
    pub size: usize,
}

impl MaxPool2d {
    /// Output extent: floor division, but never below 1 — windows at
    /// the border (or on inputs smaller than the window) are clamped.
    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h.saturating_sub(self.size) / self.size) + 1,
            (w.saturating_sub(self.size) / self.size) + 1,
        )
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("MaxPool2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let xd = x.data();
        let od = out.data_mut();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in oy * self.size..(oy * self.size + self.size).min(h) {
                        for kx in ox * self.size..(ox * self.size + self.size).min(w) {
                            let v = xd[(ch * h + ky) * w + kx];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    od[(ch * oh + oy) * ow + ox] = best;
                }
            }
        }
        out
    }

    fn backward(&self, x: &Tensor, gout: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("MaxPool2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        let mut gin = Tensor::zeros(x.shape());
        let xd = x.data();
        let god = gout.data();
        let gind = gin.data_mut();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Recompute the argmax; the first maximum wins ties,
                    // matching the forward pass exactly.
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = 0usize;
                    for ky in oy * self.size..(oy * self.size + self.size).min(h) {
                        for kx in ox * self.size..(ox * self.size + self.size).min(w) {
                            let idx = (ch * h + ky) * w + kx;
                            if xd[idx] > best {
                                best = xd[idx];
                                arg = idx;
                            }
                        }
                    }
                    gind[arg] += god[(ch * oh + oy) * ow + ox];
                }
            }
        }
        gin
    }
}

/// Fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Weights, shape `[out_dim, in_dim]`.
    pub weight: Tensor,
    /// Bias, shape `[out_dim]`.
    pub bias: Tensor,
}

impl Dense {
    /// He-initialised dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let dist = Normal::new(0.0, (2.0 / in_dim as f64).sqrt()).expect("positive std");
        Self {
            in_dim,
            out_dim,
            weight: Tensor::from_vec(
                &[out_dim, in_dim],
                (0..out_dim * in_dim)
                    .map(|_| dist.sample(rng) as f32)
                    .collect(),
            ),
            bias: Tensor::zeros(&[out_dim]),
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "Dense input width mismatch");
        let xd = x.data();
        let wd = self.weight.data();
        let bd = self.bias.data();
        let mut out = vec![0.0f32; self.out_dim];
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &wd[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = bd[o];
            for (wv, xv) in row.iter().zip(xd) {
                acc += wv * xv;
            }
            *out_v = acc;
        }
        Tensor::from_vec(&[self.out_dim], out)
    }

    fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        debug_assert_eq!(gout.len(), self.out_dim);
        let xd = x.data();
        let god = gout.data();
        let wd = self.weight.data();
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gin = Tensor::zeros(x.shape());
        {
            let gwd = gw.data_mut();
            let gind = gin.data_mut();
            for o in 0..self.out_dim {
                let g = god[o];
                if g == 0.0 {
                    continue;
                }
                let row = o * self.in_dim;
                for i in 0..self.in_dim {
                    gwd[row + i] += g * xd[i];
                    gind[i] += g * wd[row + i];
                }
            }
        }
        let gb = Tensor::from_vec(&[self.out_dim], god.to_vec());
        (gin, vec![gw, gb])
    }
}

/// One network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Non-overlapping max pooling.
    MaxPool2d(MaxPool2d),
    /// Rectified linear unit.
    Relu,
    /// Reshape `[c, h, w]` to a flat vector.
    Flatten,
    /// Fully connected.
    Dense(Dense),
}

impl Layer {
    /// Forward pass (stateless).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::Relu => {
                let mut out = x.clone();
                for v in out.data_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                out
            }
            Layer::Flatten => x.clone().reshape(&[x.len()]),
            Layer::Dense(l) => l.forward(x),
        }
    }

    /// Backward pass: gradient w.r.t. the layer input plus gradients
    /// w.r.t. each parameter tensor (aligned with [`Layer::params`]).
    pub fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        match self {
            Layer::Conv2d(l) => l.backward(x, gout),
            Layer::MaxPool2d(l) => (l.backward(x, gout), Vec::new()),
            Layer::Relu => {
                let mut gin = gout.clone();
                for (g, &v) in gin.data_mut().iter_mut().zip(x.data()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
                (gin, Vec::new())
            }
            Layer::Flatten => (gout.clone().reshape(x.shape()), Vec::new()),
            Layer::Dense(l) => l.backward(x, gout),
        }
    }

    /// The layer's trainable parameter tensors.
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Conv2d(l) => vec![&l.weight, &l.bias],
            Layer::Dense(l) => vec![&l.weight, &l.bias],
            _ => Vec::new(),
        }
    }

    /// Mutable access to the parameter tensors.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Conv2d(l) => vec![&mut l.weight, &mut l.bias],
            Layer::Dense(l) => vec![&mut l.weight, &mut l.bias],
            _ => Vec::new(),
        }
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        match self {
            Layer::Conv2d(l) => {
                let [_, h, w] = *in_shape else {
                    panic!("Conv2d expects [c, h, w]")
                };
                let (oh, ow) = l.out_hw(h, w);
                vec![l.out_ch, oh, ow]
            }
            Layer::MaxPool2d(l) => {
                let [c, h, w] = *in_shape else {
                    panic!("MaxPool2d expects [c, h, w]")
                };
                let (oh, ow) = l.out_hw(h, w);
                vec![c, oh, ow]
            }
            Layer::Relu => in_shape.to_vec(),
            Layer::Flatten => vec![in_shape.iter().product()],
            Layer::Dense(l) => vec![l.out_dim],
        }
    }

    /// Human-readable description (used by `repro fig10`).
    pub fn describe(&self) -> String {
        match self {
            Layer::Conv2d(l) => format!(
                "CONV({k}x{k}x{oc}, stride {s})",
                k = l.ksize,
                oc = l.out_ch,
                s = l.stride
            ),
            Layer::MaxPool2d(l) => format!("POOL({0}x{0})", l.size),
            Layer::Relu => "ReLU".into(),
            Layer::Flatten => "Flatten".into(),
            Layer::Dense(l) => format!("Dense({} -> {})", l.in_dim, l.out_dim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    /// Central-difference gradient check for a layer.
    fn grad_check(layer: &mut Layer, in_shape: &[usize]) {
        let mut r = rng();
        let dist = Normal::new(0.0, 1.0).unwrap();
        let vol: usize = in_shape.iter().product();
        let x = Tensor::from_vec(
            in_shape,
            (0..vol).map(|_| dist.sample(&mut r) as f32).collect(),
        );
        let out = layer.forward(&x);
        // Loss = weighted sum of outputs (fixed random weights), so
        // d(loss)/d(out) is just those weights.
        let loss_w: Vec<f32> = (0..out.len()).map(|_| dist.sample(&mut r) as f32).collect();
        let gout = Tensor::from_vec(out.shape(), loss_w.clone());
        let loss = |l: &Layer, x: &Tensor| -> f64 {
            l.forward(x)
                .data()
                .iter()
                .zip(&loss_w)
                .map(|(&o, &w)| (o * w) as f64)
                .sum()
        };

        let (gin, gparams) = layer.backward(&x, &gout);
        let eps = 1e-3f32;

        // Check input gradients on a sample of positions.
        for idx in (0..x.len()).step_by((x.len() / 17).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps as f64);
            let ana = gin.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
                "input grad at {idx}: numeric {num} vs analytic {ana}"
            );
        }

        // Check parameter gradients on a sample of positions.
        let n_params = layer.params().len();
        for p in 0..n_params {
            let plen = layer.params()[p].len();
            for idx in (0..plen).step_by((plen / 13).max(1)) {
                let orig = layer.params()[p].data()[idx];
                layer.params_mut()[p].data_mut()[idx] = orig + eps;
                let lp = loss(layer, &x);
                layer.params_mut()[p].data_mut()[idx] = orig - eps;
                let lm = loss(layer, &x);
                layer.params_mut()[p].data_mut()[idx] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                let ana = gparams[p].data()[idx] as f64;
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
                    "param {p} grad at {idx}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn conv_known_answer() {
        // 1x3x3 input, single 3x3 identity-centre filter, stride 1:
        // output equals input (same padding).
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng());
        conv.weight = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        );
        conv.bias = Tensor::from_vec(&[1], vec![0.5]);
        let x = Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = Layer::Conv2d(conv).forward(&x);
        assert_eq!(y.shape(), &[1, 3, 3]);
        for (i, &v) in y.data().iter().enumerate() {
            assert_eq!(v, (i + 1) as f32 + 0.5);
        }
    }

    #[test]
    fn conv_stride_two_halves_size() {
        let conv = Conv2d::new(2, 4, 3, 2, &mut rng());
        let l = Layer::Conv2d(conv);
        assert_eq!(l.out_shape(&[2, 16, 16]), vec![4, 8, 8]);
        let x = Tensor::zeros(&[2, 16, 16]);
        assert_eq!(l.forward(&x).shape(), &[4, 8, 8]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut l = Layer::Conv2d(Conv2d::new(2, 3, 3, 1, &mut rng()));
        grad_check(&mut l, &[2, 6, 6]);
    }

    #[test]
    fn conv_stride2_gradients_match_finite_differences() {
        let mut l = Layer::Conv2d(Conv2d::new(1, 2, 3, 2, &mut rng()));
        grad_check(&mut l, &[1, 8, 8]);
    }

    #[test]
    fn pool_known_answer() {
        let x = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.0, 9.0,
            ],
        );
        let y = Layer::MaxPool2d(MaxPool2d { size: 2 }).forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 9.0]);
    }

    #[test]
    fn pool_gradients_route_to_argmax() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]);
        let l = Layer::MaxPool2d(MaxPool2d { size: 2 });
        let gout = Tensor::from_vec(&[1, 1, 1], vec![7.0]);
        let (gin, _) = l.backward(&x, &gout);
        assert_eq!(gin.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_gradients_match_finite_differences() {
        let mut l = Layer::MaxPool2d(MaxPool2d { size: 2 });
        grad_check(&mut l, &[3, 6, 6]);
    }

    #[test]
    fn relu_clamps_and_gates() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let l = Layer::Relu;
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let gout = Tensor::from_vec(&[4], vec![1.0, 1.0, 1.0, 1.0]);
        let (gin, _) = l.backward(&x, &gout);
        assert_eq!(gin.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let l = Layer::Flatten;
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[24]);
        let (gin, _) = l.backward(&x, &Tensor::zeros(&[24]));
        assert_eq!(gin.shape(), &[2, 3, 4]);
    }

    #[test]
    fn dense_known_answer() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.weight = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        d.bias = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = Layer::Dense(d).forward(&Tensor::from_vec(&[2], vec![1.0, -1.0]));
        assert_eq!(y.data(), &[9.0, 19.0]);
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut l = Layer::Dense(Dense::new(10, 4, &mut rng()));
        grad_check(&mut l, &[10]);
    }

    #[test]
    fn out_shapes_chain_like_figure_10() {
        // The paper's tower on a 128x128 input: 64x64x16 -> 16x16x32 ->
        // 4x4x64 -> 1024.
        let mut r = rng();
        let layers = vec![
            Layer::Conv2d(Conv2d::new(1, 16, 3, 1, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Conv2d(Conv2d::new(16, 32, 3, 2, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Conv2d(Conv2d::new(32, 64, 3, 2, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Flatten,
        ];
        let mut shape = vec![1, 128, 128];
        let mut waypoints = Vec::new();
        for l in &layers {
            shape = l.out_shape(&shape);
            waypoints.push(shape.clone());
        }
        assert_eq!(waypoints[2], vec![16, 64, 64]);
        assert_eq!(waypoints[5], vec![32, 16, 16]);
        assert_eq!(waypoints[8], vec![64, 4, 4]);
        assert_eq!(waypoints[9], vec![1024]);
    }

    #[test]
    fn describe_is_informative() {
        let c = Layer::Conv2d(Conv2d::new(1, 16, 3, 1, &mut rng()));
        assert_eq!(c.describe(), "CONV(3x3x16, stride 1)");
        assert_eq!(Layer::Relu.describe(), "ReLU");
    }
}
