//! Network layers: convolution, max-pooling, ReLU, flatten, dense.
//!
//! Layers are an enum (not trait objects) so whole networks serialise
//! with serde and clone cheaply. Forward passes are *stateless*: the
//! training loop keeps each layer's input and hands it back to
//! [`Layer::backward`], so one network value can serve interleaved
//! forward/backward calls without hidden per-layer caches. Training
//! runs fully batched — one activation-gradient GEMM and one
//! weight-gradient GEMM per layer per mini-batch, with the batch
//! reduction fused into the weight-gradient product.
//!
//! Convolution and dense layers evaluate through the [`crate::gemm`]
//! compute core (im2col + blocked `sgemm`); the original naive loops
//! survive as `forward_reference` / `backward_reference` so
//! equivalence tests and the gradient checker pin the fast path to
//! them. [`Layer::forward_batch`] packs many samples into a single
//! GEMM per layer for batched inference.

use crate::gemm::{self, Trans};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// 2-D convolution with square kernels and "same"-style zero padding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (number of filters).
    pub out_ch: usize,
    /// Kernel edge length.
    pub ksize: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each border (`(ksize - 1) / 2` keeps size at
    /// stride 1).
    pub pad: usize,
    /// Filter weights, shape `[out_ch, in_ch, ksize, ksize]`.
    pub weight: Tensor,
    /// Per-filter bias, shape `[out_ch]`.
    pub bias: Tensor,
}

impl Conv2d {
    /// He-initialised convolution.
    pub fn new(in_ch: usize, out_ch: usize, ksize: usize, stride: usize, rng: &mut StdRng) -> Self {
        let fan_in = (in_ch * ksize * ksize) as f64;
        let dist = Normal::new(0.0, (2.0 / fan_in).sqrt()).expect("positive std");
        let weight = Tensor::from_vec(
            &[out_ch, in_ch, ksize, ksize],
            (0..out_ch * in_ch * ksize * ksize)
                .map(|_| dist.sample(rng) as f32)
                .collect(),
        );
        Self {
            in_ch,
            out_ch,
            ksize,
            stride,
            pad: (ksize - 1) / 2,
            weight,
            bias: Tensor::zeros(&[out_ch]),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        gemm::conv_out_hw(h, w, self.ksize, self.stride, self.pad)
    }

    /// GEMM-backed forward pass: lower the input with im2col, then one
    /// `weight [out_ch, c*k*k] . col [c*k*k, oh*ow]` product on top of
    /// the broadcast bias.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let l = oh * ow;
        let k2c = self.in_ch * self.ksize * self.ksize;
        let mut out = vec![0.0f32; self.out_ch * l];
        for (oc, &bv) in self.bias.data().iter().enumerate() {
            out[oc * l..(oc + 1) * l].fill(bv);
        }
        gemm::with_scratch(|s| {
            s.col.resize(k2c * l, 0.0);
            gemm::im2col_into(
                x.data(),
                c,
                h,
                w,
                self.ksize,
                self.stride,
                self.pad,
                &mut s.col,
                l,
                0,
            );
            gemm::sgemm(
                self.out_ch,
                l,
                k2c,
                1.0,
                self.weight.data(),
                Trans::No,
                &s.col,
                Trans::No,
                1.0,
                &mut out,
            );
        });
        Tensor::from_vec(&[self.out_ch, oh, ow], out)
    }

    /// Batched forward pass: every sample's im2col block lands side by
    /// side in one `[c*k*k, N*oh*ow]` matrix, so the whole batch is a
    /// single GEMM against the filter bank.
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        unpack_batch(&self.forward_batch_packed(xs))
    }

    /// Batched forward pass from per-sample `[c, h, w]` tensors
    /// straight into the packed `[out_ch, n, oh, ow]` layout (see
    /// [`pack_batch`]): the batched GEMM's output rows already hold
    /// each channel's per-sample planes side by side, so producing the
    /// packed layout is free. This is the entry point of the packed
    /// inference path — the first convolution lowers per-sample inputs
    /// without materialising a packed copy of them first.
    pub fn forward_batch_packed(&self, xs: &[Tensor]) -> Tensor {
        let mut out = Vec::new();
        let shape =
            gemm::with_scratch(|s| self.forward_batch_packed_into(xs, &mut s.col, &mut out));
        Tensor::from_vec(&shape, out)
    }

    /// Buffer-level core of [`Self::forward_batch_packed`]: lowers the
    /// samples into the recycled im2col scratch `col` and GEMMs into
    /// `out` (grown, never shrunk — only the returned
    /// `[out_ch, n, oh, ow]` extent is meaningful). The batched
    /// inference walk recycles both buffers across layers and batches
    /// to keep their pages warm.
    pub(crate) fn forward_batch_packed_into(
        &self,
        xs: &[Tensor],
        col: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) -> [usize; 4] {
        let [c, h, w] = *xs[0].shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", xs[0].shape())
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        for x in xs {
            assert_eq!(x.shape(), xs[0].shape(), "batch shape mismatch");
        }
        let (oh, ow) = self.out_hw(h, w);
        let l = oh * ow;
        let nl = xs.len() * l;
        let k2c = self.in_ch * self.ksize * self.ksize;
        if col.len() < k2c * nl {
            col.resize(k2c * nl, 0.0);
        }
        for (si, x) in xs.iter().enumerate() {
            gemm::im2col_into(
                x.data(),
                c,
                h,
                w,
                self.ksize,
                self.stride,
                self.pad,
                col,
                nl,
                si * l,
            );
        }
        self.gemm_packed(xs.len(), oh, ow, col, out)
    }

    /// Forward pass on a packed `[c, n, h, w]` batch (see
    /// [`pack_batch`]): one GEMM produces the `[out_ch, n, oh, ow]`
    /// output directly in the same layout, so stacks of convolutional
    /// layers hand the batch along without any per-sample unpacking.
    pub fn forward_packed(&self, x: &Tensor) -> Tensor {
        let [_, n, h, w] = *x.shape() else {
            panic!("packed Conv2d expects [c, n, h, w], got {:?}", x.shape())
        };
        let mut out = Vec::new();
        let shape = gemm::with_scratch(|s| {
            self.forward_packed_into(x.data(), n, h, w, &mut s.col, &mut out)
        });
        Tensor::from_vec(&shape, out)
    }

    /// Buffer-level core of [`Self::forward_packed`]; buffer contract
    /// as in [`Self::forward_batch_packed_into`].
    pub(crate) fn forward_packed_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        col: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) -> [usize; 4] {
        assert_eq!(
            x.len(),
            self.in_ch * n * h * w,
            "packed batch shape mismatch"
        );
        let (oh, ow) = self.out_hw(h, w);
        let nl = n * oh * ow;
        let k2c = self.in_ch * self.ksize * self.ksize;
        if col.len() < k2c * nl {
            col.resize(k2c * nl, 0.0);
        }
        gemm::im2col_packed_into(
            x,
            self.in_ch,
            n,
            h,
            w,
            self.ksize,
            self.stride,
            self.pad,
            col,
        );
        self.gemm_packed(n, oh, ow, col, out)
    }

    /// Bias-prefills `out` and multiplies the filter bank against the
    /// already-lowered `col` matrix. Shared tail of the packed forward
    /// variants.
    fn gemm_packed(
        &self,
        n: usize,
        oh: usize,
        ow: usize,
        col: &[f32],
        out: &mut Vec<f32>,
    ) -> [usize; 4] {
        let nl = n * oh * ow;
        let k2c = self.in_ch * self.ksize * self.ksize;
        if out.len() < self.out_ch * nl {
            out.resize(self.out_ch * nl, 0.0);
        }
        let od = &mut out[..self.out_ch * nl];
        for (oc, &bv) in self.bias.data().iter().enumerate() {
            od[oc * nl..(oc + 1) * nl].fill(bv);
        }
        gemm::sgemm(
            self.out_ch,
            nl,
            k2c,
            1.0,
            self.weight.data(),
            Trans::No,
            &col[..k2c * nl],
            Trans::No,
            1.0,
            od,
        );
        [self.out_ch, n, oh, ow]
    }

    /// Naive 7-loop forward pass, kept as the correctness reference
    /// for the GEMM path (equivalence-tested in `tests/proptest_nn.rs`
    /// and benchmarked in `nn_kernels`).
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let k = self.ksize;
        let mut out = Tensor::zeros(&[self.out_ch, oh, ow]);
        let xd = x.data();
        let wd = self.weight.data();
        let bd = self.bias.data();
        let od = out.data_mut();
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bd[oc];
                    for ic in 0..c {
                        let wbase = ((oc * c + ic) * k) * k;
                        let xbase = ic * h * w;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = xbase + iy as usize * w;
                            let wrow = wbase + ky * k;
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += xd[xrow + ix as usize] * wd[wrow + kx];
                            }
                        }
                    }
                    od[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    /// GEMM-backed backward pass over the im2col lowering:
    /// `gW = gout . col^T`, `gcol = W^T . gout`, `gin = col2im(gcol)`,
    /// `gb` = per-filter row sums of `gout`.
    pub fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        debug_assert_eq!(gout.shape(), &[self.out_ch, oh, ow]);
        let l = oh * ow;
        let k2c = self.in_ch * self.ksize * self.ksize;
        let god = gout.data();
        let mut gin = Tensor::zeros(x.shape());
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gb = Tensor::zeros(self.bias.shape());
        for (oc, gv) in gb.data_mut().iter_mut().enumerate() {
            *gv = god[oc * l..(oc + 1) * l].iter().sum();
        }
        gemm::with_scratch(|s| {
            s.col.resize(k2c * l, 0.0);
            gemm::im2col_into(
                x.data(),
                c,
                h,
                w,
                self.ksize,
                self.stride,
                self.pad,
                &mut s.col,
                l,
                0,
            );
            gemm::sgemm(
                self.out_ch,
                k2c,
                l,
                1.0,
                god,
                Trans::No,
                &s.col,
                Trans::Yes,
                0.0,
                gw.data_mut(),
            );
            s.aux.resize(k2c * l, 0.0);
            gemm::sgemm(
                k2c,
                l,
                self.out_ch,
                1.0,
                self.weight.data(),
                Trans::Yes,
                god,
                Trans::No,
                0.0,
                &mut s.aux,
            );
            gemm::col2im_into(
                &s.aux,
                c,
                h,
                w,
                self.ksize,
                self.stride,
                self.pad,
                gin.data_mut(),
                l,
                0,
            );
        });
        (gin, vec![gw, gb])
    }

    /// Batched backward pass on the packed `[c, n, h, w]` layout: one
    /// GEMM for the weight gradient with the batch reduction fused into
    /// its inner dimension (`gW [out_ch, c*k*k] = gout [out_ch, n*oh*ow]
    /// . col^T`), and — when `gin` is wanted — one GEMM plus a packed
    /// col2im scatter for the input gradient. `col` is the im2col
    /// lowering of this layer's packed input, reused from the forward
    /// pass instead of being recomputed. `gw`/`gb` are overwritten;
    /// `aux` is recycled scratch; `gin` is grown, never shrunk, and
    /// only its `[in_ch, n, h, w]` extent is meaningful.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_packed_into(
        &self,
        n: usize,
        h: usize,
        w: usize,
        gout: &[f32],
        col: &[f32],
        aux: &mut Vec<f32>,
        gin: Option<&mut Vec<f32>>,
        gw: &mut Tensor,
        gb: &mut Tensor,
    ) {
        let (oh, ow) = self.out_hw(h, w);
        let nl = n * oh * ow;
        let k2c = self.in_ch * self.ksize * self.ksize;
        assert!(col.len() >= k2c * nl, "im2col buffer too small");
        assert_eq!(gout.len(), self.out_ch * nl, "packed gout mismatch");
        for (oc, gv) in gb.data_mut().iter_mut().enumerate() {
            *gv = gemm::lane_sum(&gout[oc * nl..(oc + 1) * nl]);
        }
        gemm::sgemm(
            self.out_ch,
            k2c,
            nl,
            1.0,
            gout,
            Trans::No,
            &col[..k2c * nl],
            Trans::Yes,
            0.0,
            gw.data_mut(),
        );
        if let Some(gin) = gin {
            if aux.len() < k2c * nl {
                aux.resize(k2c * nl, 0.0);
            }
            gemm::sgemm(
                k2c,
                nl,
                self.out_ch,
                1.0,
                self.weight.data(),
                Trans::Yes,
                gout,
                Trans::No,
                0.0,
                &mut aux[..k2c * nl],
            );
            let vol = self.in_ch * n * h * w;
            if gin.len() < vol {
                gin.resize(vol, 0.0);
            }
            gin[..vol].fill(0.0);
            gemm::col2im_packed_into(
                &aux[..k2c * nl],
                self.in_ch,
                n,
                h,
                w,
                self.ksize,
                self.stride,
                self.pad,
                &mut gin[..vol],
            );
        }
    }

    /// Naive backward pass, the correctness reference for
    /// [`Self::backward`].
    pub fn backward_reference(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        let [c, h, w] = *x.shape() else {
            panic!("Conv2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        debug_assert_eq!(gout.shape(), &[self.out_ch, oh, ow]);
        let k = self.ksize;
        let mut gin = Tensor::zeros(x.shape());
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gb = Tensor::zeros(self.bias.shape());
        let xd = x.data();
        let wd = self.weight.data();
        let god = gout.data();
        let gind = gin.data_mut();
        let gwd = gw.data_mut();
        let gbd = gb.data_mut();
        for oc in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = god[(oc * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    gbd[oc] += g;
                    for ic in 0..c {
                        let wbase = ((oc * c + ic) * k) * k;
                        let xbase = ic * h * w;
                        for ky in 0..k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = xbase + iy as usize * w;
                            let wrow = wbase + ky * k;
                            for kx in 0..k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                gwd[wrow + kx] += g * xd[xrow + ix as usize];
                                gind[xrow + ix as usize] += g * wd[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
        (gin, vec![gw, gb])
    }
}

/// Non-overlapping max pooling (`size == stride`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Pooling window edge (and stride).
    pub size: usize,
}

impl MaxPool2d {
    /// Output extent: floor division, but never below 1 — windows at
    /// the border (or on inputs smaller than the window) are clamped.
    pub(crate) fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h.saturating_sub(self.size) / self.size) + 1,
            (w.saturating_sub(self.size) / self.size) + 1,
        )
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("MaxPool2d expects [c, h, w], got {:?}", x.shape())
        };
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        self.pool_planes(x.data(), c, h, w, out.data_mut());
        out
    }

    /// Pools `planes` independent `[h, w]` planes from `xd` into `od`.
    /// The planes of a packed `[c, n, h, w]` batch are pooled exactly
    /// like the channels of a single `[c, h, w]` sample, so both the
    /// single and packed forward passes share this body.
    pub(crate) fn pool_planes(
        &self,
        xd: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        od: &mut [f32],
    ) {
        let (oh, ow) = self.out_hw(h, w);
        let s = self.size;
        if s == 2 && 2 * oh <= h && 2 * ow <= w {
            // Every window sits fully inside the plane, so the border
            // clamping below is dead weight: take the four candidates
            // branch-free, in the same ky/kx scan order (`>` keeps the
            // first maximum, bit-identical to the general path).
            let keep = |acc: f32, v: f32| if v > acc { v } else { acc };
            for ch in 0..planes {
                let plane = &xd[ch * h * w..][..h * w];
                for oy in 0..oh {
                    let r0 = &plane[2 * oy * w..][..w];
                    let r1 = &plane[(2 * oy + 1) * w..][..w];
                    let orow = &mut od[(ch * oh + oy) * ow..][..ow];
                    for (o, (p0, p1)) in orow
                        .iter_mut()
                        .zip(r0.chunks_exact(2).zip(r1.chunks_exact(2)))
                    {
                        let m = keep(keep(f32::NEG_INFINITY, p0[0]), p0[1]);
                        *o = keep(keep(m, p1[0]), p1[1]);
                    }
                }
            }
            return;
        }
        for ch in 0..planes {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in oy * self.size..(oy * self.size + self.size).min(h) {
                        for kx in ox * self.size..(ox * self.size + self.size).min(w) {
                            let v = xd[(ch * h + ky) * w + kx];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    od[(ch * oh + oy) * ow + ox] = best;
                }
            }
        }
    }

    /// [`Self::pool_planes`] plus the winning input index of every
    /// window (absolute within `xd`), in the same scan order with the
    /// same first-maximum tie rule — outputs are bit-identical. The
    /// cached batched path stores `idx` so its backward pass scatters
    /// directly instead of rescanning every window.
    pub(crate) fn pool_planes_indexed(
        &self,
        xd: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        od: &mut [f32],
        idx: &mut [u32],
    ) {
        let (oh, ow) = self.out_hw(h, w);
        debug_assert_eq!(od.len(), planes * oh * ow);
        debug_assert_eq!(idx.len(), planes * oh * ow);
        if self.size == 2 && 2 * oh <= h && 2 * ow <= w {
            for ch in 0..planes {
                let pb = ch * h * w;
                for oy in 0..oh {
                    let y0 = 2 * oy;
                    for ox in 0..ow {
                        let i0 = pb + y0 * w + 2 * ox;
                        let (i1, i2) = (i0 + 1, i0 + w);
                        let i3 = i2 + 1;
                        let (mut bv, mut bi) = (xd[i0], i0);
                        if xd[i1] > bv {
                            (bv, bi) = (xd[i1], i1);
                        }
                        if xd[i2] > bv {
                            (bv, bi) = (xd[i2], i2);
                        }
                        if xd[i3] > bv {
                            (bv, bi) = (xd[i3], i3);
                        }
                        let o = (ch * oh + oy) * ow + ox;
                        od[o] = bv;
                        idx[o] = bi as u32;
                    }
                }
            }
            return;
        }
        for ch in 0..planes {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = 0usize;
                    for ky in oy * self.size..(oy * self.size + self.size).min(h) {
                        for kx in ox * self.size..(ox * self.size + self.size).min(w) {
                            let i = (ch * h + ky) * w + kx;
                            if xd[i] > best {
                                best = xd[i];
                                arg = i;
                            }
                        }
                    }
                    let o = (ch * oh + oy) * ow + ox;
                    od[o] = best;
                    idx[o] = arg as u32;
                }
            }
        }
    }

    /// Scatter the output gradient onto the argmax indices recorded by
    /// [`Self::pool_planes_indexed`]. `gind` is overwritten; the
    /// accumulation order matches [`Self::unpool_planes`] exactly.
    pub(crate) fn unpool_indexed(&self, god: &[f32], idx: &[u32], gind: &mut [f32]) {
        debug_assert_eq!(god.len(), idx.len());
        gind.fill(0.0);
        for (&i, &g) in idx.iter().zip(god) {
            gind[i as usize] += g;
        }
    }

    /// [`Self::unpool_indexed`] with a fused ReLU gate: when the pool
    /// consumes a ReLU's output, a window's max is zero exactly when
    /// the ReLU input at its argmax was non-positive, so gating on the
    /// *pooled* value while scattering replaces the separate
    /// full-resolution gate pass over the ReLU layer (which becomes a
    /// no-op on the already-gated gradient).
    pub(crate) fn unpool_indexed_gated(
        &self,
        god: &[f32],
        idx: &[u32],
        pooled: &[f32],
        gind: &mut [f32],
    ) {
        debug_assert_eq!(god.len(), idx.len());
        debug_assert_eq!(god.len(), pooled.len());
        gind.fill(0.0);
        for ((&i, &g), &p) in idx.iter().zip(god).zip(pooled) {
            gind[i as usize] += if p > 0.0 { g } else { 0.0 };
        }
    }

    fn backward(&self, x: &Tensor, gout: &Tensor) -> Tensor {
        let [c, h, w] = *x.shape() else {
            panic!("MaxPool2d expects [c, h, w], got {:?}", x.shape())
        };
        debug_assert_eq!(gout.len(), {
            let (oh, ow) = self.out_hw(h, w);
            c * oh * ow
        });
        let mut gin = Tensor::zeros(x.shape());
        self.unpool_planes(x.data(), c, h, w, gout.data(), gin.data_mut());
        gin
    }

    /// Routes each output gradient back to its window's argmax over
    /// `planes` independent `[h, w]` planes — the backward twin of
    /// [`Self::pool_planes`], shared by the per-sample and the packed
    /// `[c, n, h, w]` batched paths. `gind` is overwritten.
    pub(crate) fn unpool_planes(
        &self,
        xd: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        god: &[f32],
        gind: &mut [f32],
    ) {
        let (oh, ow) = self.out_hw(h, w);
        debug_assert_eq!(gind.len(), planes * h * w);
        debug_assert_eq!(god.len(), planes * oh * ow);
        gind.fill(0.0);
        for ch in 0..planes {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Recompute the argmax; the first maximum wins ties,
                    // matching the forward pass exactly.
                    let mut best = f32::NEG_INFINITY;
                    let mut arg = 0usize;
                    for ky in oy * self.size..(oy * self.size + self.size).min(h) {
                        for kx in ox * self.size..(ox * self.size + self.size).min(w) {
                            let idx = (ch * h + ky) * w + kx;
                            if xd[idx] > best {
                                best = xd[idx];
                                arg = idx;
                            }
                        }
                    }
                    gind[arg] += god[(ch * oh + oy) * ow + ox];
                }
            }
        }
    }
}

/// Fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Weights, shape `[out_dim, in_dim]`.
    pub weight: Tensor,
    /// Bias, shape `[out_dim]`.
    pub bias: Tensor,
}

impl Dense {
    /// He-initialised dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let dist = Normal::new(0.0, (2.0 / in_dim as f64).sqrt()).expect("positive std");
        Self {
            in_dim,
            out_dim,
            weight: Tensor::from_vec(
                &[out_dim, in_dim],
                (0..out_dim * in_dim)
                    .map(|_| dist.sample(rng) as f32)
                    .collect(),
            ),
            bias: Tensor::zeros(&[out_dim]),
        }
    }

    /// GEMM-backed forward pass: `y = W . x + b` through the `n == 1`
    /// matvec fast path of [`gemm::sgemm`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "Dense input width mismatch");
        let mut out = self.bias.data().to_vec();
        gemm::sgemm(
            self.out_dim,
            1,
            self.in_dim,
            1.0,
            self.weight.data(),
            Trans::No,
            x.data(),
            Trans::No,
            1.0,
            &mut out,
        );
        Tensor::from_vec(&[self.out_dim], out)
    }

    /// Batched forward pass: rows of `X [N, in_dim]` are the samples,
    /// so the whole batch is one `Y = X . W^T + b` product.
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        let nb = xs.len();
        let mut xmat = vec![0.0f32; nb * self.in_dim];
        for (x, row) in xs.iter().zip(xmat.chunks_mut(self.in_dim)) {
            assert_eq!(x.len(), self.in_dim, "Dense input width mismatch");
            row.copy_from_slice(x.data());
        }
        let mut y = Vec::new();
        self.forward_rows_into(&xmat, nb, &mut y);
        y[..nb * self.out_dim]
            .chunks(self.out_dim)
            .map(|row| Tensor::from_vec(&[self.out_dim], row.to_vec()))
            .collect()
    }

    /// Buffer-level batched forward pass: `Y [nb, out_dim] = X
    /// [nb, in_dim] . W^T + b` in one GEMM. `y` is grown, never shrunk;
    /// only the `[nb, out_dim]` extent is meaningful.
    pub(crate) fn forward_rows_into(&self, x: &[f32], nb: usize, y: &mut Vec<f32>) {
        assert_eq!(x.len(), nb * self.in_dim, "Dense row-matrix mismatch");
        if y.len() < nb * self.out_dim {
            y.resize(nb * self.out_dim, 0.0);
        }
        let yd = &mut y[..nb * self.out_dim];
        for row in yd.chunks_mut(self.out_dim) {
            row.copy_from_slice(self.bias.data());
        }
        gemm::sgemm(
            nb,
            self.out_dim,
            self.in_dim,
            1.0,
            x,
            Trans::No,
            self.weight.data(),
            Trans::Yes,
            1.0,
            yd,
        );
    }

    /// Buffer-level batched backward pass over `[nb, dim]` row
    /// matrices: the weight gradient is a single `gW = gout^T . X` GEMM
    /// with the batch reduction fused into its inner dimension, the
    /// bias gradient is the column sum of `gout`, and — when wanted —
    /// the input gradient is `gin = gout . W`. `gw`/`gb` are
    /// overwritten; `gin` is grown, never shrunk.
    pub(crate) fn backward_rows_into(
        &self,
        x: &[f32],
        nb: usize,
        gout: &[f32],
        gin: Option<&mut Vec<f32>>,
        gw: &mut Tensor,
        gb: &mut Tensor,
    ) {
        assert_eq!(x.len(), nb * self.in_dim, "Dense row-matrix mismatch");
        assert_eq!(gout.len(), nb * self.out_dim, "Dense gout mismatch");
        gemm::sgemm(
            self.out_dim,
            self.in_dim,
            nb,
            1.0,
            gout,
            Trans::Yes,
            x,
            Trans::No,
            0.0,
            gw.data_mut(),
        );
        let gbd = gb.data_mut();
        gbd.fill(0.0);
        for grow in gout.chunks(self.out_dim) {
            for (gv, &g) in gbd.iter_mut().zip(grow) {
                *gv += g;
            }
        }
        if let Some(gin) = gin {
            if gin.len() < nb * self.in_dim {
                gin.resize(nb * self.in_dim, 0.0);
            }
            gemm::sgemm(
                nb,
                self.in_dim,
                self.out_dim,
                1.0,
                gout,
                Trans::No,
                self.weight.data(),
                Trans::No,
                0.0,
                &mut gin[..nb * self.in_dim],
            );
        }
    }

    /// Naive matvec forward pass, the correctness reference for
    /// [`Self::forward`].
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "Dense input width mismatch");
        let xd = x.data();
        let wd = self.weight.data();
        let bd = self.bias.data();
        let mut out = vec![0.0f32; self.out_dim];
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &wd[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = bd[o];
            for (wv, xv) in row.iter().zip(xd) {
                acc += wv * xv;
            }
            *out_v = acc;
        }
        Tensor::from_vec(&[self.out_dim], out)
    }

    /// GEMM-backed backward pass: the rank-1 update `gW = gout . x^T`
    /// and the transposed matvec `gin = W^T . gout`.
    pub fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        debug_assert_eq!(gout.len(), self.out_dim);
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gin = Tensor::zeros(x.shape());
        gemm::sgemm(
            self.out_dim,
            self.in_dim,
            1,
            1.0,
            gout.data(),
            Trans::No,
            x.data(),
            Trans::No,
            0.0,
            gw.data_mut(),
        );
        gemm::sgemm(
            self.in_dim,
            1,
            self.out_dim,
            1.0,
            self.weight.data(),
            Trans::Yes,
            gout.data(),
            Trans::No,
            0.0,
            gin.data_mut(),
        );
        let gb = Tensor::from_vec(&[self.out_dim], gout.data().to_vec());
        (gin, vec![gw, gb])
    }

    /// Naive backward pass, the correctness reference for
    /// [`Self::backward`].
    pub fn backward_reference(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        debug_assert_eq!(gout.len(), self.out_dim);
        let xd = x.data();
        let god = gout.data();
        let wd = self.weight.data();
        let mut gw = Tensor::zeros(self.weight.shape());
        let mut gin = Tensor::zeros(x.shape());
        {
            let gwd = gw.data_mut();
            let gind = gin.data_mut();
            for (o, &g) in god.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let row = o * self.in_dim;
                for i in 0..self.in_dim {
                    gwd[row + i] += g * xd[i];
                    gind[i] += g * wd[row + i];
                }
            }
        }
        let gb = Tensor::from_vec(&[self.out_dim], god.to_vec());
        (gin, vec![gw, gb])
    }
}

/// One network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Non-overlapping max pooling.
    MaxPool2d(MaxPool2d),
    /// Rectified linear unit.
    Relu,
    /// Reshape `[c, h, w]` to a flat vector.
    Flatten,
    /// Fully connected.
    Dense(Dense),
}

impl Layer {
    /// Forward pass (stateless).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.forward(x),
            Layer::MaxPool2d(l) => l.forward(x),
            Layer::Relu => {
                let mut out = x.clone();
                // Written as a select, not a conditional store: random-
                // sign activations make the branch unpredictable, and
                // the select form vectorises.
                for v in out.data_mut() {
                    *v = if *v < 0.0 { 0.0 } else { *v };
                }
                out
            }
            Layer::Flatten => x.clone().reshape(&[x.len()]),
            Layer::Dense(l) => l.forward(x),
        }
    }

    /// Batched forward pass over same-shaped inputs. Convolution and
    /// dense layers fuse the batch into a single GEMM; the cheap
    /// elementwise/pooling layers map over the samples.
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        match self {
            Layer::Conv2d(l) => l.forward_batch(xs),
            Layer::Dense(l) => l.forward_batch(xs),
            _ => xs.iter().map(|x| self.forward(x)).collect(),
        }
    }

    /// Forward pass on a packed `[c, n, h, w]` batch (see
    /// [`pack_batch`]). Returns `None` for layers that need per-sample
    /// tensors (`Flatten`, `Dense`) — the caller unpacks there and
    /// continues sample-wise.
    pub fn forward_packed(&self, x: &Tensor) -> Option<Tensor> {
        match self {
            Layer::Conv2d(l) => Some(l.forward_packed(x)),
            Layer::MaxPool2d(l) => {
                let [c, n, h, w] = *x.shape() else {
                    panic!("packed MaxPool2d expects [c, n, h, w], got {:?}", x.shape())
                };
                let (oh, ow) = l.out_hw(h, w);
                let mut out = Tensor::zeros(&[c, n, oh, ow]);
                l.pool_planes(x.data(), c * n, h, w, out.data_mut());
                Some(out)
            }
            Layer::Relu => {
                let mut out = x.clone();
                // Select, not a conditional store — see `forward`.
                for v in out.data_mut() {
                    *v = if *v < 0.0 { 0.0 } else { *v };
                }
                Some(out)
            }
            Layer::Flatten | Layer::Dense(_) => None,
        }
    }

    /// Backward pass: gradient w.r.t. the layer input plus gradients
    /// w.r.t. each parameter tensor (aligned with [`Layer::params`]).
    pub fn backward(&self, x: &Tensor, gout: &Tensor) -> (Tensor, Vec<Tensor>) {
        match self {
            Layer::Conv2d(l) => l.backward(x, gout),
            Layer::MaxPool2d(l) => (l.backward(x, gout), Vec::new()),
            Layer::Relu => {
                let mut gin = gout.clone();
                // Select, not a conditional store — see `forward`.
                for (g, &v) in gin.data_mut().iter_mut().zip(x.data()) {
                    *g = if v <= 0.0 { 0.0 } else { *g };
                }
                (gin, Vec::new())
            }
            Layer::Flatten => (gout.clone().reshape(x.shape()), Vec::new()),
            Layer::Dense(l) => l.backward(x, gout),
        }
    }

    /// The layer's trainable parameter tensors.
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Conv2d(l) => vec![&l.weight, &l.bias],
            Layer::Dense(l) => vec![&l.weight, &l.bias],
            _ => Vec::new(),
        }
    }

    /// Mutable access to the parameter tensors.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Conv2d(l) => vec![&mut l.weight, &mut l.bias],
            Layer::Dense(l) => vec![&mut l.weight, &mut l.bias],
            _ => Vec::new(),
        }
    }

    /// Output shape for a given input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        match self {
            Layer::Conv2d(l) => {
                let [_, h, w] = *in_shape else {
                    panic!("Conv2d expects [c, h, w]")
                };
                let (oh, ow) = l.out_hw(h, w);
                vec![l.out_ch, oh, ow]
            }
            Layer::MaxPool2d(l) => {
                let [c, h, w] = *in_shape else {
                    panic!("MaxPool2d expects [c, h, w]")
                };
                let (oh, ow) = l.out_hw(h, w);
                vec![c, oh, ow]
            }
            Layer::Relu => in_shape.to_vec(),
            Layer::Flatten => vec![in_shape.iter().product()],
            Layer::Dense(l) => vec![l.out_dim],
        }
    }

    /// Non-panicking [`Self::out_shape`]: propagates a shape through
    /// the layer, reporting malformed chains (wrong rank, channel
    /// mismatches, kernels larger than their padded input, zero
    /// strides) as `Err` instead of panicking. This is what
    /// [`crate::network::Cnn::validate`] walks after deserialising a
    /// model, so the panics in the hot forward paths become
    /// load-time errors.
    pub fn try_out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        match self {
            Layer::Conv2d(l) => {
                let [c, h, w] = *in_shape else {
                    return Err(format!("Conv2d expects [c, h, w], got {in_shape:?}"));
                };
                if c != l.in_ch {
                    return Err(format!(
                        "Conv2d expects {} input channels, got {c}",
                        l.in_ch
                    ));
                }
                if l.stride == 0 {
                    return Err("Conv2d stride must be >= 1".into());
                }
                if l.ksize == 0 {
                    return Err("Conv2d kernel must be >= 1".into());
                }
                let span = |d: usize| {
                    d.checked_add(2 * l.pad)
                        .filter(|&p| p >= l.ksize)
                        .map(|p| (p - l.ksize) / l.stride + 1)
                };
                match (span(h), span(w)) {
                    (Some(oh), Some(ow)) => Ok(vec![l.out_ch, oh, ow]),
                    _ => Err(format!(
                        "Conv2d kernel {k}x{k} does not fit a {h}x{w} input with padding {p}",
                        k = l.ksize,
                        p = l.pad
                    )),
                }
            }
            Layer::MaxPool2d(l) => {
                let [c, h, w] = *in_shape else {
                    return Err(format!("MaxPool2d expects [c, h, w], got {in_shape:?}"));
                };
                if l.size == 0 {
                    return Err("MaxPool2d window must be >= 1".into());
                }
                let (oh, ow) = l.out_hw(h, w);
                Ok(vec![c, oh, ow])
            }
            Layer::Relu => Ok(in_shape.to_vec()),
            Layer::Flatten => {
                let mut vol = 1usize;
                for &d in in_shape {
                    vol = vol
                        .checked_mul(d)
                        .ok_or_else(|| format!("Flatten volume overflows on {in_shape:?}"))?;
                }
                Ok(vec![vol])
            }
            Layer::Dense(l) => {
                let vol: usize = in_shape.iter().product();
                if vol != l.in_dim {
                    return Err(format!(
                        "Dense expects input width {}, got {vol} (shape {in_shape:?})",
                        l.in_dim
                    ));
                }
                Ok(vec![l.out_dim])
            }
        }
    }

    /// Checks the layer's own parameter tensors: shape metadata
    /// consistent with the buffers, declared dimensions matching the
    /// weight shapes, and every value finite. Complements
    /// [`Self::try_out_shape`] (which checks how layers chain).
    pub fn validate_params(&self) -> Result<(), String> {
        let check = |name: &str, t: &Tensor, want: &[usize]| -> Result<(), String> {
            if !t.is_consistent() {
                return Err(format!(
                    "{name} tensor shape {:?} does not match its {} data elements",
                    t.shape(),
                    t.len()
                ));
            }
            if t.shape() != want {
                return Err(format!(
                    "{name} tensor has shape {:?}, expected {want:?}",
                    t.shape()
                ));
            }
            if !t.is_finite() {
                return Err(format!("{name} tensor holds non-finite values"));
            }
            Ok(())
        };
        match self {
            Layer::Conv2d(l) => {
                check(
                    "Conv2d weight",
                    &l.weight,
                    &[l.out_ch, l.in_ch, l.ksize, l.ksize],
                )?;
                check("Conv2d bias", &l.bias, &[l.out_ch])
            }
            Layer::Dense(l) => {
                check("Dense weight", &l.weight, &[l.out_dim, l.in_dim])?;
                check("Dense bias", &l.bias, &[l.out_dim])
            }
            _ => Ok(()),
        }
    }

    /// Human-readable description (used by `repro fig10`).
    pub fn describe(&self) -> String {
        match self {
            Layer::Conv2d(l) => format!(
                "CONV({k}x{k}x{oc}, stride {s})",
                k = l.ksize,
                oc = l.out_ch,
                s = l.stride
            ),
            Layer::MaxPool2d(l) => format!("POOL({0}x{0})", l.size),
            Layer::Relu => "ReLU".into(),
            Layer::Flatten => "Flatten".into(),
            Layer::Dense(l) => format!("Dense({} -> {})", l.in_dim, l.out_dim),
        }
    }
}

/// Grows `v` to at least `len` and returns the `[0, len)` window.
/// Shared convention of every recycled batch buffer: grow, never
/// shrink, and only the returned extent is meaningful.
pub(crate) fn ensure_len<T: Clone + Default>(v: &mut Vec<T>, len: usize) -> &mut [T] {
    if v.len() < len {
        v.resize(len, T::default());
    }
    &mut v[..len]
}

/// Packs `n` same-shaped `[c, h, w]` samples into the `[c, n, h, w]`
/// batch layout [`Layer::forward_packed`] consumes: channel `ic` of
/// sample `si` lands at plane `ic*n + si`, so every channel's per-
/// sample planes sit side by side and a convolution's batched GEMM
/// output is already in this layout. Returns `None` when the samples
/// are not 3-D images (dense-only stacks take the sample-wise path).
pub fn pack_batch(xs: &[Tensor]) -> Option<Tensor> {
    if !matches!(xs.first()?.shape(), [_, _, _]) {
        return None;
    }
    let mut d = Vec::new();
    let shape = pack_batch_into(xs, &mut d);
    Some(Tensor::from_vec(&shape, d))
}

/// Buffer-level core of [`pack_batch`] (the samples must already be
/// known to be 3-D). `out` is grown, never shrunk; only the returned
/// `[c, n, h, w]` extent is meaningful.
pub(crate) fn pack_batch_into(xs: &[Tensor], out: &mut Vec<f32>) -> [usize; 4] {
    let [c, h, w] = *xs[0].shape() else {
        panic!(
            "pack_batch expects [c, h, w] samples, got {:?}",
            xs[0].shape()
        )
    };
    let plane = h * w;
    let n = xs.len();
    if out.len() < c * n * plane {
        out.resize(c * n * plane, 0.0);
    }
    for (si, x) in xs.iter().enumerate() {
        assert_eq!(x.shape(), xs[0].shape(), "batch shape mismatch");
        for ic in 0..c {
            out[(ic * n + si) * plane..][..plane].copy_from_slice(&x.data()[ic * plane..][..plane]);
        }
    }
    [c, n, h, w]
}

/// Splits a packed `[c, n, h, w]` batch back into `n` per-sample
/// `[c, h, w]` tensors: the inverse of [`pack_batch`].
pub fn unpack_batch(x: &Tensor) -> Vec<Tensor> {
    let [c, n, h, w] = *x.shape() else {
        panic!("unpack_batch expects [c, n, h, w], got {:?}", x.shape())
    };
    unpack_planes(x.data(), c, n, h, w)
}

/// Buffer-level core of [`unpack_batch`].
pub(crate) fn unpack_planes(xd: &[f32], c: usize, n: usize, h: usize, w: usize) -> Vec<Tensor> {
    let plane = h * w;
    (0..n)
        .map(|si| {
            let mut d = vec![0.0f32; c * plane];
            for ic in 0..c {
                d[ic * plane..][..plane].copy_from_slice(&xd[(ic * n + si) * plane..][..plane]);
            }
            Tensor::from_vec(&[c, h, w], d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    /// Central-difference gradient check for a layer.
    fn grad_check(layer: &mut Layer, in_shape: &[usize]) {
        let mut r = rng();
        let dist = Normal::new(0.0, 1.0).unwrap();
        let vol: usize = in_shape.iter().product();
        let x = Tensor::from_vec(
            in_shape,
            (0..vol).map(|_| dist.sample(&mut r) as f32).collect(),
        );
        let out = layer.forward(&x);
        // Loss = weighted sum of outputs (fixed random weights), so
        // d(loss)/d(out) is just those weights.
        let loss_w: Vec<f32> = (0..out.len()).map(|_| dist.sample(&mut r) as f32).collect();
        let gout = Tensor::from_vec(out.shape(), loss_w.clone());
        let loss = |l: &Layer, x: &Tensor| -> f64 {
            l.forward(x)
                .data()
                .iter()
                .zip(&loss_w)
                .map(|(&o, &w)| (o * w) as f64)
                .sum()
        };

        let (gin, gparams) = layer.backward(&x, &gout);
        let eps = 1e-3f32;

        // Check input gradients on a sample of positions.
        for idx in (0..x.len()).step_by((x.len() / 17).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps as f64);
            let ana = gin.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
                "input grad at {idx}: numeric {num} vs analytic {ana}"
            );
        }

        // Check parameter gradients on a sample of positions. `p`
        // indexes the layer's params afresh each use because the layer
        // is mutated inside the loop, so a range loop is the shape.
        #[allow(clippy::needless_range_loop)]
        for p in 0..layer.params().len() {
            let plen = layer.params()[p].len();
            for idx in (0..plen).step_by((plen / 13).max(1)) {
                let orig = layer.params()[p].data()[idx];
                layer.params_mut()[p].data_mut()[idx] = orig + eps;
                let lp = loss(layer, &x);
                layer.params_mut()[p].data_mut()[idx] = orig - eps;
                let lm = loss(layer, &x);
                layer.params_mut()[p].data_mut()[idx] = orig;
                let num = (lp - lm) / (2.0 * eps as f64);
                let ana = gparams[p].data()[idx] as f64;
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
                    "param {p} grad at {idx}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn conv_known_answer() {
        // 1x3x3 input, single 3x3 identity-centre filter, stride 1:
        // output equals input (same padding).
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng());
        conv.weight = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        );
        conv.bias = Tensor::from_vec(&[1], vec![0.5]);
        let x = Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = Layer::Conv2d(conv).forward(&x);
        assert_eq!(y.shape(), &[1, 3, 3]);
        for (i, &v) in y.data().iter().enumerate() {
            assert_eq!(v, (i + 1) as f32 + 0.5);
        }
    }

    #[test]
    fn conv_stride_two_halves_size() {
        let conv = Conv2d::new(2, 4, 3, 2, &mut rng());
        let l = Layer::Conv2d(conv);
        assert_eq!(l.out_shape(&[2, 16, 16]), vec![4, 8, 8]);
        let x = Tensor::zeros(&[2, 16, 16]);
        assert_eq!(l.forward(&x).shape(), &[4, 8, 8]);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut l = Layer::Conv2d(Conv2d::new(2, 3, 3, 1, &mut rng()));
        grad_check(&mut l, &[2, 6, 6]);
    }

    #[test]
    fn conv_stride2_gradients_match_finite_differences() {
        let mut l = Layer::Conv2d(Conv2d::new(1, 2, 3, 2, &mut rng()));
        grad_check(&mut l, &[1, 8, 8]);
    }

    #[test]
    fn pool_known_answer() {
        let x = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.0, //
                -3.0, -4.0, 0.0, 9.0,
            ],
        );
        let y = Layer::MaxPool2d(MaxPool2d { size: 2 }).forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 9.0]);
    }

    #[test]
    fn pool_gradients_route_to_argmax() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]);
        let l = Layer::MaxPool2d(MaxPool2d { size: 2 });
        let gout = Tensor::from_vec(&[1, 1, 1], vec![7.0]);
        let (gin, _) = l.backward(&x, &gout);
        assert_eq!(gin.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_gradients_match_finite_differences() {
        let mut l = Layer::MaxPool2d(MaxPool2d { size: 2 });
        grad_check(&mut l, &[3, 6, 6]);
    }

    #[test]
    fn relu_clamps_and_gates() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let l = Layer::Relu;
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let gout = Tensor::from_vec(&[4], vec![1.0, 1.0, 1.0, 1.0]);
        let (gin, _) = l.backward(&x, &gout);
        assert_eq!(gin.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let l = Layer::Flatten;
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[24]);
        let (gin, _) = l.backward(&x, &Tensor::zeros(&[24]));
        assert_eq!(gin.shape(), &[2, 3, 4]);
    }

    #[test]
    fn dense_known_answer() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.weight = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        d.bias = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = Layer::Dense(d).forward(&Tensor::from_vec(&[2], vec![1.0, -1.0]));
        assert_eq!(y.data(), &[9.0, 19.0]);
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut l = Layer::Dense(Dense::new(10, 4, &mut rng()));
        grad_check(&mut l, &[10]);
    }

    #[test]
    fn out_shapes_chain_like_figure_10() {
        // The paper's tower on a 128x128 input: 64x64x16 -> 16x16x32 ->
        // 4x4x64 -> 1024.
        let mut r = rng();
        let layers = vec![
            Layer::Conv2d(Conv2d::new(1, 16, 3, 1, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Conv2d(Conv2d::new(16, 32, 3, 2, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Conv2d(Conv2d::new(32, 64, 3, 2, &mut r)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Flatten,
        ];
        let mut shape = vec![1, 128, 128];
        let mut waypoints = Vec::new();
        for l in &layers {
            shape = l.out_shape(&shape);
            waypoints.push(shape.clone());
        }
        assert_eq!(waypoints[2], vec![16, 64, 64]);
        assert_eq!(waypoints[5], vec![32, 16, 16]);
        assert_eq!(waypoints[8], vec![64, 4, 4]);
        assert_eq!(waypoints[9], vec![1024]);
    }

    fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
        let d = Normal::new(0.0, 1.0).unwrap();
        let vol: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..vol).map(|_| d.sample(rng) as f32).collect())
    }

    fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what} shape");
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                "{what}[{i}]: {g} vs {w}"
            );
        }
    }

    #[test]
    fn conv_gemm_path_matches_reference() {
        let mut r = rng();
        for &(in_ch, out_ch, stride, hw) in &[(1, 4, 1, 9), (2, 3, 2, 8), (3, 5, 1, 6)] {
            let conv = Conv2d::new(in_ch, out_ch, 3, stride, &mut r);
            let x = rand_tensor(&[in_ch, hw, hw], &mut r);
            assert_close(&conv.forward(&x), &conv.forward_reference(&x), "fwd");
            let gout = rand_tensor(conv.forward(&x).shape(), &mut r);
            let (gin, gp) = conv.backward(&x, &gout);
            let (gin_r, gp_r) = conv.backward_reference(&x, &gout);
            assert_close(&gin, &gin_r, "gin");
            assert_close(&gp[0], &gp_r[0], "gw");
            assert_close(&gp[1], &gp_r[1], "gb");
        }
    }

    #[test]
    fn dense_gemm_path_matches_reference() {
        let mut r = rng();
        let d = Dense::new(37, 11, &mut r);
        let x = rand_tensor(&[37], &mut r);
        assert_close(&d.forward(&x), &d.forward_reference(&x), "fwd");
        let gout = rand_tensor(&[11], &mut r);
        let (gin, gp) = d.backward(&x, &gout);
        let (gin_r, gp_r) = d.backward_reference(&x, &gout);
        assert_close(&gin, &gin_r, "gin");
        assert_close(&gp[0], &gp_r[0], "gw");
        assert_close(&gp[1], &gp_r[1], "gb");
    }

    #[test]
    fn conv_batched_forward_matches_single() {
        let mut r = rng();
        let conv = Conv2d::new(2, 4, 3, 2, &mut r);
        let xs: Vec<Tensor> = (0..5).map(|_| rand_tensor(&[2, 9, 9], &mut r)).collect();
        let batched = conv.forward_batch(&xs);
        assert_eq!(batched.len(), xs.len());
        for (x, got) in xs.iter().zip(&batched) {
            assert_close(got, &conv.forward(x), "batched conv");
        }
        assert!(conv.forward_batch(&[]).is_empty());
    }

    #[test]
    fn pack_unpack_batch_round_trips() {
        let mut r = rng();
        let xs: Vec<Tensor> = (0..4).map(|_| rand_tensor(&[3, 5, 6], &mut r)).collect();
        let packed = pack_batch(&xs).expect("3-D samples pack");
        assert_eq!(packed.shape(), &[3, 4, 5, 6]);
        for (orig, got) in xs.iter().zip(unpack_batch(&packed)) {
            assert_eq!(orig, &got, "pack/unpack must round-trip exactly");
        }
        // 1-D samples (dense-only stacks) are not packable.
        assert!(pack_batch(&[rand_tensor(&[7], &mut r)]).is_none());
    }

    #[test]
    fn packed_layer_walk_matches_per_sample_forward() {
        let mut r = rng();
        let conv = Conv2d::new(2, 4, 3, 1, &mut r);
        let xs: Vec<Tensor> = (0..5).map(|_| rand_tensor(&[2, 8, 8], &mut r)).collect();
        // Conv entry from per-sample tensors lands in the packed
        // layout; pool/relu keep it; results match sample-wise runs.
        let mut packed = conv.forward_batch_packed(&xs);
        let single = conv.forward(&xs[0]);
        assert_eq!(
            packed.shape(),
            &[single.shape()[0], 5, single.shape()[1], single.shape()[2]],
            "packed output shape interleaves the batch dimension"
        );
        let pipeline = [Layer::Relu, Layer::MaxPool2d(MaxPool2d { size: 2 })];
        for layer in &pipeline {
            packed = layer.forward_packed(&packed).expect("packable layer");
        }
        let mut want: Vec<Tensor> = xs.iter().map(|x| conv.forward(x)).collect();
        for layer in &pipeline {
            want = want.iter().map(|x| layer.forward(x)).collect();
        }
        for (w, got) in want.iter().zip(unpack_batch(&packed)) {
            assert_eq!(w, &got, "packed walk must match per-sample layers exactly");
        }
        // Conv2d::forward_packed consumes the packed layout directly.
        let repacked = pack_batch(&xs).unwrap();
        for (w, got) in xs
            .iter()
            .map(|x| conv.forward(x))
            .zip(unpack_batch(&conv.forward_packed(&repacked)))
        {
            assert_eq!(
                &w, &got,
                "packed conv must match single-sample conv exactly"
            );
        }
    }

    #[test]
    fn dense_batched_forward_matches_single() {
        let mut r = rng();
        let d = Dense::new(24, 7, &mut r);
        let xs: Vec<Tensor> = (0..9).map(|_| rand_tensor(&[24], &mut r)).collect();
        let batched = d.forward_batch(&xs);
        assert_eq!(batched.len(), xs.len());
        for (x, got) in xs.iter().zip(&batched) {
            assert_close(got, &d.forward(x), "batched dense");
        }
        assert!(d.forward_batch(&[]).is_empty());
    }

    #[test]
    fn layer_forward_batch_maps_elementwise_layers() {
        let mut r = rng();
        let xs: Vec<Tensor> = (0..3).map(|_| rand_tensor(&[2, 4, 4], &mut r)).collect();
        for layer in [
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { size: 2 }),
            Layer::Flatten,
        ] {
            let batched = layer.forward_batch(&xs);
            for (x, got) in xs.iter().zip(&batched) {
                assert_eq!(got, &layer.forward(x));
            }
        }
    }

    #[test]
    fn describe_is_informative() {
        let c = Layer::Conv2d(Conv2d::new(1, 16, 3, 1, &mut rng()));
        assert_eq!(c.describe(), "CONV(3x3x16, stride 1)");
        assert_eq!(Layer::Relu.describe(), "ReLU");
    }
}
