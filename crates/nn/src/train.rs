//! Mini-batch training loop over the batched GEMM compute core.
//!
//! [`train`] runs every optimisation step through
//! [`Cnn::forward_batch_cached`] / [`Cnn::backward_batch`]: one GEMM
//! per layer for the batch's activations, one GEMM per layer for its
//! weight gradients (the batch reduction fused into the GEMM inner
//! dimension), and a single fused softmax-cross-entropy pass over the
//! logit rows. The optimiser consumes one accumulated gradient set per
//! step. [`train_reference`] pins the original per-sample
//! forward/backward loop — numerically equivalent (losses match within
//! float tolerance under the same seed) and the baseline the batched
//! path is benchmarked against.
//!
//! # Fault tolerance
//!
//! Every gradient set passes a [`StepGuard`] before the optimiser sees
//! it. Non-finite losses or gradients and (optionally) exploding
//! global norms mark the step *divergent*: the update is skipped, the
//! epoch is abandoned, and training rolls back to an in-memory snapshot
//! of the last epoch boundary — re-shuffling from the restored RNG
//! state, so the retry replays the exact same batches. Repeated
//! divergence on one epoch halves the learning rate
//! ([`DivergenceConfig::lr_backoff`]); exhausting
//! [`DivergenceConfig::max_rollbacks`] aborts with
//! [`NnError::Diverged`]. Finite but large gradients can instead be
//! clipped to [`TrainConfig::grad_clip`] by global norm.
//!
//! With [`TrainConfig::checkpoint_dir`] set, an on-disk
//! [`crate::checkpoint::TrainCheckpoint`] is written atomically at
//! epoch boundaries; [`TrainConfig::resume_from`] continues a killed
//! run bit-identically — the resumed loss history matches an
//! uninterrupted run's. [`TrainHooks`] expose the seams the
//! fault-injection tests drive: a per-step gradient hook (poison a
//! chosen step) and an abort-after-epoch switch (simulate a kill).
//!
//! The loss at every step is recorded so `repro fig11` can plot
//! convergence curves like the paper's Figure 11, and each report
//! carries per-epoch samples/sec plus step-time statistics.

use crate::checkpoint::{
    checkpoint_path, load_checkpoint, save_checkpoint, train_fingerprint, TrainCheckpoint,
};
use crate::error::NnError;
use crate::gemm::{with_gemm_threading, GemmThreading};
use crate::loss::{softmax, softmax_cross_entropy, softmax_cross_entropy_batch};
use crate::network::{argmax, Cnn, CnnBatchCache, CnnGrads, Sample};
use crate::optimizer::{Optimizer, OptimizerKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Divergence detection and recovery policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceConfig {
    /// Reject steps whose effective gradient global norm exceeds this
    /// (`None` = only non-finite losses/gradients count as divergent).
    /// An `Option` rather than an infinity default because JSON cannot
    /// represent `inf` — it would round-trip as `null`/NaN.
    pub max_grad_norm: Option<f32>,
    /// Abort with [`NnError::Diverged`] after this many rollbacks.
    pub max_rollbacks: usize,
    /// Learning-rate multiplier applied when the *same* epoch diverges
    /// twice in a row (the first retry replays at the current rate, in
    /// case the divergence was transient).
    pub lr_backoff: f32,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        Self {
            max_grad_norm: None,
            max_rollbacks: 8,
            lr_backoff: 0.5,
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Shuffling seed.
    pub seed: u64,
    /// Only update the head (top evolvement).
    pub freeze_towers: bool,
    /// Clip gradients to this global norm (`None` disables clipping).
    pub grad_clip: Option<f32>,
    /// Divergence detection and rollback policy.
    pub divergence: DivergenceConfig,
    /// Write a checkpoint into this directory at epoch boundaries.
    pub checkpoint_dir: Option<String>,
    /// Checkpoint every N completed epochs (the final epoch always
    /// checkpoints when a directory is set; values < 1 behave as 1).
    pub checkpoint_every: usize,
    /// Resume from this checkpoint file before the first epoch.
    pub resume_from: Option<String>,
    /// GEMM threading policy installed for the duration of the run
    /// (see [`crate::gemm::threading`]). `Auto` — the default — gives
    /// training every pool worker; the policy never changes results
    /// (bit-identical at any setting), only wall-clock. Excluded from
    /// [`crate::checkpoint::train_fingerprint`] for the same reason: a
    /// resume may legitimately run at a different thread count.
    pub gemm_threading: GemmThreading,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 32,
            lr: 1e-3,
            optimizer: OptimizerKind::adam(),
            seed: 7,
            freeze_towers: false,
            grad_clip: None,
            divergence: DivergenceConfig::default(),
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume_from: None,
            gemm_threading: GemmThreading::default(),
        }
    }
}

/// Wall-clock statistics over the optimisation steps of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StepTimeStats {
    /// Number of optimisation steps timed (includes steps later rolled
    /// back — wall time is never rewound).
    pub steps: usize,
    /// Mean step duration in milliseconds.
    pub mean_ms: f64,
    /// Fastest step in milliseconds.
    pub min_ms: f64,
    /// Slowest step in milliseconds.
    pub max_ms: f64,
}

/// What the fault-tolerance machinery did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RecoveryStats {
    /// Epochs abandoned and replayed from the last good state.
    pub rollbacks: usize,
    /// Steps rejected by the guard (non-finite or exploding).
    pub divergent_steps: usize,
    /// Steps whose gradients were clipped to [`TrainConfig::grad_clip`].
    pub clipped_steps: usize,
    /// Times the learning rate was multiplied by
    /// [`DivergenceConfig::lr_backoff`].
    pub lr_backoffs: usize,
    /// Epoch index a resumed run continued from, if it resumed.
    pub resumed_at_epoch: Option<usize>,
}

/// What a training run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean batch loss at every optimisation step, in order. Rolled-back
    /// steps are excised: the history reads as if every epoch succeeded
    /// first try.
    pub loss_history: Vec<f32>,
    /// Training accuracy measured after each epoch.
    pub epoch_train_acc: Vec<f64>,
    /// Training throughput per epoch (samples / step wall-time,
    /// excluding the end-of-epoch evaluation pass).
    pub epoch_samples_per_sec: Vec<f64>,
    /// Step wall-time statistics over the whole run.
    pub step_time: StepTimeStats,
    /// Divergence / rollback / resume bookkeeping.
    pub recovery: RecoveryStats,
}

impl TrainReport {
    fn empty() -> Self {
        Self {
            loss_history: Vec::new(),
            epoch_train_acc: Vec::new(),
            epoch_samples_per_sec: Vec::new(),
            step_time: StepTimeStats::default(),
            recovery: RecoveryStats::default(),
        }
    }
}

/// A fault-injection callback: receives the 1-based step number and the
/// gradient set after backward, before the divergence guard runs.
pub type GradHook<'h> = &'h mut dyn FnMut(u64, &mut CnnGrads);

/// Seams for fault-injection and crash simulation. Default hooks make
/// [`train_with_hooks`] behave exactly like [`train`].
#[derive(Default)]
pub struct TrainHooks<'h> {
    /// Called with (1-based step number, gradient set) after backward
    /// and before the divergence guard inspects the gradients — tests
    /// poison a chosen step here. Step numbers keep counting across
    /// rollbacks and resumes, so a one-shot poison fires exactly once.
    pub grad_hook: Option<GradHook<'h>>,
    /// Stop after this many completed epochs (checkpoint already
    /// written) — a controlled stand-in for `kill -9` in resume tests.
    pub abort_after_epoch: Option<usize>,
}

/// Reusable buffers for the batched training step: the activation
/// cache, one accumulated gradient set, and the logit-gradient /
/// label scratch. Create once per training run and hand to every
/// [`train_step`]; all allocations are amortised across steps.
#[derive(Debug, Clone)]
pub struct BatchTrainState {
    cache: CnnBatchCache,
    grads: CnnGrads,
    glogits: Vec<f32>,
    labels: Vec<usize>,
}

impl BatchTrainState {
    /// Buffers sized for `net`'s parameter layout.
    pub fn new(net: &Cnn) -> Self {
        Self {
            cache: CnnBatchCache::default(),
            grads: net.zero_grads(),
            glogits: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// Trains `net` on `samples` in place via the batched GEMM path.
///
/// # Panics
/// Panics if training fails terminally (divergence past the rollback
/// budget, or a checkpoint/resume I-O error). Callers that need the
/// typed error use [`train_with_hooks`].
pub fn train(net: &mut Cnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    train_with_hooks(net, samples, cfg, TrainHooks::default()).expect("training failed")
}

/// [`train`] with fault-injection hooks and a typed error instead of a
/// panic on terminal failure.
pub fn train_with_hooks(
    net: &mut Cnn,
    samples: &[Sample],
    cfg: &TrainConfig,
    hooks: TrainHooks<'_>,
) -> Result<TrainReport, NnError> {
    let mut state = BatchTrainState::new(net);
    train_impl(
        net,
        samples,
        cfg,
        hooks,
        move |net, samples, batch, opt, guard| {
            let loss =
                batched_forward_backward(net, samples, batch, opt.freeze_towers(), &mut state);
            let admitted = guard.admit(loss, &mut state.grads, 1.0);
            if admitted {
                opt.step(net, &state.grads, 1.0);
            }
            (loss, admitted)
        },
    )
}

/// Trains `net` via the pinned per-sample reference path. Slower than
/// [`train`] but numerically the baseline: under the same config and
/// seed both paths see identical batches and their loss histories
/// agree to float tolerance.
///
/// # Panics
/// Panics on terminal failure, like [`train`].
pub fn train_reference(net: &mut Cnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    train_reference_with_hooks(net, samples, cfg, TrainHooks::default())
        .expect("reference training failed")
}

/// [`train_reference`] with fault-injection hooks and a typed error.
pub fn train_reference_with_hooks(
    net: &mut Cnn,
    samples: &[Sample],
    cfg: &TrainConfig,
    hooks: TrainHooks<'_>,
) -> Result<TrainReport, NnError> {
    let mut accum = net.zero_grads();
    train_impl(
        net,
        samples,
        cfg,
        hooks,
        move |net, samples, batch, opt, guard| {
            let lsum = reference_forward_backward(net, samples, batch, &mut accum);
            let scale = 1.0 / batch.len() as f32;
            let loss = lsum * scale;
            // The accumulator holds the batch *sum*; `scale` makes the
            // guard's norm test and clipping act on the effective mean
            // gradient, matching the batched path bit-for-bit in intent.
            let admitted = guard.admit(loss, &mut accum, scale);
            if admitted {
                opt.step(net, &accum, scale);
            }
            (loss, admitted)
        },
    )
}

/// Per-step gatekeeper between backward and the optimiser: fires the
/// gradient hook, rejects non-finite or exploding steps, clips large
/// ones. `scale` is the factor the optimiser will apply to the raw
/// gradient set (1 for the batched path, 1/batch for the reference
/// path), so thresholds always compare against the *effective* update.
struct StepGuard<'h> {
    step_counter: u64,
    grad_clip: Option<f32>,
    max_grad_norm: Option<f32>,
    grad_hook: Option<GradHook<'h>>,
    divergent_steps: usize,
    clipped_steps: usize,
}

impl<'h> StepGuard<'h> {
    fn new(cfg: &TrainConfig, hooks: TrainHooks<'h>) -> Self {
        Self {
            step_counter: 0,
            grad_clip: cfg.grad_clip,
            max_grad_norm: cfg.divergence.max_grad_norm,
            grad_hook: hooks.grad_hook,
            divergent_steps: 0,
            clipped_steps: 0,
        }
    }

    /// Returns whether the optimiser may apply this step. Divergent
    /// steps (non-finite loss/gradients, or effective norm above
    /// `max_grad_norm`) are rejected; finite norms above `grad_clip`
    /// are scaled down in place.
    fn admit(&mut self, loss: f32, grads: &mut CnnGrads, scale: f32) -> bool {
        self.step_counter += 1;
        if let Some(hook) = self.grad_hook.as_mut() {
            hook(self.step_counter, grads);
        }
        #[cfg(feature = "chaos")]
        if dnnspmv_chaos::should_fail(dnnspmv_chaos::sites::TRAIN_STEP) {
            // Same seam a `grad_hook` poison uses: the step presents as
            // divergent and the snapshot/rollback machinery owns
            // recovery — chaos drives the guard, it does not bypass it.
            grads.scale(f32::NAN);
        }
        let norm = grads.global_norm() * scale as f64;
        if !loss.is_finite() || !norm.is_finite() {
            self.divergent_steps += 1;
            return false;
        }
        if let Some(max) = self.max_grad_norm {
            if norm > max as f64 {
                self.divergent_steps += 1;
                return false;
            }
        }
        if let Some(clip) = self.grad_clip {
            if norm > clip as f64 {
                grads.scale((clip as f64 / norm) as f32);
                self.clipped_steps += 1;
            }
        }
        true
    }
}

/// In-memory image of the last good epoch boundary, for rollback.
/// The RNG and sample order are captured *before* the epoch's shuffle,
/// so a retry re-shuffles into the exact same batch sequence.
struct Snapshot {
    net: Cnn,
    opt: Optimizer,
    rng: StdRng,
    order: Vec<usize>,
    loss_len: usize,
}

impl Snapshot {
    fn capture(
        net: &Cnn,
        opt: &Optimizer,
        rng: &StdRng,
        order: &[usize],
        report: &TrainReport,
    ) -> Self {
        Self {
            net: net.clone(),
            opt: opt.clone(),
            rng: rng.clone(),
            order: order.to_vec(),
            loss_len: report.loss_history.len(),
        }
    }

    fn restore(
        &self,
        net: &mut Cnn,
        opt: &mut Optimizer,
        rng: &mut StdRng,
        order: &mut Vec<usize>,
        report: &mut TrainReport,
    ) {
        *net = self.net.clone();
        *opt = self.opt.clone();
        *rng = self.rng.clone();
        *order = self.order.clone();
        report.loss_history.truncate(self.loss_len);
    }
}

/// One in-place Fisher–Yates pass.
fn shuffle(order: &mut [usize], rng: &mut StdRng) {
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
}

/// Shared epoch/shuffle/recovery/instrumentation loop; `step` is either
/// the batched or the per-sample reference step (both guarded). Both
/// paths draw batches from the same seeded shuffle, so their step
/// sequences line up one-to-one. The run's [`TrainConfig::gemm_threading`]
/// policy is installed around the whole loop, so every forward,
/// backward and gradient GEMM inside inherits it.
fn train_impl(
    net: &mut Cnn,
    samples: &[Sample],
    cfg: &TrainConfig,
    hooks: TrainHooks<'_>,
    step: impl FnMut(&mut Cnn, &[Sample], &[usize], &mut Optimizer, &mut StepGuard) -> (f32, bool),
) -> Result<TrainReport, NnError> {
    with_gemm_threading(cfg.gemm_threading, || {
        train_loop(net, samples, cfg, hooks, step)
    })
}

/// Body of [`train_impl`], running under its installed threading
/// policy.
fn train_loop(
    net: &mut Cnn,
    samples: &[Sample],
    cfg: &TrainConfig,
    hooks: TrainHooks<'_>,
    mut step: impl FnMut(&mut Cnn, &[Sample], &[usize], &mut Optimizer, &mut StepGuard) -> (f32, bool),
) -> Result<TrainReport, NnError> {
    let mut report = TrainReport::empty();
    if samples.is_empty() || cfg.epochs == 0 {
        return Ok(report);
    }
    let abort_after_epoch = hooks.abort_after_epoch;
    let mut guard = StepGuard::new(cfg, hooks);
    let mut opt = Optimizer::new(net, cfg.optimizer, cfg.lr, cfg.freeze_towers);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (mut total_s, mut min_s, mut max_s, mut time_steps) =
        (0.0f64, f64::INFINITY, 0.0f64, 0usize);
    let fingerprint = train_fingerprint(cfg, net, samples.len());

    let mut start_epoch = 0usize;
    if let Some(path) = &cfg.resume_from {
        dnnspmv_chaos::failpoint!(
            dnnspmv_chaos::sites::TRAIN_RESUME,
            Err(NnError::Io(format!(
                "chaos: injected checkpoint read failure on {path}"
            )))
        );
        let (ck, stored) = load_checkpoint(path)?;
        if stored != fingerprint {
            return Err(NnError::ConfigMismatch(format!(
                "checkpoint fingerprint {stored:#018x} does not match this run \
                 ({fingerprint:#018x}): dataset size, batch size, seed, optimiser \
                 or network structure differs"
            )));
        }
        *net = ck.net;
        opt = ck.opt;
        report = ck.report;
        report.recovery.resumed_at_epoch = Some(ck.epoch);
        guard.step_counter = ck.step_counter;
        guard.divergent_steps = report.recovery.divergent_steps;
        guard.clipped_steps = report.recovery.clipped_steps;
        time_steps = ck.time_steps;
        total_s = ck.total_s;
        min_s = if ck.time_steps > 0 {
            ck.min_s
        } else {
            f64::INFINITY
        };
        max_s = ck.max_s;
        start_epoch = ck.epoch;
        // The checkpoint does not store the RNG: replay the completed
        // epochs' shuffles so the resumed batch order is bit-identical
        // to the uninterrupted run's.
        for _ in 0..start_epoch {
            shuffle(&mut order, &mut rng);
        }
    }

    // Process-wide training metrics (`dnnspmv metrics` dumps them).
    // Handles are bound once per run; recording is a few relaxed
    // atomic adds next to step timing that is already measured, so the
    // training loop's throughput is unaffected.
    let obs = dnnspmv_obs::global();
    let obs_step_ns = obs.histogram("train_step_ns", &[]);
    let obs_epoch_sps = obs.histogram("train_epoch_samples_per_sec", &[]);
    let obs_rollbacks = obs.counter("train_rollbacks_total", &[]);
    let obs_lr_backoffs = obs.counter("train_lr_backoffs_total", &[]);
    let obs_checkpoints = obs.counter("train_checkpoints_total", &[]);
    let obs_checkpoint_failures = obs.counter("train_checkpoint_failures_total", &[]);
    let obs_epochs = obs.counter("train_epochs_total", &[]);

    let mut cur_lr = opt.lr();
    let mut consecutive_rollbacks = 0usize;
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        let snapshot = Snapshot::capture(net, &opt, &rng, &order, &report);
        shuffle(&mut order, &mut rng);
        let mut epoch_s = 0.0f64;
        let mut diverged = false;
        for batch_idx in order.chunks(cfg.batch_size.max(1)) {
            let t0 = Instant::now();
            let (loss, admitted) = step(net, samples, batch_idx, &mut opt, &mut guard);
            let dt = t0.elapsed().as_secs_f64();
            obs_step_ns.record((dt * 1e9) as u64);
            epoch_s += dt;
            total_s += dt;
            min_s = min_s.min(dt);
            max_s = max_s.max(dt);
            time_steps += 1;
            if !admitted {
                diverged = true;
                break;
            }
            report.loss_history.push(loss);
        }
        if diverged {
            snapshot.restore(net, &mut opt, &mut rng, &mut order, &mut report);
            report.recovery.rollbacks += 1;
            obs_rollbacks.inc();
            consecutive_rollbacks += 1;
            if report.recovery.rollbacks > cfg.divergence.max_rollbacks {
                return Err(NnError::Diverged(format!(
                    "epoch {epoch} diverged and the rollback budget ({}) is exhausted",
                    cfg.divergence.max_rollbacks
                )));
            }
            if consecutive_rollbacks >= 2 {
                cur_lr *= cfg.divergence.lr_backoff;
                report.recovery.lr_backoffs += 1;
                obs_lr_backoffs.inc();
            }
            opt.set_lr(cur_lr);
            continue;
        }
        consecutive_rollbacks = 0;
        obs_epochs.inc();
        let sps = if epoch_s > 0.0 {
            samples.len() as f64 / epoch_s
        } else {
            0.0
        };
        obs_epoch_sps.record(sps as u64);
        report.epoch_samples_per_sec.push(sps);
        report.epoch_train_acc.push(evaluate(net, samples));
        epoch += 1;
        report.recovery.divergent_steps = guard.divergent_steps;
        report.recovery.clipped_steps = guard.clipped_steps;
        if let Some(dir) = &cfg.checkpoint_dir {
            let every = cfg.checkpoint_every.max(1);
            if epoch.is_multiple_of(every) || epoch == cfg.epochs {
                let ck = TrainCheckpoint {
                    epoch,
                    step_counter: guard.step_counter,
                    samples_len: samples.len(),
                    net: net.clone(),
                    opt: opt.clone(),
                    report: report.clone(),
                    time_steps,
                    total_s,
                    min_s: if time_steps > 0 { min_s } else { 0.0 },
                    max_s,
                };
                // A failed checkpoint write must not abort training:
                // the atomic write protocol guarantees the previous
                // checkpoint is still intact under the final name, so
                // a full disk costs resumability-freshness, not the
                // run. Count it and keep going.
                let written = (|| -> Result<(), NnError> {
                    dnnspmv_chaos::failpoint!(
                        dnnspmv_chaos::sites::TRAIN_CHECKPOINT,
                        Err(NnError::StorageFull(
                            "chaos: injected checkpoint write failure".into()
                        ))
                    );
                    std::fs::create_dir_all(dir)?;
                    save_checkpoint(&ck, fingerprint, checkpoint_path(dir))
                })();
                match written {
                    Ok(()) => obs_checkpoints.inc(),
                    Err(_) => obs_checkpoint_failures.inc(),
                }
            }
        }
        if abort_after_epoch == Some(epoch) {
            break;
        }
    }
    report.recovery.divergent_steps = guard.divergent_steps;
    report.recovery.clipped_steps = guard.clipped_steps;
    report.step_time = if time_steps > 0 {
        StepTimeStats {
            steps: time_steps,
            mean_ms: 1e3 * total_s / time_steps as f64,
            min_ms: 1e3 * min_s,
            max_ms: 1e3 * max_s,
        }
    } else {
        StepTimeStats::default()
    };
    Ok(report)
}

/// Batched forward + loss + backward for one batch: fills
/// `state.grads` with the batch-mean gradients and returns the mean
/// loss. The optimiser step is the caller's (so the guard can sit in
/// between).
fn batched_forward_backward(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    freeze_towers: bool,
    state: &mut BatchTrainState,
) -> f32 {
    let refs: Vec<&[crate::tensor::Tensor]> = batch
        .iter()
        .map(|&i| samples[i].channels.as_slice())
        .collect();
    state.labels.clear();
    state.labels.extend(batch.iter().map(|&i| samples[i].label));
    net.forward_batch_cached(&refs, &mut state.cache);
    let (logits, classes) = state.cache.logits_rows();
    let loss = softmax_cross_entropy_batch(logits, classes, &state.labels, &mut state.glogits);
    net.backward_batch(
        &mut state.cache,
        &state.glogits[..batch.len() * classes],
        freeze_towers,
        &mut state.grads,
    );
    loss
}

/// One batched optimisation step on the given sample indices; returns
/// the mean batch loss *before* the update.
///
/// The whole batch runs as one forward pass (one GEMM per layer), one
/// fused loss/gradient pass over the logit rows, and one backward pass
/// whose weight-gradient GEMMs fold the batch reduction into their
/// inner dimension — the optimiser then applies the single accumulated
/// (already batch-averaged) gradient set. No divergence guard: this is
/// the raw step the benchmarks time.
pub fn train_step(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    opt: &mut Optimizer,
    state: &mut BatchTrainState,
) -> f32 {
    let loss = batched_forward_backward(net, samples, batch, opt.freeze_towers(), state);
    // The loss gradient is pre-scaled by 1/batch, so the summed
    // parameter gradients are already batch means.
    opt.step(net, &state.grads, 1.0);
    loss
}

/// Per-sample forward/backward over one batch, reducing into `accum`
/// (cleared on entry); returns the *summed* batch loss.
fn reference_forward_backward(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    accum: &mut CnnGrads,
) -> f32 {
    accum.clear();
    let mut lsum = 0.0f32;
    for &i in batch {
        let s = &samples[i];
        let cache = net.forward_cached(&s.channels);
        let (loss, gl) = softmax_cross_entropy(&cache.logits, s.label);
        let sg = net.backward(&cache, &gl);
        accum.add_assign(&sg);
        lsum += loss;
    }
    lsum
}

/// One per-sample reference optimisation step; returns the mean batch
/// loss *before* the update.
///
/// Gradients reduce sequentially into the single preallocated `accum`
/// set (cleared on entry) — no per-sample gradient sets are kept. The
/// optimiser folds the batch mean into the update via its `scale`
/// argument instead of rescaling the accumulator first.
pub fn train_step_reference(
    net: &mut Cnn,
    samples: &[Sample],
    batch: &[usize],
    opt: &mut Optimizer,
    accum: &mut CnnGrads,
) -> f32 {
    let lsum = reference_forward_backward(net, samples, batch, accum);
    let scale = 1.0 / batch.len() as f32;
    opt.step(net, accum, scale);
    lsum * scale
}

/// Inference batch size for [`evaluate`] and [`confusion_matrix`]:
/// chunks of this many samples are packed into one GEMM per layer.
pub const EVAL_BATCH: usize = 64;

/// Fraction of samples whose argmax prediction matches the label.
///
/// Inference runs through [`Cnn::predict_batch`] in chunks of
/// [`EVAL_BATCH`] samples, so each network layer does one GEMM per
/// chunk instead of one per sample.
///
/// An empty slice scores `0.0` — a defined value rather than the
/// `0 / 0 = NaN` a naive ratio would produce — and a single sample
/// degenerates to a batch of one (scoring exactly `0.0` or `1.0`).
pub fn evaluate(net: &Cnn, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct: usize = batched_predictions(net, samples)
        .into_iter()
        .zip(samples)
        .filter(|(p, s)| *p == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Predicted label for every sample, via chunked batched inference.
fn batched_predictions(net: &Cnn, samples: &[Sample]) -> Vec<usize> {
    let mut preds = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(EVAL_BATCH) {
        let refs: Vec<&[crate::tensor::Tensor]> =
            chunk.iter().map(|s| s.channels.as_slice()).collect();
        preds.extend(net.predict_batch(&refs));
    }
    preds
}

/// Class-probability vector for one sample.
pub fn predict_proba(net: &Cnn, channels: &[crate::tensor::Tensor]) -> Vec<f32> {
    softmax(net.forward(channels).data())
}

/// `confusion[truth][predicted]` counts over `samples`, using the
/// same chunked batched inference as [`evaluate`].
pub fn confusion_matrix(net: &Cnn, samples: &[Sample], classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; classes]; classes];
    for (p, s) in batched_predictions(net, samples).into_iter().zip(samples) {
        m[s.label][p] += 1;
    }
    m
}

/// Per-class recall and precision from a confusion matrix; `None` when
/// the denominator is empty (no ground truth / no predictions for that
/// class), matching the "-" cells of the paper's Table 3.
///
/// Total on degenerate input: ragged or truncated rows (e.g. a matrix
/// assembled from partial results) read missing cells as zero instead
/// of panicking on an out-of-bounds index.
pub fn recall_precision(confusion: &[Vec<usize>]) -> Vec<(Option<f64>, Option<f64>)> {
    let k = confusion.len();
    let cell = |t: usize, c: usize| confusion[t].get(c).copied().unwrap_or(0);
    (0..k)
        .map(|c| {
            let truth: usize = confusion[c].iter().sum();
            let predicted: usize = (0..k).map(|t| cell(t, c)).sum();
            let hit = cell(c, c);
            let recall = (truth > 0).then(|| hit as f64 / truth as f64);
            let precision = (predicted > 0).then(|| hit as f64 / predicted as f64);
            (recall, precision)
        })
        .collect()
}

/// Overall accuracy from a confusion matrix. Total on degenerate
/// input: an empty matrix scores `0.0` and ragged rows read missing
/// diagonal cells as zero.
pub fn accuracy_from_confusion(confusion: &[Vec<usize>]) -> f64 {
    let total: usize = confusion.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    let hit: usize = (0..confusion.len())
        .map(|c| confusion[c].get(c).copied().unwrap_or(0))
        .sum();
    hit as f64 / total as f64
}

/// Convenience: argmax prediction for raw logits (re-exported for
/// callers that run their own forward).
pub fn predict_label(logits: &[f32]) -> usize {
    argmax(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{build_cnn, CnnConfig, Merging};
    use crate::tensor::Tensor;

    /// Two trivially separable classes: bright top-left vs bright
    /// bottom-right 16x16 images.
    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut img = vec![0.0f32; 16 * 16];
                for y in 0..8 {
                    for x in 0..8 {
                        let (yy, xx) = if label == 0 { (y, x) } else { (y + 8, x + 8) };
                        img[yy * 16 + xx] = 0.8 + 0.2 * rng.random::<f32>();
                    }
                }
                Sample {
                    channels: vec![Tensor::from_vec(&[16, 16], img)],
                    label,
                }
            })
            .collect()
    }

    fn toy_net(seed: u64) -> Cnn {
        build_cnn(
            Merging::Late,
            1,
            (16, 16),
            2,
            &CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed,
            },
        )
    }

    #[test]
    fn training_separates_toy_classes() {
        let samples = toy_samples(40, 1);
        let mut net = toy_net(2);
        let before = evaluate(&net, &samples);
        let report = train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let after = evaluate(&net, &samples);
        assert!(after >= 0.95, "accuracy only {after} (was {before})");
        // Loss decreases overall.
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
        // A clean run records no recovery activity.
        assert_eq!(report.recovery, RecoveryStats::default());
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples(16, 3);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = toy_net(5);
        let ra = train(&mut a, &samples, &cfg);
        let mut b = toy_net(5);
        let rb = train(&mut b, &samples, &cfg);
        assert_eq!(ra.loss_history.len(), rb.loss_history.len());
        for (x, y) in ra.loss_history.iter().zip(&rb.loss_history) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        assert_eq!(ra.epoch_train_acc, rb.epoch_train_acc);
    }

    #[test]
    fn batched_and_reference_training_agree() {
        // Same seed, same batches (including a final short batch:
        // 10 samples, batch 4) — the loss histories must line up step
        // by step within float tolerance.
        let samples = toy_samples(10, 21);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            lr: 2e-3,
            ..TrainConfig::default()
        };
        let mut a = toy_net(23);
        let mut b = a.clone();
        let ra = train(&mut a, &samples, &cfg);
        let rb = train_reference(&mut b, &samples, &cfg);
        assert_eq!(ra.loss_history.len(), rb.loss_history.len());
        for (i, (x, y)) in ra.loss_history.iter().zip(&rb.loss_history).enumerate() {
            assert!((x - y).abs() <= 1e-3, "step {i}: batched {x} vs ref {y}");
        }
        assert_eq!(ra.epoch_train_acc, rb.epoch_train_acc);
    }

    #[test]
    fn report_carries_throughput_and_step_stats() {
        let samples = toy_samples(12, 31);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut net = toy_net(33);
        let report = train(&mut net, &samples, &cfg);
        assert_eq!(report.epoch_samples_per_sec.len(), cfg.epochs);
        assert!(report.epoch_samples_per_sec.iter().all(|&s| s > 0.0));
        assert_eq!(report.step_time.steps, report.loss_history.len());
        assert!(report.step_time.min_ms <= report.step_time.mean_ms);
        assert!(report.step_time.mean_ms <= report.step_time.max_ms);
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut net = toy_net(1);
        let before = net.clone();
        let report = train(&mut net, &[], &TrainConfig::default());
        assert!(report.loss_history.is_empty());
        assert_eq!(report.step_time, StepTimeStats::default());
        assert_eq!(net, before);
    }

    #[test]
    fn poisoned_step_rolls_back_and_recovers() {
        // Inject NaN gradients into one step mid-training: the guard
        // must reject the step, roll the epoch back, and the retried
        // run must still converge to the clean-run accuracy.
        let samples = toy_samples(40, 1);
        let mut net = toy_net(2);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let mut fired = false;
        let mut poison = |step: u64, grads: &mut CnnGrads| {
            if step == 7 && !fired {
                fired = true;
                poison_grads(grads);
            }
        };
        let report = train_with_hooks(
            &mut net,
            &samples,
            &cfg,
            TrainHooks {
                grad_hook: Some(&mut poison),
                abort_after_epoch: None,
            },
        )
        .unwrap();
        assert!(fired, "fault was never injected");
        assert!(report.recovery.rollbacks >= 1, "{:?}", report.recovery);
        assert!(report.recovery.divergent_steps >= 1);
        // The excised history reads as a clean run: every recorded loss
        // is finite and the run still converges.
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        let after = evaluate(&net, &samples);
        assert!(after >= 0.95, "post-recovery accuracy only {after}");
    }

    fn poison_grads(grads: &mut CnnGrads) {
        for layer in &mut grads.head {
            for p in layer {
                if let Some(v) = p.data_mut().first_mut() {
                    *v = f32::NAN;
                }
            }
        }
    }

    #[test]
    fn persistent_divergence_errs_after_rollback_budget() {
        // A hook that poisons *every* step can never make progress:
        // training must give up with NnError::Diverged, not loop.
        let samples = toy_samples(8, 3);
        let mut net = toy_net(4);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            divergence: DivergenceConfig {
                max_rollbacks: 3,
                ..DivergenceConfig::default()
            },
            ..TrainConfig::default()
        };
        let mut poison = |_step: u64, grads: &mut CnnGrads| poison_grads(grads);
        let err = train_with_hooks(
            &mut net,
            &samples,
            &cfg,
            TrainHooks {
                grad_hook: Some(&mut poison),
                abort_after_epoch: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, NnError::Diverged(_)), "{err}");
    }

    #[test]
    fn repeated_divergence_backs_off_learning_rate() {
        // Poison the first three attempts at epoch 0: rollback #2 and
        // #3 are consecutive retries of the same epoch, so the backoff
        // policy must fire at least once, and training then completes.
        let samples = toy_samples(8, 5);
        let mut net = toy_net(6);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut shots = 3;
        let mut poison = |_step: u64, grads: &mut CnnGrads| {
            if shots > 0 {
                shots -= 1;
                poison_grads(grads);
            }
        };
        let report = train_with_hooks(
            &mut net,
            &samples,
            &cfg,
            TrainHooks {
                grad_hook: Some(&mut poison),
                abort_after_epoch: None,
            },
        )
        .unwrap();
        assert_eq!(report.recovery.rollbacks, 3);
        assert!(report.recovery.lr_backoffs >= 1, "{:?}", report.recovery);
        assert_eq!(report.epoch_train_acc.len(), cfg.epochs);
    }

    #[test]
    fn exploding_norm_threshold_trips_guard() {
        let samples = toy_samples(8, 7);
        let mut net = toy_net(8);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            divergence: DivergenceConfig {
                // Any real gradient exceeds this.
                max_grad_norm: Some(1e-12),
                max_rollbacks: 1,
                ..DivergenceConfig::default()
            },
            ..TrainConfig::default()
        };
        let err = train_with_hooks(&mut net, &samples, &cfg, TrainHooks::default()).unwrap_err();
        assert!(matches!(err, NnError::Diverged(_)), "{err}");
    }

    #[test]
    fn gradient_clipping_caps_update_norm_and_still_converges() {
        let samples = toy_samples(40, 1);
        let mut net = toy_net(2);
        let report = train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                grad_clip: Some(0.05),
                ..TrainConfig::default()
            },
        );
        assert!(report.recovery.clipped_steps > 0, "{:?}", report.recovery);
        let after = evaluate(&net, &samples);
        assert!(after >= 0.95, "clipped-run accuracy only {after}");
    }

    #[test]
    fn evaluate_empty_slice_is_zero_not_nan() {
        let net = toy_net(1);
        let acc = evaluate(&net, &[]);
        assert_eq!(acc, 0.0);
        assert!(!acc.is_nan());
    }

    #[test]
    fn evaluate_single_sample_is_zero_or_one() {
        let net = toy_net(1);
        let samples = toy_samples(1, 2);
        let acc = evaluate(&net, &samples);
        assert!(acc == 0.0 || acc == 1.0, "got {acc}");
        // Consistent with the per-sample prediction path.
        let want = (net.predict(&samples[0].channels) == samples[0].label) as usize as f64;
        assert_eq!(acc, want);
    }

    #[test]
    fn evaluate_crosses_batch_boundaries_consistently() {
        // More samples than EVAL_BATCH: chunked batching must count
        // every sample exactly once.
        let samples = toy_samples(EVAL_BATCH + 9, 5);
        let net = toy_net(3);
        let acc = evaluate(&net, &samples);
        let per_sample = samples
            .iter()
            .filter(|s| net.predict(&s.channels) == s.label)
            .count() as f64
            / samples.len() as f64;
        assert!((acc - per_sample).abs() < 1e-12, "{acc} vs {per_sample}");
    }

    #[test]
    fn confusion_matrix_counts_match() {
        let samples = toy_samples(20, 7);
        let mut net = toy_net(9);
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 6,
                batch_size: 5,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let cm = confusion_matrix(&net, &samples, 2);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 20);
        let acc = accuracy_from_confusion(&cm);
        assert!((acc - evaluate(&net, &samples)).abs() < 1e-9);
    }

    #[test]
    fn recall_precision_handles_absent_class() {
        // Class 2 never appears and is never predicted.
        let cm = vec![vec![8, 2, 0], vec![1, 9, 0], vec![0, 0, 0]];
        let rp = recall_precision(&cm);
        assert_eq!(rp[0].0, Some(0.8));
        assert_eq!(rp[1].0, Some(0.9));
        assert_eq!(rp[2], (None, None));
        let p0 = rp[0].1.unwrap();
        assert!((p0 - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn confusion_metrics_are_total_on_degenerate_matrices() {
        // Empty matrix.
        assert_eq!(recall_precision(&[]), vec![]);
        assert_eq!(accuracy_from_confusion(&[]), 0.0);
        // All-zero matrix: every denominator empty, accuracy defined.
        let zeros = vec![vec![0, 0], vec![0, 0]];
        assert_eq!(recall_precision(&zeros), vec![(None, None); 2]);
        assert_eq!(accuracy_from_confusion(&zeros), 0.0);
        // Ragged rows (short row 1, long row 0): missing cells read as
        // zero — no panic, and present cells still count.
        let ragged = vec![vec![3, 1, 7], vec![2]];
        let rp = recall_precision(&ragged);
        assert_eq!(rp.len(), 2);
        assert_eq!(rp[0].0, Some(3.0 / 11.0));
        // Column 0 receives 3 (row 0) + 2 (row 1) predictions.
        assert_eq!(rp[0].1, Some(0.6));
        // Row 1 has no cell [1][1]: the diagonal hit reads as zero, so
        // recall is 0/2 and precision 0/1 (row 0 predicted class 1 once).
        assert_eq!(rp[1].0, Some(0.0));
        assert_eq!(rp[1].1, Some(0.0));
        let acc = accuracy_from_confusion(&ragged);
        assert!((acc - 3.0 / 13.0).abs() < 1e-12, "{acc}");
    }

    #[test]
    fn predict_proba_is_a_distribution() {
        let net = toy_net(11);
        let s = &toy_samples(2, 13)[0];
        let p = predict_proba(&net, &s.channels);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn freeze_towers_keeps_tower_parameters() {
        let samples = toy_samples(12, 17);
        let mut net = toy_net(19);
        let tower_before = net.towers[0].clone();
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 2,
                batch_size: 4,
                freeze_towers: true,
                ..TrainConfig::default()
            },
        );
        assert_eq!(net.towers[0], tower_before);
    }

    #[test]
    fn frozen_batched_and_reference_paths_agree() {
        // Top evolvement through both paths: identical loss histories
        // and bit-identical towers.
        let samples = toy_samples(8, 41);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 3,
            freeze_towers: true,
            ..TrainConfig::default()
        };
        let mut a = toy_net(43);
        let mut b = a.clone();
        let ra = train(&mut a, &samples, &cfg);
        let rb = train_reference(&mut b, &samples, &cfg);
        for (x, y) in ra.loss_history.iter().zip(&rb.loss_history) {
            assert!((x - y).abs() <= 1e-3, "{x} vs {y}");
        }
        assert_eq!(a.towers, b.towers);
    }
}
