//! Mini-batch training loop with rayon-parallel gradient computation.
//!
//! Per-sample gradients within a batch are computed concurrently (the
//! forward/backward passes are stateless w.r.t. the network) and
//! reduced tree-wise; the parameter update is sequential. The loss at
//! every step is recorded so `repro fig11` can plot convergence curves
//! like the paper's Figure 11.

use crate::loss::{softmax, softmax_cross_entropy};
use crate::network::{argmax, Cnn, Sample};
use crate::optimizer::{Optimizer, OptimizerKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Update rule.
    pub optimizer: OptimizerKind,
    /// Shuffling seed.
    pub seed: u64,
    /// Only update the head (top evolvement).
    pub freeze_towers: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            batch_size: 32,
            lr: 1e-3,
            optimizer: OptimizerKind::adam(),
            seed: 7,
            freeze_towers: false,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean batch loss at every optimisation step, in order.
    pub loss_history: Vec<f32>,
    /// Training accuracy measured after each epoch.
    pub epoch_train_acc: Vec<f64>,
}

/// Trains `net` on `samples` in place.
pub fn train(net: &mut Cnn, samples: &[Sample], cfg: &TrainConfig) -> TrainReport {
    let mut report = TrainReport {
        loss_history: Vec::new(),
        epoch_train_acc: Vec::new(),
    };
    if samples.is_empty() || cfg.epochs == 0 {
        return report;
    }
    let mut opt = Optimizer::new(net, cfg.optimizer, cfg.lr, cfg.freeze_towers);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _epoch in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        for batch_idx in order.chunks(cfg.batch_size.max(1)) {
            let loss = train_step(net, samples, batch_idx, &mut opt);
            report.loss_history.push(loss);
        }
        report.epoch_train_acc.push(evaluate(net, samples));
    }
    report
}

/// One optimisation step on the given sample indices; returns the mean
/// batch loss *before* the update.
fn train_step(net: &mut Cnn, samples: &[Sample], batch: &[usize], opt: &mut Optimizer) -> f32 {
    let shared: &Cnn = net;
    let (mut gsum, lsum) = batch
        .par_iter()
        .fold(
            || (shared.zero_grads(), 0.0f32),
            |(mut g, l), &i| {
                let s = &samples[i];
                let cache = shared.forward_cached(&s.channels);
                let (loss, gl) = softmax_cross_entropy(&cache.logits, s.label);
                let sg = shared.backward(&cache, &gl);
                g.add_assign(&sg);
                (g, l + loss)
            },
        )
        .reduce(
            || (shared.zero_grads(), 0.0f32),
            |(mut g1, l1), (g2, l2)| {
                g1.add_assign(&g2);
                (g1, l1 + l2)
            },
        );
    let scale = 1.0 / batch.len() as f32;
    gsum.scale(scale);
    opt.step(net, &gsum);
    lsum * scale
}

/// Inference batch size for [`evaluate`] and [`confusion_matrix`]:
/// chunks of this many samples are packed into one GEMM per layer.
pub const EVAL_BATCH: usize = 64;

/// Fraction of samples whose argmax prediction matches the label.
///
/// Inference runs through [`Cnn::predict_batch`] in chunks of
/// [`EVAL_BATCH`] samples, so each network layer does one GEMM per
/// chunk instead of one per sample.
///
/// An empty slice scores `0.0` — a defined value rather than the
/// `0 / 0 = NaN` a naive ratio would produce — and a single sample
/// degenerates to a batch of one (scoring exactly `0.0` or `1.0`).
pub fn evaluate(net: &Cnn, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct: usize = batched_predictions(net, samples)
        .into_iter()
        .zip(samples)
        .filter(|(p, s)| *p == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Predicted label for every sample, via chunked batched inference.
fn batched_predictions(net: &Cnn, samples: &[Sample]) -> Vec<usize> {
    let mut preds = Vec::with_capacity(samples.len());
    for chunk in samples.chunks(EVAL_BATCH) {
        let refs: Vec<&[crate::tensor::Tensor]> =
            chunk.iter().map(|s| s.channels.as_slice()).collect();
        preds.extend(net.predict_batch(&refs));
    }
    preds
}

/// Class-probability vector for one sample.
pub fn predict_proba(net: &Cnn, channels: &[crate::tensor::Tensor]) -> Vec<f32> {
    softmax(net.forward(channels).data())
}

/// `confusion[truth][predicted]` counts over `samples`, using the
/// same chunked batched inference as [`evaluate`].
pub fn confusion_matrix(net: &Cnn, samples: &[Sample], classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; classes]; classes];
    for (p, s) in batched_predictions(net, samples).into_iter().zip(samples) {
        m[s.label][p] += 1;
    }
    m
}

/// Per-class recall and precision from a confusion matrix; `None` when
/// the denominator is empty (no ground truth / no predictions for that
/// class), matching the "-" cells of the paper's Table 3.
pub fn recall_precision(confusion: &[Vec<usize>]) -> Vec<(Option<f64>, Option<f64>)> {
    let k = confusion.len();
    (0..k)
        .map(|c| {
            let truth: usize = confusion[c].iter().sum();
            let predicted: usize = (0..k).map(|t| confusion[t][c]).sum();
            let hit = confusion[c][c];
            let recall = (truth > 0).then(|| hit as f64 / truth as f64);
            let precision = (predicted > 0).then(|| hit as f64 / predicted as f64);
            (recall, precision)
        })
        .collect()
}

/// Overall accuracy from a confusion matrix.
pub fn accuracy_from_confusion(confusion: &[Vec<usize>]) -> f64 {
    let total: usize = confusion.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    let hit: usize = (0..confusion.len()).map(|c| confusion[c][c]).sum();
    hit as f64 / total as f64
}

/// Convenience: argmax prediction for raw logits (re-exported for
/// callers that run their own forward).
pub fn predict_label(logits: &[f32]) -> usize {
    argmax(logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::{build_cnn, CnnConfig, Merging};
    use crate::tensor::Tensor;

    /// Two trivially separable classes: bright top-left vs bright
    /// bottom-right 16x16 images.
    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut img = vec![0.0f32; 16 * 16];
                for y in 0..8 {
                    for x in 0..8 {
                        let (yy, xx) = if label == 0 { (y, x) } else { (y + 8, x + 8) };
                        img[yy * 16 + xx] = 0.8 + 0.2 * rng.random::<f32>();
                    }
                }
                Sample {
                    channels: vec![Tensor::from_vec(&[16, 16], img)],
                    label,
                }
            })
            .collect()
    }

    fn toy_net(seed: u64) -> Cnn {
        build_cnn(
            Merging::Late,
            1,
            (16, 16),
            2,
            &CnnConfig {
                conv_channels: [4, 8, 8],
                hidden: 16,
                seed,
            },
        )
    }

    #[test]
    fn training_separates_toy_classes() {
        let samples = toy_samples(40, 1);
        let mut net = toy_net(2);
        let before = evaluate(&net, &samples);
        let report = train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 8,
                batch_size: 8,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let after = evaluate(&net, &samples);
        assert!(after >= 0.95, "accuracy only {after} (was {before})");
        // Loss decreases overall.
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples(16, 3);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = toy_net(5);
        let ra = train(&mut a, &samples, &cfg);
        let mut b = toy_net(5);
        let rb = train(&mut b, &samples, &cfg);
        assert_eq!(ra.loss_history.len(), rb.loss_history.len());
        // Parallel reduction order varies, but the result must agree to
        // float tolerance — gradients are means of identical values.
        for (x, y) in ra.loss_history.iter().zip(&rb.loss_history) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut net = toy_net(1);
        let before = net.clone();
        let report = train(&mut net, &[], &TrainConfig::default());
        assert!(report.loss_history.is_empty());
        assert_eq!(net, before);
    }

    #[test]
    fn evaluate_empty_slice_is_zero_not_nan() {
        let net = toy_net(1);
        let acc = evaluate(&net, &[]);
        assert_eq!(acc, 0.0);
        assert!(!acc.is_nan());
    }

    #[test]
    fn evaluate_single_sample_is_zero_or_one() {
        let net = toy_net(1);
        let samples = toy_samples(1, 2);
        let acc = evaluate(&net, &samples);
        assert!(acc == 0.0 || acc == 1.0, "got {acc}");
        // Consistent with the per-sample prediction path.
        let want = (net.predict(&samples[0].channels) == samples[0].label) as usize as f64;
        assert_eq!(acc, want);
    }

    #[test]
    fn evaluate_crosses_batch_boundaries_consistently() {
        // More samples than EVAL_BATCH: chunked batching must count
        // every sample exactly once.
        let samples = toy_samples(EVAL_BATCH + 9, 5);
        let net = toy_net(3);
        let acc = evaluate(&net, &samples);
        let per_sample = samples
            .iter()
            .filter(|s| net.predict(&s.channels) == s.label)
            .count() as f64
            / samples.len() as f64;
        assert!((acc - per_sample).abs() < 1e-12, "{acc} vs {per_sample}");
    }

    #[test]
    fn confusion_matrix_counts_match() {
        let samples = toy_samples(20, 7);
        let mut net = toy_net(9);
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 6,
                batch_size: 5,
                lr: 3e-3,
                ..TrainConfig::default()
            },
        );
        let cm = confusion_matrix(&net, &samples, 2);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 20);
        let acc = accuracy_from_confusion(&cm);
        assert!((acc - evaluate(&net, &samples)).abs() < 1e-9);
    }

    #[test]
    fn recall_precision_handles_absent_class() {
        // Class 2 never appears and is never predicted.
        let cm = vec![vec![8, 2, 0], vec![1, 9, 0], vec![0, 0, 0]];
        let rp = recall_precision(&cm);
        assert_eq!(rp[0].0, Some(0.8));
        assert_eq!(rp[1].0, Some(0.9));
        assert_eq!(rp[2], (None, None));
        let p0 = rp[0].1.unwrap();
        assert!((p0 - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn predict_proba_is_a_distribution() {
        let net = toy_net(11);
        let s = &toy_samples(2, 13)[0];
        let p = predict_proba(&net, &s.channels);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn freeze_towers_keeps_tower_parameters() {
        let samples = toy_samples(12, 17);
        let mut net = toy_net(19);
        let tower_before = net.towers[0].clone();
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 2,
                batch_size: 4,
                freeze_towers: true,
                ..TrainConfig::default()
            },
        );
        assert_eq!(net.towers[0], tower_before);
    }
}
